"""Small statistics helpers shared by tests, examples and benches."""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.patterns import DecodedState

__all__ = [
    "mean_and_std",
    "binomial_confidence_interval",
    "state_distribution",
]


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and standard deviation (ddof=0) of a sequence."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    return float(arr.mean()), float(arr.std())


def binomial_confidence_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a proportion (default 95%).

    Used to report covert-channel error rates with honest uncertainty —
    at sub-percent error rates and scaled-down bit counts the interval
    matters.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)


def state_distribution(
    states: Sequence[DecodedState],
) -> Dict[DecodedState, float]:
    """Relative frequency of each decoded PHT state (Figure 4b's pie)."""
    if not states:
        raise ValueError("no states")
    counts = Counter(states)
    total = len(states)
    return {state: counts.get(state, 0) / total for state in DecodedState}
