"""Plain-text table rendering for benchmark output.

The benchmark harness regenerates each paper table/figure as text; this
keeps the formatting in one place so every bench prints comparable
output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller so each bench controls its own precision.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
