"""Covert-channel quality metrics.

The paper reports raw error rates (Tables 2-3); channel quality is the
standard way to compare them across configurations: a covert channel
with bit-error probability ``p`` is a binary symmetric channel whose
capacity is ``1 - H(p)`` bits per transmitted bit, and the transmission
*rate* follows from the cycles one prime/target/probe round costs.
Used by the Table 2 bench's extended output and the channel examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["binary_entropy", "bsc_capacity", "ChannelEstimate"]


def binary_entropy(p: float) -> float:
    """Shannon entropy H(p) of a Bernoulli(p) source, in bits."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if p in (0.0, 1.0):
        return 0.0
    return -(p * math.log2(p) + (1 - p) * math.log2(1 - p))


def bsc_capacity(error_rate: float) -> float:
    """Capacity of a binary symmetric channel, bits per channel use.

    ``1 - H(p)``: 1.0 for a perfect channel, 0.0 at p = 0.5 (the channel
    is destroyed — what a working §10 mitigation achieves).
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be a probability")
    return 1.0 - binary_entropy(error_rate)


@dataclass(frozen=True)
class ChannelEstimate:
    """Throughput estimate for one covert-channel configuration."""

    #: Measured bit-error probability.
    error_rate: float
    #: Simulated cycles consumed per transmitted bit (prime + gaps +
    #: victim slice + probe).
    cycles_per_bit: float
    #: Assumed core frequency for wall-clock rates.
    clock_hz: float = 2.0e9

    @property
    def capacity_per_use(self) -> float:
        """Error-corrected bits per transmitted bit (BSC capacity)."""
        return bsc_capacity(self.error_rate)

    @property
    def raw_bits_per_second(self) -> float:
        """Transmitted (uncorrected) bits per second."""
        if self.cycles_per_bit <= 0:
            raise ValueError("cycles_per_bit must be positive")
        return self.clock_hz / self.cycles_per_bit

    @property
    def corrected_bits_per_second(self) -> float:
        """Error-free information rate after ideal coding."""
        return self.raw_bits_per_second * self.capacity_per_use

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"error {self.error_rate:.2%}, "
            f"{self.raw_bits_per_second:,.0f} bit/s raw, "
            f"{self.corrected_bits_per_second:,.0f} bit/s corrected "
            f"(capacity {self.capacity_per_use:.3f} bit/use)"
        )
