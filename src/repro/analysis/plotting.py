"""ASCII plots for benchmark output and examples.

The benches regenerate the paper's *figures*; these helpers render them
as terminal graphics so ``pytest benchmarks/`` output visually mirrors
the paper: line-ish curves (Figure 2, 5b, 8), scatter quadrants
(Figure 4a) and labelled bar groups (Figure 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["bar_chart", "curve", "scatter"]


def bar_chart(
    items: Sequence[Tuple[str, float]],
    *,
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart, one labelled bar per (label, value)."""
    if not items:
        raise ValueError("nothing to plot")
    peak = max(value for _, value in items)
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        filled = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(
            f"{label.ljust(label_width)} | {'█' * filled}"
            f" {value:g}{unit}"
        )
    return "\n".join(lines)


def curve(
    points: Sequence[Tuple[float, float]],
    *,
    height: int = 10,
    title: str = "",
    y_label: str = "",
) -> str:
    """Column chart of a y-vs-x series (x used only for the axis row)."""
    if not points:
        raise ValueError("nothing to plot")
    ys = [y for _, y in points]
    top = max(ys) or 1.0
    lines = [title] if title else []
    for row in range(height, 0, -1):
        threshold = top * (row - 0.5) / height
        cells = "".join("█ " if y >= threshold else "  " for y in ys)
        prefix = f"{top * row / height:8.2f} " if row in (height, 1) else " " * 9
        lines.append(prefix + "|" + cells)
    axis = "".join(f"{x:<2.0f}" for x, _ in points)
    lines.append(" " * 9 + "+" + "-" * (2 * len(points)))
    lines.append(" " * 10 + axis)
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def scatter(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 48,
    height: int = 16,
    x_range: Optional[Tuple[float, float]] = None,
    y_range: Optional[Tuple[float, float]] = None,
    title: str = "",
    marker: str = "o",
) -> str:
    """Scatter plot on a character grid (Figure 4a style)."""
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = x_range or (min(xs), max(xs))
    y_lo, y_hi = y_range or (min(ys), max(ys))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        col = min(max(col, 0), width - 1)
        row = min(max(row, 0), height - 1)
        grid[height - 1 - row][col] = marker
    lines = [title] if title else []
    lines.append(f"{y_hi:8.2f} ┌" + "─" * width)
    for row_cells in grid:
        lines.append(" " * 9 + "│" + "".join(row_cells))
    lines.append(f"{y_lo:8.2f} └" + "─" * width)
    lines.append(" " * 10 + f"{x_lo:<.2f}" + " " * (width - 12) + f"{x_hi:>.2f}")
    return "\n".join(lines)
