"""Statistics and reporting utilities for experiments and benches."""

from repro.analysis.channel import ChannelEstimate, binary_entropy, bsc_capacity
from repro.analysis.plotting import bar_chart, curve, scatter
from repro.analysis.report import format_table
from repro.analysis.stats import (
    binomial_confidence_interval,
    mean_and_std,
    state_distribution,
)

__all__ = [
    "ChannelEstimate",
    "bar_chart",
    "binary_entropy",
    "binomial_confidence_interval",
    "bsc_capacity",
    "curve",
    "format_table",
    "mean_and_std",
    "scatter",
    "state_distribution",
]
