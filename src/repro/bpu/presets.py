"""Microarchitecture presets: the paper's three CPUs plus a predictor zoo.

The paper runs BranchScope on an i5-6200U (Skylake), i7-4800MQ (Haswell)
and i7-2600 (Sandy Bridge).  Intel does not document these predictors;
the presets encode only what the paper establishes or attributes:

* the PHT has 16 384 byte-granular entries on the machine reverse
  engineered in §6.3 (the Skylake-generation one); we give Haswell the
  same directional capacity,
* Sandy Bridge's higher error rates are attributed (§7) to "a larger size
  of the predictor tables in the improved branch predictor design" of the
  newer parts — so the Sandy Bridge preset uses smaller tables,
* Skylake's prediction FSM exhibits the sticky-taken quirk
  (:func:`repro.bpu.fsm.skylake_fsm`), the others are textbook,
* Skylake "learn[s] the pattern slightly faster" in Figure 2 — modelled
  with a slightly longer global history and a larger gshare table.

The zoo extends the family beyond the paper's Intel parts, grounded in
the follow-up reverse-engineering literature (PAPERS.md):

* :func:`tage_like` — a TAGE-flavoured design: 3-bit saturating
  counters (:func:`repro.bpu.fsm.three_bit_fsm`) and a long global
  history, the structure modern high-end cores converged on,
* :func:`firestorm_like` — Apple Firestorm as dissected in
  "Dissecting Conditional Branch Predictors of Apple Firestorm and
  Qualcomm Oryon" (arXiv:2411.13900): very large tables, very long
  history, 3-bit counters,
* :func:`oryon_like` — Qualcomm Oryon per the same paper plus the
  folded-index findings of "Branch Target Buffer Reverse Engineering on
  Arm" (arXiv:2412.05413): mid-sized tables indexed through an XOR fold
  of upper address bits (``index_hash="fold"``,
  :mod:`repro.bpu.hashes`) rather than a plain modulo.

Everything else (BTB geometry, identification-table size) is a plausible
stand-in chosen so that the paper's experiments behave as reported; the
ablation bench ``bench_ablation_predictor_size`` sweeps these parameters
to show which of them the attack actually depends on.

:data:`PRESETS` is the **single registry**: every engine, mitigation,
bench, the campaign service and the CLI resolve preset names through it,
so a new zoo entry becomes available everywhere by joining this dict —
there is no second list to update.  Unknown names raise a ``KeyError``
that lists the valid ones.  The ``repro.fuzz`` subsystem treats each
entry as an opaque oracle and rediscovers its geometry from probe
signatures alone (see ``docs/MODELING.md`` §14).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict

from repro.bpu.bit import BranchIdentificationTable
from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.fsm import (
    FSMSpec,
    State,
    skylake_fsm,
    textbook_2bit_fsm,
    three_bit_fsm,
)
from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.hashes import validate_hash
from repro.bpu.hybrid import HybridPredictor
from repro.bpu.pht import PatternHistoryTable
from repro.bpu.selector import SelectorTable

__all__ = [
    "PredictorConfig",
    "skylake",
    "haswell",
    "sandy_bridge",
    "tage_like",
    "firestorm_like",
    "oryon_like",
    "PRESETS",
]


@dataclass(frozen=True)
class PredictorConfig:
    """Complete geometry of one hybrid-predictor instance.

    ``build()`` materialises a fresh :class:`HybridPredictor`; configs are
    immutable and can be tweaked with :func:`dataclasses.replace` (the
    ablation benches do this extensively).
    """

    name: str
    #: Entries in the 1-level (bimodal) PHT — the table BranchScope maps
    #: out in §6.3 (16 384 on the measured machine).
    bimodal_entries: int
    #: Entries in the gshare PHT.
    gshare_entries: int
    #: Global history length in branches.
    ghr_bits: int
    #: Entries in the tournament selector table.
    selector_entries: int
    #: Initial choice-counter value (low values bias to bimodal; §5.1).
    selector_initial: int
    #: Sets in the branch identification ("seen recently") table.
    bit_sets: int
    #: Sets in the branch target buffer.
    btb_sets: int
    #: Width of the saturating choice counters.
    selector_bits: int = 3
    #: Factory for the per-entry prediction FSM.
    fsm_factory: Callable[[], FSMSpec] = textbook_2bit_fsm
    #: State every PHT entry powers up in.
    initial_state: State = State.WN
    #: PHT index function (:data:`repro.bpu.hashes.INDEX_HASHES` name):
    #: ``"mod"`` for the Intel parts, ``"fold"`` for the Arm-flavoured zoo.
    index_hash: str = "mod"

    def build(self) -> HybridPredictor:
        """Construct a fresh predictor with this geometry."""
        validate_hash(self.index_hash)
        fsm = self.fsm_factory()
        ghr = GlobalHistoryRegister(self.ghr_bits)
        return HybridPredictor(
            bimodal_pht=PatternHistoryTable(
                self.bimodal_entries, fsm, self.initial_state
            ),
            gshare_pht=PatternHistoryTable(
                self.gshare_entries, fsm, self.initial_state
            ),
            ghr=ghr,
            selector=SelectorTable(
                self.selector_entries,
                initial_counter=self.selector_initial,
                counter_bits=self.selector_bits,
            ),
            bit=BranchIdentificationTable(self.bit_sets),
            btb=BranchTargetBuffer(self.btb_sets),
            index_hash=self.index_hash,
        )

    @property
    def fsm(self) -> FSMSpec:
        """The FSM spec this config uses (fresh instance)."""
        return self.fsm_factory()

    def scaled(self, factor: int) -> "PredictorConfig":
        """A copy with every table shrunk by ``factor``.

        Handy for fast unit tests that do not need 16k-entry tables.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            name=f"{self.name}/÷{factor}",
            bimodal_entries=max(4, self.bimodal_entries // factor),
            gshare_entries=max(4, self.gshare_entries // factor),
            selector_entries=max(4, self.selector_entries // factor),
            bit_sets=max(4, self.bit_sets // factor),
            btb_sets=max(4, self.btb_sets // factor),
        )


def skylake() -> PredictorConfig:
    """i5-6200U (Skylake) model: big tables, sticky-taken FSM quirk."""
    return PredictorConfig(
        name="skylake-i5-6200U",
        bimodal_entries=16384,
        gshare_entries=16384,
        ghr_bits=16,
        selector_entries=4096,
        selector_initial=2,
        bit_sets=2048,
        btb_sets=4096,
        fsm_factory=skylake_fsm,
    )


def haswell() -> PredictorConfig:
    """i7-4800MQ (Haswell) model: big tables, textbook FSM."""
    return PredictorConfig(
        name="haswell-i7-4800MQ",
        bimodal_entries=16384,
        gshare_entries=16384,
        ghr_bits=14,
        selector_entries=4096,
        selector_initial=1,
        bit_sets=2048,
        btb_sets=4096,
        fsm_factory=textbook_2bit_fsm,
    )


def sandy_bridge() -> PredictorConfig:
    """i7-2600 (Sandy Bridge) model: smaller tables (hence noisier, Table 2)."""
    return PredictorConfig(
        name="sandy-bridge-i7-2600",
        bimodal_entries=4096,
        gshare_entries=4096,
        ghr_bits=12,
        selector_entries=1024,
        selector_initial=1,
        bit_sets=1024,
        btb_sets=2048,
        fsm_factory=textbook_2bit_fsm,
    )


def tage_like() -> PredictorConfig:
    """Generic TAGE-flavoured model: 3-bit counters, long history.

    Not one specific CPU — the structural family modern high-end cores
    use (tagged geometric history lengths; here the hybrid skeleton with
    the deeper-hysteresis FSM and a 20-branch history stands in for the
    longest useful TAGE table).
    """
    return PredictorConfig(
        name="tage-like-generic",
        bimodal_entries=16384,
        gshare_entries=16384,
        ghr_bits=20,
        selector_entries=4096,
        selector_initial=1,
        bit_sets=2048,
        btb_sets=4096,
        fsm_factory=three_bit_fsm,
    )


def firestorm_like() -> PredictorConfig:
    """Apple Firestorm model (arXiv:2411.13900): huge tables, 24-bit history."""
    return PredictorConfig(
        name="firestorm-like-m1",
        bimodal_entries=32768,
        gshare_entries=32768,
        ghr_bits=24,
        selector_entries=4096,
        selector_initial=2,
        bit_sets=4096,
        btb_sets=8192,
        fsm_factory=three_bit_fsm,
    )


def oryon_like() -> PredictorConfig:
    """Qualcomm Oryon model (arXiv:2411.13900, 2412.05413): folded index.

    Mid-sized tables behind an XOR fold of upper address bits
    (``index_hash="fold"``), so low-order address congruence alone does
    not produce a PHT collision — the property the Arm BTB paper had to
    reverse-engineer around, and the one the fuzzer's collision probes
    detect.
    """
    return PredictorConfig(
        name="oryon-like-x-elite",
        bimodal_entries=8192,
        gshare_entries=8192,
        ghr_bits=16,
        selector_entries=2048,
        selector_initial=1,
        bit_sets=2048,
        btb_sets=4096,
        fsm_factory=textbook_2bit_fsm,
        index_hash="fold",
    )


class PresetRegistry(Dict[str, Callable[[], PredictorConfig]]):
    """The preset registry; unknown names fail with the valid names listed."""

    def __missing__(self, key: str) -> Callable[[], PredictorConfig]:
        raise KeyError(
            f"unknown preset {key!r}; valid presets: "
            + ", ".join(sorted(self))
        )


#: The single preset registry: paper-evaluated microarchitectures keyed
#: by their Table 2 labels, plus the zoo.  Every consumer (CLI choices,
#: ``CampaignSpec`` validation, benches, the fuzzer's oracle) resolves
#: names here — new presets join this dict and nothing else.
PRESETS: PresetRegistry = PresetRegistry(
    {
        "skylake": skylake,
        "haswell": haswell,
        "sandy_bridge": sandy_bridge,
        "tage_like": tage_like,
        "firestorm_like": firestorm_like,
        "oryon_like": oryon_like,
    }
)
