"""Microarchitecture presets for the three CPUs evaluated in the paper.

The paper runs BranchScope on an i5-6200U (Skylake), i7-4800MQ (Haswell)
and i7-2600 (Sandy Bridge).  Intel does not document these predictors;
the presets encode only what the paper establishes or attributes:

* the PHT has 16 384 byte-granular entries on the machine reverse
  engineered in §6.3 (the Skylake-generation one); we give Haswell the
  same directional capacity,
* Sandy Bridge's higher error rates are attributed (§7) to "a larger size
  of the predictor tables in the improved branch predictor design" of the
  newer parts — so the Sandy Bridge preset uses smaller tables,
* Skylake's prediction FSM exhibits the sticky-taken quirk
  (:func:`repro.bpu.fsm.skylake_fsm`), the others are textbook,
* Skylake "learn[s] the pattern slightly faster" in Figure 2 — modelled
  with a slightly longer global history and a larger gshare table.

Everything else (BTB geometry, identification-table size) is a plausible
stand-in chosen so that the paper's experiments behave as reported; the
ablation bench ``bench_ablation_predictor_size`` sweeps these parameters
to show which of them the attack actually depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.bpu.bit import BranchIdentificationTable
from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.fsm import FSMSpec, State, skylake_fsm, textbook_2bit_fsm
from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.hybrid import HybridPredictor
from repro.bpu.pht import PatternHistoryTable
from repro.bpu.selector import SelectorTable

__all__ = [
    "PredictorConfig",
    "skylake",
    "haswell",
    "sandy_bridge",
    "PRESETS",
]


@dataclass(frozen=True)
class PredictorConfig:
    """Complete geometry of one hybrid-predictor instance.

    ``build()`` materialises a fresh :class:`HybridPredictor`; configs are
    immutable and can be tweaked with :func:`dataclasses.replace` (the
    ablation benches do this extensively).
    """

    name: str
    #: Entries in the 1-level (bimodal) PHT — the table BranchScope maps
    #: out in §6.3 (16 384 on the measured machine).
    bimodal_entries: int
    #: Entries in the gshare PHT.
    gshare_entries: int
    #: Global history length in branches.
    ghr_bits: int
    #: Entries in the tournament selector table.
    selector_entries: int
    #: Initial choice-counter value (low values bias to bimodal; §5.1).
    selector_initial: int
    #: Sets in the branch identification ("seen recently") table.
    bit_sets: int
    #: Sets in the branch target buffer.
    btb_sets: int
    #: Width of the saturating choice counters.
    selector_bits: int = 3
    #: Factory for the per-entry prediction FSM.
    fsm_factory: Callable[[], FSMSpec] = textbook_2bit_fsm
    #: State every PHT entry powers up in.
    initial_state: State = State.WN

    def build(self) -> HybridPredictor:
        """Construct a fresh predictor with this geometry."""
        fsm = self.fsm_factory()
        ghr = GlobalHistoryRegister(self.ghr_bits)
        return HybridPredictor(
            bimodal_pht=PatternHistoryTable(
                self.bimodal_entries, fsm, self.initial_state
            ),
            gshare_pht=PatternHistoryTable(
                self.gshare_entries, fsm, self.initial_state
            ),
            ghr=ghr,
            selector=SelectorTable(
                self.selector_entries,
                initial_counter=self.selector_initial,
                counter_bits=self.selector_bits,
            ),
            bit=BranchIdentificationTable(self.bit_sets),
            btb=BranchTargetBuffer(self.btb_sets),
        )

    @property
    def fsm(self) -> FSMSpec:
        """The FSM spec this config uses (fresh instance)."""
        return self.fsm_factory()

    def scaled(self, factor: int) -> "PredictorConfig":
        """A copy with every table shrunk by ``factor``.

        Handy for fast unit tests that do not need 16k-entry tables.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            name=f"{self.name}/÷{factor}",
            bimodal_entries=max(4, self.bimodal_entries // factor),
            gshare_entries=max(4, self.gshare_entries // factor),
            selector_entries=max(4, self.selector_entries // factor),
            bit_sets=max(4, self.bit_sets // factor),
            btb_sets=max(4, self.btb_sets // factor),
        )


def skylake() -> PredictorConfig:
    """i5-6200U (Skylake) model: big tables, sticky-taken FSM quirk."""
    return PredictorConfig(
        name="skylake-i5-6200U",
        bimodal_entries=16384,
        gshare_entries=16384,
        ghr_bits=16,
        selector_entries=4096,
        selector_initial=2,
        bit_sets=2048,
        btb_sets=4096,
        fsm_factory=skylake_fsm,
    )


def haswell() -> PredictorConfig:
    """i7-4800MQ (Haswell) model: big tables, textbook FSM."""
    return PredictorConfig(
        name="haswell-i7-4800MQ",
        bimodal_entries=16384,
        gshare_entries=16384,
        ghr_bits=14,
        selector_entries=4096,
        selector_initial=1,
        bit_sets=2048,
        btb_sets=4096,
        fsm_factory=textbook_2bit_fsm,
    )


def sandy_bridge() -> PredictorConfig:
    """i7-2600 (Sandy Bridge) model: smaller tables (hence noisier, Table 2)."""
    return PredictorConfig(
        name="sandy-bridge-i7-2600",
        bimodal_entries=4096,
        gshare_entries=4096,
        ghr_bits=12,
        selector_entries=1024,
        selector_initial=1,
        bit_sets=1024,
        btb_sets=2048,
        fsm_factory=textbook_2bit_fsm,
    )


#: All paper-evaluated microarchitectures, keyed by the Table 2 labels.
PRESETS = {
    "skylake": skylake,
    "haswell": haswell,
    "sandy_bridge": sandy_bridge,
}
