"""Branch target buffer (paper §2).

The BTB is a direct-mapped cache of branch target addresses, updated only
when a branch is *taken*.  BranchScope explicitly does **not** attack the
BTB — that is the prior work it distinguishes itself from — but the BTB
is still part of the shared BPU and we model it for three reasons:

* completeness of the Figure 1 organisation,
* the ASLR-recovery application (§9.2) combines directional-predictor
  collisions with target information, and
* mitigation ablations need a BTB-protected-but-PHT-unprotected
  configuration to show BranchScope is "not affected by defenses against
  BTB-based attacks" (paper contribution list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.snapshot import SnapshotTuple, WriteJournal

__all__ = ["BranchTargetBuffer", "BTBEntry"]


@dataclass(frozen=True)
class BTBEntry:
    """One valid BTB entry: the tag it matched and the stored target."""

    tag: int
    target: int


class BranchTargetBuffer:
    """Direct-mapped, tagged target cache.

    Parameters
    ----------
    n_sets:
        Number of direct-mapped sets (power of two in the presets).
    tag_bits:
        Number of address bits kept as the tag above the index bits.
        Real BTBs keep partial tags; partial tags are what make
        cross-address-space BTB collisions possible in the prior-work
        attacks.
    """

    def __init__(self, n_sets: int, tag_bits: int = 16) -> None:
        if n_sets <= 0:
            raise ValueError("BTB must have at least one set")
        if tag_bits <= 0:
            raise ValueError("tag_bits must be positive")
        self.n_sets = int(n_sets)
        self.tag_bits = int(tag_bits)
        self._tag_mask = (1 << self.tag_bits) - 1
        self.tags = np.zeros(self.n_sets, dtype=np.int64)
        self.targets = np.zeros(self.n_sets, dtype=np.int64)
        self.valid = np.zeros(self.n_sets, dtype=bool)
        self._journal = WriteJournal(cap=max(256, self.n_sets // 8), name="btb")

    def _record(self, index: int) -> None:
        self._journal.record(
            (
                index,
                int(self.tags[index]),
                int(self.targets[index]),
                bool(self.valid[index]),
            )
        )

    def _split(self, address: int) -> Tuple[int, int]:
        address = int(address)
        index = address % self.n_sets
        tag = (address // self.n_sets) & self._tag_mask
        return index, tag

    def lookup(self, address: int) -> Optional[BTBEntry]:
        """Predicted target for ``address``, or ``None`` on a BTB miss.

        A BTB miss on a conditional branch corresponds to the
        "BTB misses result in not-taken predictions" assumption of the
        prior-work attacks (paper §11); the hybrid predictor consults the
        directional side regardless, so here a miss only means no target
        is available.
        """
        index, tag = self._split(address)
        if self.valid[index] and self.tags[index] == tag:
            return BTBEntry(tag=tag, target=int(self.targets[index]))
        return None

    def allocate(self, address: int, target: int) -> None:
        """Install/refresh the entry for a *taken* branch (paper §1)."""
        index, tag = self._split(address)
        if self._journal.armed:
            self._record(index)
        self.valid[index] = True
        self.tags[index] = tag
        self.targets[index] = int(target)

    def evict(self, address: int) -> None:
        """Invalidate whatever entry ``address`` maps to."""
        index, _ = self._split(address)
        if self._journal.armed:
            self._record(index)
        self.valid[index] = False

    def flush(self) -> None:
        """Invalidate the whole BTB (used by the BTB-flush defense ablation)."""
        self._journal.invalidate()
        self.valid.fill(False)

    def snapshot(
        self, *, full: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of (tags, targets, valid) — pair with :meth:`restore`.

        Carries a journal mark enabling O(sets touched) restore;
        ``full=True`` omits it (the differential reference path).
        """
        mark = None if full else self._journal.mark()
        return SnapshotTuple(
            (self.tags.copy(), self.targets.copy(), self.valid.copy()), mark
        )

    def restore(
        self, snapshot: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        """Restore state captured by :meth:`snapshot`."""
        mark = getattr(snapshot, "journal_mark", None)
        if mark is not None:
            tail = self._journal.rewind(mark)
            if tail is not None:
                for index, tag, target, valid in tail:
                    self.tags[index] = tag
                    self.targets[index] = target
                    self.valid[index] = valid
                return
        self._journal.invalidate()
        tags, targets, valid = snapshot
        np.copyto(self.tags, tags)
        np.copyto(self.targets, targets)
        np.copyto(self.valid, valid)

    def __len__(self) -> int:
        return self.n_sets
