"""Combined (hybrid) branch predictor — paper Figure 1.

This is the structure the whole paper is about: a bimodal 1-level
predictor and a gshare 2-level predictor sharing the direction-prediction
role, arbitrated by a selector table, with a BTB on the side for targets.

Selection logic
---------------
For a branch the BPU has *not* seen recently (it misses the branch
identification table), the 1-level predictor supplies the prediction —
the §5.1 observation ("for new branches whose information is not stored
in the predictor history, the 1-level predictor is used").  For known
branches, the selector's choice counter decides.  On update, both
component PHTs train, the selector trains toward whichever component was
right when they disagree, the outcome shifts into the GHR, the branch is
recorded in the identification table, and taken branches refresh the BTB.

The whole object is shared per *physical core* — both hardware threads
see the same tables — which is the sharing BranchScope exploits (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bpu.bimodal import BimodalPredictor
from repro.bpu.bit import BranchIdentificationTable
from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.fsm import State
from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.gshare import GSharePredictor
from repro.bpu.pht import PatternHistoryTable
from repro.bpu.selector import Choice, SelectorTable
from repro.obs import trace as obs

__all__ = ["Component", "Prediction", "HybridPredictor"]

# Re-export the selector's Choice enum under the name used throughout the
# attack code; "component" is the paper's terminology.
Component = Choice


@dataclass(frozen=True)
class Prediction:
    """Outcome of a single prediction lookup (before resolution)."""

    #: Final predicted direction.
    taken: bool
    #: Which component produced the final prediction.
    component: Component
    #: True when the branch missed the identification table — i.e. the
    #: BPU treated it as new and forced the 1-level component (§5.1).
    cold: bool
    #: Index into the bimodal PHT this branch used.
    bimodal_index: int
    #: Index into the gshare PHT this branch used (under the GHR at
    #: prediction time).
    gshare_index: int
    #: The bimodal component's own prediction.
    bimodal_taken: bool
    #: The gshare component's own prediction.
    gshare_taken: bool
    #: Predicted target from the BTB, or None on BTB miss.
    target: Optional[int]


class HybridPredictor:
    """Figure 1's combined predictor, assembled from its components."""

    def __init__(
        self,
        bimodal_pht: PatternHistoryTable,
        gshare_pht: PatternHistoryTable,
        ghr: GlobalHistoryRegister,
        selector: SelectorTable,
        bit: BranchIdentificationTable,
        btb: BranchTargetBuffer,
        index_hash: str = "mod",
    ) -> None:
        self.index_hash = index_hash
        self.bimodal = BimodalPredictor(bimodal_pht, index_hash=index_hash)
        self.gshare = GSharePredictor(gshare_pht, ghr, index_hash=index_hash)
        self.ghr = ghr
        self.selector = selector
        self.bit = bit
        self.btb = btb

    # -- prediction ---------------------------------------------------------

    def predict(
        self,
        address: int,
        key: int = 0,
        partition=None,
    ) -> Prediction:
        """Look up the prediction for a branch at ``address``.

        ``key`` is the per-context index-randomisation key and
        ``partition`` the per-context table slice; both are identity
        (0 / None) unless a §10.2 mitigation is installed.
        """
        bimodal_index = self.bimodal.index(address, key, partition)
        gshare_index = self.gshare.index(address, key, partition)
        bimodal_taken = self.bimodal.pht.predict(bimodal_index)
        gshare_taken = self.gshare.pht.predict(gshare_index)

        cold = not self.bit.contains(address)
        if cold:
            component = Component.BIMODAL
        else:
            component = self.selector.choose(address)
        taken = bimodal_taken if component is Component.BIMODAL else gshare_taken

        entry = self.btb.lookup(address)
        target = entry.target if entry is not None else None
        return Prediction(
            taken=taken,
            component=component,
            cold=cold,
            bimodal_index=bimodal_index,
            gshare_index=gshare_index,
            bimodal_taken=bimodal_taken,
            gshare_taken=gshare_taken,
            target=target,
        )

    # -- training -----------------------------------------------------------

    def update(
        self,
        address: int,
        taken: bool,
        prediction: Prediction,
        *,
        target: Optional[int] = None,
        train_outcome: Optional[bool] = None,
    ) -> None:
        """Resolve a branch: train every structure with the actual outcome.

        Must be called with the :class:`Prediction` returned by the
        matching :meth:`predict` call so the same PHT entries are trained
        that produced the prediction (the GHR may have moved otherwise);
        the recorded per-component indices already encode any index key
        or partition in force at prediction time.

        ``train_outcome`` is the outcome recorded into the PHT FSMs,
        normally the architectural outcome ``taken``.  The stochastic-FSM
        mitigation (§10.2) passes a possibly-corrupted value: only PHT
        contents become unreliable, while selector training, the GHR,
        identification-table insertion and BTB allocation — everything an
        in-order resolution derives from the *architectural* outcome —
        still use the true one.

        A cold branch (identification-table miss) was forced onto the
        1-level predictor, so no component competition happened: its
        chooser entry is *reset* to the initial bias rather than trained
        (§5.1 — a new branch starts its life in 1-level mode).

        This is the single training path: :meth:`execute` and
        :meth:`repro.cpu.core.PhysicalCore.execute_branch` both resolve
        through here, so the select/train/GHR/BIT/BTB sequence exists
        exactly once.
        """
        train = taken if train_outcome is None else train_outcome
        tracer = obs.TRACER
        # Reading the before/after FSM levels costs several array lookups,
        # so the "bpu" transition event carries its own category gate on
        # top of the tracer-enabled gate.
        trace_bpu = tracer is not None and tracer.wants("bpu")
        if trace_bpu:
            selector_index = self.selector.index(address)
            before = (
                int(self.bimodal.pht.levels[prediction.bimodal_index]),
                int(self.gshare.pht.levels[prediction.gshare_index]),
                int(self.selector.counters[selector_index]),
            )
        self.bimodal.pht.update(prediction.bimodal_index, train)
        self.gshare.update(address, train, index=prediction.gshare_index)
        if prediction.cold:
            self.selector.reset_entry(address)
        else:
            self.selector.update(
                address,
                bimodal_correct=(prediction.bimodal_taken == taken),
                gshare_correct=(prediction.gshare_taken == taken),
            )
        self.ghr.shift_in(taken)
        self.bit.insert(address)
        if taken and target is not None:
            self.btb.allocate(address, target)
        if trace_bpu:
            tracer.emit(
                "bpu",
                "train",
                address=address,
                taken=taken,
                trained=train,
                component=prediction.component.name,
                cold=prediction.cold,
                bimodal_level=(
                    before[0],
                    int(self.bimodal.pht.levels[prediction.bimodal_index]),
                ),
                gshare_level=(
                    before[1],
                    int(self.gshare.pht.levels[prediction.gshare_index]),
                ),
                selector_counter=(
                    before[2],
                    int(self.selector.counters[selector_index]),
                ),
            )

    def execute(
        self,
        address: int,
        taken: bool,
        key: int = 0,
        partition=None,
        target: Optional[int] = None,
    ) -> Prediction:
        """Predict then immediately resolve one branch; returns the prediction."""
        prediction = self.predict(address, key, partition)
        self.update(address, taken, prediction, target=target)
        return prediction

    # -- introspection (simulator-level, not attacker-visible) --------------

    def bimodal_state(self, address: int, key: int = 0, partition=None) -> State:
        """Architectural state of the bimodal PHT entry for ``address``."""
        return self.bimodal.pht.state(self.bimodal.index(address, key, partition))

    # -- checkpointing --------------------------------------------------------

    def snapshot(self, *, full: bool = False) -> dict:
        """Deep copy of all predictor state (pair with :meth:`restore`).

        Component snapshots carry write-journal marks so :meth:`restore`
        costs O(entries touched since) rather than O(table size); pass
        ``full=True`` for the seed's plain full-copy snapshots (the
        delta-restore differential reference).
        """
        return {
            "bimodal": self.bimodal.pht.snapshot(full=full),
            "gshare": self.gshare.pht.snapshot(full=full),
            "ghr": self.ghr.snapshot(),
            "selector": self.selector.snapshot(full=full),
            "bit": self.bit.snapshot(full=full),
            "btb": self.btb.snapshot(full=full),
        }

    def restore(self, snapshot: dict) -> None:
        """Restore predictor state captured by :meth:`snapshot`."""
        self.bimodal.pht.restore(snapshot["bimodal"])
        self.gshare.pht.restore(snapshot["gshare"])
        self.ghr.restore(snapshot["ghr"])
        self.selector.restore(snapshot["selector"])
        self.bit.restore(snapshot["bit"])
        self.btb.restore(snapshot["btb"])
