"""Branch prediction unit substrate.

This subpackage implements the hardware model that BranchScope attacks
(paper Figure 1): a hybrid directional predictor composed of

* a 1-level *bimodal* predictor (:mod:`repro.bpu.bimodal`) whose pattern
  history table (PHT, :mod:`repro.bpu.pht`) of two-bit saturating counters
  (:mod:`repro.bpu.fsm`) is indexed directly by the branch address,
* a 2-level *gshare* predictor (:mod:`repro.bpu.gshare`) indexed by the
  branch address XORed with a global history register
  (:mod:`repro.bpu.ghr`),
* a *selector table* (:mod:`repro.bpu.selector`) choosing between the two,
* a branch target buffer (:mod:`repro.bpu.btb`) for target prediction, and
* a branch identification table (:mod:`repro.bpu.bit`) that models which
  branches the BPU has seen recently (new branches fall back to the
  1-level predictor, the behaviour BranchScope exploits in paper §5).

Everything is composed by :class:`repro.bpu.hybrid.HybridPredictor`;
per-microarchitecture configurations live in :mod:`repro.bpu.presets`.
"""

from repro.bpu.bimodal import BimodalPredictor
from repro.bpu.bit import BranchIdentificationTable
from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.fsm import (
    FSMSpec,
    State,
    TransitionMonoid,
    skylake_fsm,
    textbook_2bit_fsm,
)
from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.gshare import GSharePredictor
from repro.bpu.hybrid import Component, HybridPredictor, Prediction
from repro.bpu.pht import PatternHistoryTable
from repro.bpu.presets import (
    PRESETS,
    PredictorConfig,
    haswell,
    sandy_bridge,
    skylake,
)
from repro.bpu.selector import SelectorTable

__all__ = [
    "PRESETS",
    "BimodalPredictor",
    "BranchIdentificationTable",
    "BranchTargetBuffer",
    "Component",
    "FSMSpec",
    "GSharePredictor",
    "GlobalHistoryRegister",
    "HybridPredictor",
    "PatternHistoryTable",
    "Prediction",
    "PredictorConfig",
    "SelectorTable",
    "State",
    "TransitionMonoid",
    "haswell",
    "sandy_bridge",
    "skylake",
    "skylake_fsm",
    "textbook_2bit_fsm",
]
