"""Index-space partition descriptor.

Used by the §10.2 "Partitioning the BPU" mitigation: a process confined
to a partition indexes only ``size`` PHT entries starting at ``offset``,
so processes in disjoint partitions cannot create PHT collisions at all.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """A contiguous slice of a prediction table's index space."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0:
            raise ValueError("partition must have non-negative offset, positive size")

    def confine(self, raw_index: int) -> int:
        """Map a full-table index into this partition."""
        return self.offset + (raw_index % self.size)
