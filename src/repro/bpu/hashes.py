"""Index-hash registry for PHT-style table lookups.

The paper's reverse engineering (§6.3) found byte-granular indexing and
a power-of-two table on Intel parts, consistent with a plain modulo.
Recent Arm reverse-engineering work ("Dissecting Conditional Branch
Predictors of Apple Firestorm and Qualcomm Oryon", arXiv:2411.13900;
"Branch Target Buffer Reverse Engineering on Arm", arXiv:2412.05413)
shows other vendors *fold* upper PC/history bits into the index instead,
so equal low-order bits no longer guarantee a collision.

This module is the single source of truth for those index functions:
the component predictors (:mod:`repro.bpu.bimodal`,
:mod:`repro.bpu.gshare`), the vectorised block compiler
(:mod:`repro.core.randomizer`) and the fuzzer's hypothesis simulators
(:mod:`repro.fuzz.infer`) all call :func:`apply_hash`, so a modelled
hash can never drift between the oracle and the inference engine.

Every hash works elementwise on both Python ints and numpy integer
arrays, and reduces into ``range(n_entries)``.

* ``"mod"`` — ``mixed % n``: the Intel model, bit-compatible with every
  engine that predates this module.
* ``"fold"`` — ``(mixed ^ (mixed >> s)) % n`` with ``s = log2(n)``: one
  XOR-fold of the next ``s`` address bits before the modulo, the
  Arm-flavoured model.  Two addresses that agree in the low ``s`` bits
  but differ above them *mod*-collide yet *fold*-differ — exactly the
  signature the fuzzer uses to tell the two families apart.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = [
    "INDEX_HASHES",
    "apply_hash",
    "fold_history",
    "history_fold_width",
    "validate_hash",
]


def _mod(mixed, n_entries: int):
    return mixed % n_entries


def _fold_shift(n_entries: int) -> int:
    """Fold distance: the table's index width (floor log2)."""
    return max(1, int(n_entries).bit_length() - 1)


def _fold(mixed, n_entries: int):
    shift = _fold_shift(n_entries)
    return (mixed ^ (mixed >> shift)) % n_entries


#: Registry of index hashes; new entries must work on scalars *and*
#: numpy arrays and return values in ``range(n_entries)``.
INDEX_HASHES: Dict[str, Callable] = {
    "mod": _mod,
    "fold": _fold,
}


def validate_hash(name: str) -> str:
    """Return ``name`` if registered, else a ``KeyError`` naming the options."""
    if name not in INDEX_HASHES:
        raise KeyError(
            f"unknown index hash {name!r}; valid hashes: "
            + ", ".join(sorted(INDEX_HASHES))
        )
    return name


def apply_hash(name: str, mixed, n_entries: int):
    """Map a mixed address value into ``range(n_entries)`` under hash ``name``.

    ``mixed`` may be a Python int or a numpy integer array; the result
    has the same shape.
    """
    return INDEX_HASHES[validate_hash(name)](mixed, n_entries)


def history_fold_width(n_entries: int) -> int:
    """The table's index width in bits (floor log2) — the chunk size a
    longer global history folds down to before entering the index."""
    return max(1, int(n_entries).bit_length() - 1)


def fold_history(history, length: int, n_entries: int):
    """Fold an ``length``-bit history value to the table's index width.

    gshare XORs the global history into the PC before indexing, but a
    history longer than the index simply cannot fit: real predictors
    compress it with a circular XOR of index-width chunks (Michaud's
    *folded history*, the construction TAGE made standard).  Without
    the fold, history bits above the index width would be architecturally
    invisible — and the fuzzer could never recover a preset's history
    length past ``log2(table)``.  Identity when the history already
    fits (``length <= width``), which keeps every pre-zoo Sandy
    Bridge/Haswell behaviour bit-identical.

    Works elementwise on Python ints and numpy integer arrays.  Every
    engine that mixes history into a gshare index — the scalar
    predictor, the batch scan, the block compiler, the calibration
    closed form and the kernel backends — must call this (or replicate
    it exactly): ``tests/test_fuzz.py`` and the engine differentials
    pin them together.
    """
    width = history_fold_width(n_entries)
    if length <= width:
        return history
    mask = (1 << width) - 1
    folded = history & mask
    for chunk in range(width, length, width):
        folded = folded ^ ((history >> chunk) & mask)
    return folded
