"""Prediction finite state machines (paper §6.1, Figure 3).

Each pattern history table (PHT) entry is a small saturating-counter FSM
that produces the taken/not-taken prediction for branches mapping to it.
The paper reverse-engineers two behaviours:

* Haswell and Sandy Bridge follow the *textbook two-bit counter* with four
  states — strongly not-taken (SN), weakly not-taken (WN), weakly taken
  (WT) and strongly taken (ST) — exactly as in Figure 3.
* Skylake exhibits a quirk (Table 1, footnote 1): after priming a counter
  to ST and observing one not-taken outcome, probing with two not-taken
  branches yields *two* mispredictions (``MM``) instead of the textbook
  miss-then-hit (``MH``).  Equivalently, the taken side of the counter is
  "sticky" and the ST and WT states are indistinguishable to a two-probe
  observer.  We model this with a five-level counter whose taken side has
  one extra level (see :func:`skylake_fsm`); the extra level reproduces
  every row of Table 1 including the footnote.

An :class:`FSMSpec` is a pure transition-table description, so the PHT can
store raw integer *levels* in a NumPy array and apply transitions either
scalar-at-a-time (exact simulation) or vectorised (fast randomisation-block
application, see :mod:`repro.core.randomizer`).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = [
    "State",
    "FSMSpec",
    "TransitionMonoid",
    "level_dtype",
    "textbook_2bit_fsm",
    "skylake_fsm",
    "three_bit_fsm",
]


def level_dtype(n_levels: int) -> np.dtype:
    """Smallest signed integer dtype that holds levels ``0..n_levels-1``.

    Every array that stores raw FSM levels — the spec's step table, PHT
    level vectors, transition-monoid maps — must be sized from this, or
    an FSM with more than 127 levels silently wraps in int8.
    """
    if n_levels < 1:
        raise ValueError("an FSM needs at least one level")
    for candidate in (np.int8, np.int16, np.int32, np.int64):
        if n_levels - 1 <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    raise ValueError(f"n_levels {n_levels} exceeds any integer dtype")


class State(enum.IntEnum):
    """Architectural (observable) prediction states of a PHT entry.

    These are the four states the paper reasons about (Figure 3).  FSM
    implementations may use more internal *levels* (e.g. the Skylake
    model), but every level maps onto one of these public states.
    """

    SN = 0  #: strongly not-taken
    WN = 1  #: weakly not-taken
    WT = 2  #: weakly taken
    ST = 3  #: strongly taken

    @property
    def predicts_taken(self) -> bool:
        """Whether a branch in this state is predicted taken."""
        return self in (State.WT, State.ST)

    @property
    def is_strong(self) -> bool:
        """Whether this is one of the two saturated ("strong") states."""
        return self in (State.SN, State.ST)


@dataclass(frozen=True)
class FSMSpec:
    """Transition-table description of a prediction FSM.

    The FSM is a linear saturating counter over ``n_levels`` internal
    levels.  Level ``i`` predicts taken iff ``predict_taken[i]``; on an
    actual *taken* outcome the level moves to ``next_on_taken[i]`` and on
    a *not-taken* outcome to ``next_on_not_taken[i]``.  ``to_public[i]``
    maps the level to the observable :class:`State`.

    Instances are immutable and shared; all mutable counter storage lives
    in :class:`repro.bpu.pht.PatternHistoryTable`.
    """

    name: str
    n_levels: int
    predict_taken: Tuple[bool, ...]
    next_on_taken: Tuple[int, ...]
    next_on_not_taken: Tuple[int, ...]
    to_public: Tuple[State, ...]
    #: Whether ST and WT produce identical two-probe observations (the
    #: Skylake quirk).  Consumed by the pattern decoder.
    taken_states_ambiguous: bool = False
    # Cached NumPy lookup tables, derived in __post_init__.
    _predict_arr: np.ndarray = field(init=False, repr=False, compare=False)
    _step_arr: np.ndarray = field(init=False, repr=False, compare=False)
    _public_arr: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = self.n_levels
        dtype = level_dtype(n)  # validates n >= 1, widens past 127 levels
        if not (
            len(self.predict_taken)
            == len(self.next_on_taken)
            == len(self.next_on_not_taken)
            == len(self.to_public)
            == n
        ):
            raise ValueError("FSMSpec tables must all have n_levels entries")
        for nxt in (*self.next_on_taken, *self.next_on_not_taken):
            if not 0 <= nxt < n:
                raise ValueError(f"transition target {nxt} out of range")
        predict = np.array(self.predict_taken, dtype=bool)
        # step[outcome, level]: outcome 0 = not-taken, 1 = taken.
        step = np.array(
            [self.next_on_not_taken, self.next_on_taken], dtype=dtype
        )
        public = np.array([int(s) for s in self.to_public], dtype=np.int8)
        for arr in (predict, step, public):
            arr.setflags(write=False)
        object.__setattr__(self, "_predict_arr", predict)
        object.__setattr__(self, "_step_arr", step)
        object.__setattr__(self, "_public_arr", public)

    @property
    def step_table(self) -> np.ndarray:
        """Public read-only transition table, ``step_table[outcome, level]``.

        Row 0 is the not-taken transition, row 1 the taken one.  This is
        the supported way for vectorised consumers (noise injection, the
        randomisation-block fold) to read the FSM's transitions; the
        array is immutable so it can be shared freely.
        """
        return self._step_arr

    # -- scalar interface ------------------------------------------------

    def predicts(self, level: int) -> bool:
        """Prediction (taken?) produced by an entry at ``level``."""
        return bool(self._predict_arr[level])

    def step(self, level: int, taken: bool) -> int:
        """Next level after observing an actual outcome ``taken``."""
        return int(self._step_arr[int(taken), level])

    def public_state(self, level: int) -> State:
        """Observable :class:`State` for an internal level."""
        return State(int(self._public_arr[level]))

    def level_for(self, state: State) -> int:
        """A canonical internal level representing ``state``.

        Used when priming an entry to a requested architectural state.
        When several levels map to the same public state (Skylake's two
        weak-taken levels) the *lowest* such level is returned, which is
        the one reachable by the textbook transition sequence.
        """
        for level in range(self.n_levels):
            if self.to_public[level] is state:
                return level
        raise ValueError(f"{self.name} has no level for state {state!r}")

    def saturate(self, taken: bool) -> int:
        """The saturated level reached by many consecutive ``taken`` outcomes."""
        level = 0
        for _ in range(self.n_levels + 1):
            level = self.step(level, taken)
        return level

    # -- vectorised interface ---------------------------------------------

    def predicts_array(self, levels: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`predicts` over an array of levels."""
        return self._predict_arr[levels]

    def step_array(self, levels: np.ndarray, taken) -> np.ndarray:
        """Vectorised :meth:`step`.

        ``taken`` may be a scalar bool or a boolean array broadcastable to
        ``levels``.
        """
        outcome = np.asarray(taken, dtype=np.int64)
        return self._step_arr[outcome, levels]

    def public_array(self, levels: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`public_state`, as an int8 array of State values."""
        return self._public_arr[levels]

    def transition_monoid(self) -> "TransitionMonoid":
        """The (cached) composition monoid of this FSM's outcome maps.

        See :class:`TransitionMonoid`; used by the randomisation-block
        fast path to fold long outcome sequences without stepping the
        FSM once per branch.
        """
        return _transition_monoid(self)


@dataclass(frozen=True)
class TransitionMonoid:
    """Closure of an FSM's per-outcome transition maps under composition.

    Each branch outcome applies a total function ``level -> level`` to
    the PHT entry it hits.  Folding a sequence of outcomes through the
    FSM is therefore a *composition* of such functions — and because an
    ``n``-level FSM admits at most ``n**n`` distinct functions (far
    fewer are actually reachable from the two generators), every
    reachable composition can be encoded as a small integer id and
    composed via one precomputed table lookup.  That turns the
    randomisation block's 100k-branch fold into a segmented scan over
    ids instead of a pure-Python loop over branches.

    ``maps[i]`` is the level mapping of id ``i`` (id 0 is the identity),
    ``outcome_ids[o]`` the id of a single step with outcome ``o`` (0 =
    not-taken, 1 = taken), and ``compose_table[a, b]`` the id of "apply
    ``a``, then ``b``".  All arrays are immutable.
    """

    n_levels: int
    maps: np.ndarray
    outcome_ids: np.ndarray
    compose_table: np.ndarray

    #: Id of the identity map (fixed by construction).
    IDENTITY = 0

    def compose(self, first, second):
        """Id(s) of ``second ∘ first`` — apply ``first``, then ``second``."""
        return self.compose_table[first, second]

    def outcome_id_sequence(self, outcomes: np.ndarray) -> np.ndarray:
        """Map ids of a boolean/0-1 outcome sequence, elementwise."""
        return self.outcome_ids[np.asarray(outcomes, dtype=np.int64)]

    def reduce(self, ids: np.ndarray) -> int:
        """Compose a sequence of map ids left-to-right into one id.

        Dispatches through :mod:`repro.kernels` — a pairwise tree on the
        numpy backend, a sequential accumulator on the compiled ones;
        ids are canonical and composition associative, so the orders
        agree bit for bit.
        """
        from repro import kernels

        return kernels.reduce_ids(ids, self.compose_table, self.IDENTITY)

    def fold_table(
        self,
        indices: np.ndarray,
        outcomes: np.ndarray,
        n_entries: int,
    ) -> np.ndarray:
        """Fold an outcome stream into per-entry transition maps.

        ``indices[i]`` is the table entry branch ``i`` hits and
        ``outcomes[i]`` its direction; the result is the dense map
        ``table[entry, initial_level] -> final_level`` (identity rows
        for untouched entries) — bit-exact with stepping the FSM once
        per branch in program order.

        Dispatches through :mod:`repro.kernels`: the numpy backend
        stable-sorts branches by entry and composes ids with a segmented
        Hillis-Steele scan (``O(N log N)`` vectorised lookups), the
        compiled backends run one ``O(N)`` accumulator pass; both yield
        the same composed id per entry.
        """
        from repro import kernels

        ids = kernels.fold_ids(
            np.asarray(indices, dtype=np.int64),
            self.outcome_id_sequence(outcomes).astype(np.int64),
            self.compose_table,
            int(n_entries),
            self.IDENTITY,
        )
        # maps[IDENTITY] is the identity row, so untouched entries come
        # out as identity maps exactly as before.
        return self.maps[ids]


#: Safety valve for degenerate FSM specs: the composition table is
#: quadratic in the monoid size, so refuse to materialise huge ones
#: (the shipped counters generate well under a hundred maps).
_MONOID_SIZE_LIMIT = 1024


@functools.lru_cache(maxsize=None)
def _transition_monoid(spec: FSMSpec) -> TransitionMonoid:
    n = spec.n_levels
    identity = tuple(range(n))
    generators = (tuple(spec.next_on_not_taken), tuple(spec.next_on_taken))
    ids = {identity: 0}
    order = [identity]
    frontier = [identity]
    while frontier:
        fresh = []
        for mapping in frontier:
            for gen in generators:
                composed = tuple(gen[level] for level in mapping)
                if composed not in ids:
                    ids[composed] = len(order)
                    order.append(composed)
                    fresh.append(composed)
        if len(order) > _MONOID_SIZE_LIMIT:
            raise RuntimeError(
                f"{spec.name}: transition monoid exceeds "
                f"{_MONOID_SIZE_LIMIT} maps"
            )
        frontier = fresh
    maps = np.array(order, dtype=level_dtype(n))
    outcome_ids = np.array([ids[g] for g in generators], dtype=np.int64)
    size = len(order)
    compose_table = np.empty((size, size), dtype=np.int16)
    for a, first in enumerate(order):
        for b, second in enumerate(order):
            compose_table[a, b] = ids[tuple(second[level] for level in first)]
    for arr in (maps, outcome_ids, compose_table):
        arr.setflags(write=False)
    return TransitionMonoid(
        n_levels=n,
        maps=maps,
        outcome_ids=outcome_ids,
        compose_table=compose_table,
    )


def textbook_2bit_fsm() -> FSMSpec:
    """The textbook two-bit saturating counter (paper Figure 3).

    Levels 0..3 correspond directly to SN, WN, WT, ST.  Matches observed
    behaviour on Haswell and Sandy Bridge (Table 1).
    """
    return FSMSpec(
        name="textbook-2bit",
        n_levels=4,
        predict_taken=(False, False, True, True),
        next_on_taken=(1, 2, 3, 3),
        next_on_not_taken=(0, 0, 1, 2),
        to_public=(State.SN, State.WN, State.WT, State.ST),
        taken_states_ambiguous=False,
    )


def skylake_fsm() -> FSMSpec:
    """Five-level counter modelling the Skylake quirk (Table 1 footnote 1).

    The taken side saturates fast but drains slowly: a taken outcome from
    WT(2) jumps straight to ST(4), while leaving the taken side takes two
    not-taken outcomes through a *sticky* intermediate level —
    ST(4) -> 3 -> WT(2) -> WN(1) -> SN(0).  Consequences, matching the
    paper exactly (all eight Table 1 rows are checked in
    ``tests/test_fsm.py``):

    * Prime ``TTT`` saturates (0 -> 1 -> 2 -> 4).  Target ``N`` (-> 3),
      probe ``NN``: level 3 predicts taken (miss, -> 2), level 2 predicts
      taken (miss, -> 1) — observation ``MM`` instead of the textbook
      ``MH`` (footnote 1).
    * ST and the post-ST weak-taken level are indistinguishable by
      two-probe observation: from both level 4 and level 3, probe ``NN``
      yields ``MM`` and probe ``TT`` yields ``HH`` — the paper's "ST and
      WT states indistinguishable on that processor".
    * The not-taken side is textbook, so the ``NNN``-prime rows of
      Table 1 are unchanged and the attack remains possible by priming to
      SN (paper §6.1: "the attacker can always pick a PHT randomization
      code that places the target PHT entry into a state without such
      ambiguity").
    """
    return FSMSpec(
        name="skylake-5level",
        n_levels=5,
        predict_taken=(False, False, True, True, True),
        next_on_taken=(1, 2, 4, 4, 4),
        next_on_not_taken=(0, 0, 1, 2, 3),
        to_public=(State.SN, State.WN, State.WT, State.WT, State.ST),
        taken_states_ambiguous=True,
    )


def three_bit_fsm() -> FSMSpec:
    """Eight-level saturating counter, the TAGE-flavoured FSM variant.

    TAGE-family predictors (and the wide Arm cores dissected in
    arXiv:2411.13900) keep 3-bit saturating counters per tagged entry:
    deeper hysteresis on both sides, so a well-trained direction survives
    three contrary outcomes before the prediction flips.  Levels 0..7
    count monotonically; the weak public states sit at the flip boundary
    (WN = level 3, WT = level 4) and the three saturated levels on each
    side all map to the strong public state, without the Skylake
    sticky-taken asymmetry.  A fuzz probe distinguishes this variant
    from the 2-bit families by how many consecutive contrary outcomes a
    saturated entry absorbs before mispredicting stops.
    """
    return FSMSpec(
        name="three-bit-saturating",
        n_levels=8,
        predict_taken=(False,) * 4 + (True,) * 4,
        next_on_taken=(1, 2, 3, 4, 5, 6, 7, 7),
        next_on_not_taken=(0, 0, 1, 2, 3, 4, 5, 6),
        to_public=(
            State.SN, State.SN, State.SN, State.WN,
            State.WT, State.ST, State.ST, State.ST,
        ),
        taken_states_ambiguous=False,
    )
