"""2-level gshare predictor (McFarling 1993; paper §2).

gshare indexes its PHT with the branch address XORed with the global
history register, so the entry used for a given static branch changes
with recent control flow.  Two consequences the paper relies on:

* it can learn *irregular but repeating* outcome sequences that defeat a
  bimodal predictor (the Figure 2 experiment), and
* its index is effectively unpredictable to an attacker who does not
  control the victim's branch history, which is why BranchScope forces
  the selection logic back to the 1-level predictor instead of attacking
  gshare directly (paper §4, §5).
"""

from __future__ import annotations

from typing import Optional

from repro.bpu.ghr import GlobalHistoryRegister
from repro.bpu.hashes import apply_hash, fold_history, validate_hash
from repro.bpu.partition import Partition
from repro.bpu.pht import PatternHistoryTable

__all__ = ["GSharePredictor"]


class GSharePredictor:
    """GHR-XOR-PC indexed direction predictor."""

    def __init__(
        self,
        pht: PatternHistoryTable,
        ghr: GlobalHistoryRegister,
        index_hash: str = "mod",
    ) -> None:
        self.pht = pht
        self.ghr = ghr
        self.index_hash = validate_hash(index_hash)

    def index(
        self,
        address: int,
        key: int = 0,
        partition: Optional[Partition] = None,
    ) -> int:
        """PHT entry for ``address`` under the *current* global history.

        A history longer than the index is folded down to index width
        first (:func:`repro.bpu.hashes.fold_history`), so every history
        bit influences the entry — identity when the history fits.
        """
        folded = fold_history(
            self.ghr.value, self.ghr.length, self.pht.n_entries
        )
        mixed = int(address) ^ folded ^ int(key)
        if partition is not None:
            return partition.confine(mixed)
        return apply_hash(self.index_hash, mixed, self.pht.n_entries)

    def predict(
        self,
        address: int,
        key: int = 0,
        partition: Optional[Partition] = None,
    ) -> bool:
        """Direction prediction for the branch at ``address``."""
        return self.pht.predict(self.index(address, key, partition))

    def update(
        self,
        address: int,
        taken: bool,
        key: int = 0,
        partition: Optional[Partition] = None,
        index: Optional[int] = None,
    ) -> None:
        """Train the entry that produced the prediction.

        When the caller recorded the prediction-time index (the hybrid
        predictor does, in :class:`~repro.bpu.hybrid.Prediction`), pass
        it as ``index`` so training hits exactly that entry even if the
        GHR has since moved.  Otherwise the index is recomputed under
        the *current* history and the same ``key``/``partition`` used at
        prediction time — callers must then update the PHT *before*
        shifting the outcome into the GHR.  (Omitting ``partition`` for
        a partitioned context would train outside the context's slice.)
        """
        if index is None:
            index = self.index(address, key, partition)
        self.pht.update(index, taken)
