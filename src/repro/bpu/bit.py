"""Branch identification table: "has the BPU seen this branch recently?"

Paper §5.1 establishes experimentally that *new* branches — ones whose
information is not stored in the predictor history — are predicted by the
1-level predictor, and §5.2 builds both halves of the attack on that
fact: the spy cycles through fresh branch addresses so its own probes are
always 1-level, and the 100k-branch randomisation block evicts the
victim's branch so the victim restarts in 1-level mode too.

Real hardware implements "seen recently" implicitly in its allocation
policies; we model it explicitly as a direct-mapped, partially-tagged
table that allocates on every executed branch.  A branch hits the table
iff its set holds its tag; executing many other branches that alias the
set evicts it — exactly the eviction behaviour the randomisation block
needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.snapshot import SnapshotTuple, WriteJournal

__all__ = ["BranchIdentificationTable"]


class BranchIdentificationTable:
    """Direct-mapped presence tracker for recently executed branches."""

    def __init__(self, n_sets: int, tag_bits: int = 12) -> None:
        if n_sets <= 0:
            raise ValueError("BIT must have at least one set")
        if tag_bits <= 0:
            raise ValueError("tag_bits must be positive")
        self.n_sets = int(n_sets)
        self.tag_bits = int(tag_bits)
        self._tag_mask = (1 << self.tag_bits) - 1
        self.tags = np.zeros(self.n_sets, dtype=np.int64)
        self.valid = np.zeros(self.n_sets, dtype=bool)
        self._journal = WriteJournal(cap=max(256, self.n_sets // 8), name="bit")

    def _split(self, address: int) -> Tuple[int, int]:
        address = int(address)
        return address % self.n_sets, (address // self.n_sets) & self._tag_mask

    def record_touch(self, indices: np.ndarray) -> None:
        """Journal current (tag, valid) values before an external in-place
        bulk write, keeping outstanding delta snapshots restorable."""
        if self._journal.armed:
            uniq = np.unique(indices)
            self._journal.record(
                (uniq, self.tags[uniq].copy(), self.valid[uniq].copy()),
                size=len(uniq),
            )

    def contains(self, address: int) -> bool:
        """Whether the BPU currently "knows" the branch at ``address``."""
        index, tag = self._split(address)
        return bool(self.valid[index]) and int(self.tags[index]) == tag

    def insert(self, address: int) -> None:
        """Record an execution of the branch at ``address`` (may evict)."""
        index, tag = self._split(address)
        if self._journal.armed:
            self._journal.record(
                (index, int(self.tags[index]), bool(self.valid[index]))
            )
        self.valid[index] = True
        self.tags[index] = tag

    def evict(self, address: int) -> None:
        """Drop whatever branch occupies ``address``'s set."""
        index, _ = self._split(address)
        if self._journal.armed:
            self._journal.record(
                (index, int(self.tags[index]), bool(self.valid[index]))
            )
        self.valid[index] = False

    def flush(self) -> None:
        """Forget every branch (used when modelling BPU-flush defenses)."""
        self._journal.invalidate()
        self.valid.fill(False)

    def snapshot(self, *, full: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of (tags, valid) — pair with :meth:`restore`.

        Carries a journal mark enabling O(sets touched) restore;
        ``full=True`` omits it (the differential reference path).
        """
        mark = None if full else self._journal.mark()
        return SnapshotTuple((self.tags.copy(), self.valid.copy()), mark)

    def restore(self, snapshot: Tuple[np.ndarray, np.ndarray]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        mark = getattr(snapshot, "journal_mark", None)
        if mark is not None:
            tail = self._journal.rewind(mark)
            if tail is not None:
                for index, tag, valid in tail:
                    self.tags[index] = tag
                    self.valid[index] = valid
                return
        self._journal.invalidate()
        tags, valid = snapshot
        np.copyto(self.tags, tags)
        np.copyto(self.valid, valid)

    def __len__(self) -> int:
        return self.n_sets
