"""Branch identification table: "has the BPU seen this branch recently?"

Paper §5.1 establishes experimentally that *new* branches — ones whose
information is not stored in the predictor history — are predicted by the
1-level predictor, and §5.2 builds both halves of the attack on that
fact: the spy cycles through fresh branch addresses so its own probes are
always 1-level, and the 100k-branch randomisation block evicts the
victim's branch so the victim restarts in 1-level mode too.

Real hardware implements "seen recently" implicitly in its allocation
policies; we model it explicitly as a direct-mapped, partially-tagged
table that allocates on every executed branch.  A branch hits the table
iff its set holds its tag; executing many other branches that alias the
set evicts it — exactly the eviction behaviour the randomisation block
needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["BranchIdentificationTable"]


class BranchIdentificationTable:
    """Direct-mapped presence tracker for recently executed branches."""

    def __init__(self, n_sets: int, tag_bits: int = 12) -> None:
        if n_sets <= 0:
            raise ValueError("BIT must have at least one set")
        if tag_bits <= 0:
            raise ValueError("tag_bits must be positive")
        self.n_sets = int(n_sets)
        self.tag_bits = int(tag_bits)
        self._tag_mask = (1 << self.tag_bits) - 1
        self.tags = np.zeros(self.n_sets, dtype=np.int64)
        self.valid = np.zeros(self.n_sets, dtype=bool)

    def _split(self, address: int) -> Tuple[int, int]:
        address = int(address)
        return address % self.n_sets, (address // self.n_sets) & self._tag_mask

    def contains(self, address: int) -> bool:
        """Whether the BPU currently "knows" the branch at ``address``."""
        index, tag = self._split(address)
        return bool(self.valid[index]) and int(self.tags[index]) == tag

    def insert(self, address: int) -> None:
        """Record an execution of the branch at ``address`` (may evict)."""
        index, tag = self._split(address)
        self.valid[index] = True
        self.tags[index] = tag

    def evict(self, address: int) -> None:
        """Drop whatever branch occupies ``address``'s set."""
        index, _ = self._split(address)
        self.valid[index] = False

    def flush(self) -> None:
        """Forget every branch (used when modelling BPU-flush defenses)."""
        self.valid.fill(False)

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of (tags, valid) — pair with :meth:`restore`."""
        return self.tags.copy(), self.valid.copy()

    def restore(self, snapshot: Tuple[np.ndarray, np.ndarray]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        tags, valid = snapshot
        np.copyto(self.tags, tags)
        np.copyto(self.valid, valid)

    def __len__(self) -> int:
        return self.n_sets
