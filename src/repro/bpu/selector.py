"""Tournament selector table (paper §2, Figure 1).

The selector is a PC-indexed table of saturating "choice" counters that
pick which component predictor — 1-level bimodal or 2-level gshare —
supplies the final prediction for a branch.  Counters move toward the
component that was correct when the two components disagree (the
McFarling update rule), so a branch whose pattern gshare has learned
migrates to gshare over a handful of executions, which is what the
Figure 2 learning curve shows (~5-7 repetitions of a 10-branch pattern).

Counter encoding: ``0 .. 2^counter_bits - 1``.  Only a *saturated*
counter chooses gshare — the chooser must accumulate consistent evidence
that the 2-level predictor has genuinely learned the branch before
handing it over, which models the paper's observation (§5.1) that the
1-level predictor covers branches until then.  The table initialises
biased toward the bimodal side, and a newly (re-)allocated branch has
its chooser entry reset to that bias (see :meth:`SelectorTable.
reset_entry`), modelling §5.1's "for new branches whose information is
not stored in the predictor history, the 1-level predictor is used".
"""

from __future__ import annotations

import enum

import numpy as np

from repro.snapshot import DeltaSnapshot, WriteJournal

__all__ = ["Choice", "SelectorTable"]


class Choice(enum.IntEnum):
    """Which component predictor the selector picks."""

    BIMODAL = 0
    GSHARE = 1


class SelectorTable:
    """PC-indexed table of saturating choice counters."""

    def __init__(
        self,
        n_entries: int,
        initial_counter: int = 1,
        counter_bits: int = 3,
    ) -> None:
        if n_entries <= 0:
            raise ValueError("selector table must have at least one entry")
        if counter_bits <= 0:
            raise ValueError("counter_bits must be positive")
        self.counter_bits = int(counter_bits)
        self.max_counter = (1 << self.counter_bits) - 1
        if not 0 <= initial_counter <= self.max_counter:
            raise ValueError(
                f"initial counter must be in 0..{self.max_counter}"
            )
        self.n_entries = int(n_entries)
        self._initial = int(initial_counter)
        # Sized from counter_bits: >= 8-bit choice counters must not wrap.
        dtype = np.int8
        for candidate in (np.int8, np.int16, np.int32, np.int64):
            dtype = candidate
            if self.max_counter <= np.iinfo(candidate).max:
                break
        else:
            raise ValueError(f"counter_bits {counter_bits} too large")
        self.counters = np.full(self.n_entries, self._initial, dtype=dtype)
        self._journal = WriteJournal(cap=max(256, self.n_entries // 8), name="selector")

    def record_touch(self, indices: np.ndarray) -> None:
        """Journal current counter values before an external in-place
        bulk write, keeping outstanding delta snapshots restorable."""
        if self._journal.armed:
            uniq = np.unique(indices)
            self._journal.record(
                (uniq, self.counters[uniq].copy()), size=len(uniq)
            )

    @property
    def gshare_threshold(self) -> int:
        """Counter value at which gshare takes over (saturation)."""
        return self.max_counter

    def index(self, address: int) -> int:
        """Selector entry used for a branch at ``address``."""
        return int(address) % self.n_entries

    def choose(self, address: int) -> Choice:
        """Component chosen for the branch at ``address``."""
        if self.counters[self.index(address)] >= self.gshare_threshold:
            return Choice.GSHARE
        return Choice.BIMODAL

    def update(
        self, address: int, bimodal_correct: bool, gshare_correct: bool
    ) -> None:
        """McFarling update: train toward the correct component.

        The counter only moves when exactly one component was correct;
        agreement (both right or both wrong) carries no information about
        which component is better for this branch.
        """
        if bimodal_correct == gshare_correct:
            return
        idx = self.index(address)
        old = int(self.counters[idx])
        if self._journal.armed:
            self._journal.record((idx, old))
        if gshare_correct:
            self.counters[idx] = min(self.max_counter, old + 1)
        else:
            self.counters[idx] = max(0, old - 1)

    def reset_entry(self, address: int) -> None:
        """Re-initialise the chooser entry for a newly allocated branch.

        Called when a branch misses the identification table: whatever
        chooser history the entry held belonged to a different (evicted)
        branch, so the hardware starts this branch from the initial
        bimodal bias.
        """
        idx = self.index(address)
        if self._journal.armed:
            self._journal.record((idx, int(self.counters[idx])))
        self.counters[idx] = self._initial

    def counter(self, address: int) -> int:
        """Raw choice-counter value for ``address`` (introspection)."""
        return int(self.counters[self.index(address)])

    def reset(self) -> None:
        """Return every counter to the initial bias."""
        self._journal.invalidate()
        self.counters.fill(self._initial)

    def snapshot(self, *, full: bool = False) -> np.ndarray:
        """Copy of the counter vector (pair with :meth:`restore`).

        Carries a journal mark enabling O(entries touched) restore;
        ``full=True`` omits it (the differential reference path).
        """
        mark = None if full else self._journal.mark()
        return DeltaSnapshot(self.counters.copy(), mark)

    def restore(self, snapshot: np.ndarray) -> None:
        """Restore counters captured by :meth:`snapshot`."""
        if snapshot.shape != self.counters.shape:
            raise ValueError("snapshot shape mismatch")
        mark = getattr(snapshot, "journal_mark", None)
        if mark is not None:
            tail = self._journal.rewind(mark)
            if tail is not None:
                counters = self.counters
                for idx, old in tail:
                    counters[idx] = old
                return
        self._journal.invalidate()
        np.copyto(self.counters, snapshot)

    def __len__(self) -> int:
        return self.n_entries
