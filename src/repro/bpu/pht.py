"""Pattern history table: the attacked structure (paper §2, §6).

A PHT is a fixed-size vector of prediction FSM *levels* (see
:mod:`repro.bpu.fsm`).  Both component predictors of the hybrid BPU store
their direction history in a PHT; they differ only in how the table is
indexed (paper §2: "the only difference between the two predictors is how
the PHT is indexed").

The table stores raw integer levels in a NumPy array so the attack's fast
paths (randomisation-block application, noise injection, full-table
snapshots for the §6.3 PHT scan) can operate vectorised.

Snapshots are delta-capable: once a snapshot is taken, per-entry writes
are journaled and :meth:`PatternHistoryTable.restore` undoes just those
writes instead of copying the whole table (see :mod:`repro.snapshot`).
Vectorised bulk writers must either go through the :attr:`levels` setter
(which invalidates the journal) or call :meth:`record_touch` first.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bpu.fsm import FSMSpec, State, level_dtype
from repro.snapshot import DeltaSnapshot, WriteJournal

__all__ = ["PatternHistoryTable"]


class PatternHistoryTable:
    """A table of ``n_entries`` prediction FSMs.

    Parameters
    ----------
    n_entries:
        Number of PHT entries.  Need not be a power of two, although real
        microarchitecture presets use powers of two.
    fsm:
        The prediction FSM specification shared by all entries.
    initial_state:
        Architectural state each entry starts in.  Real hardware powers up
        in an unknown state; we default to weakly not-taken, and tests /
        experiments that need a random start use :meth:`randomize`.
    """

    def __init__(
        self,
        n_entries: int,
        fsm: FSMSpec,
        initial_state: State = State.WN,
    ) -> None:
        if n_entries <= 0:
            raise ValueError("PHT must have at least one entry")
        self.fsm = fsm
        self.n_entries = int(n_entries)
        self._initial_level = fsm.level_for(initial_state)
        # Sized from n_levels: an FSM with > 127 levels must not wrap int8.
        self._levels = np.full(
            self.n_entries, self._initial_level, dtype=level_dtype(fsm.n_levels)
        )
        self._journal = WriteJournal(cap=max(256, self.n_entries // 8), name="pht")

    @property
    def levels(self) -> np.ndarray:
        """The raw level vector (dtype from the FSM's level count).  In-place
        scalar writes should go
        through :meth:`update`/:meth:`set_level`; vectorised writers must
        call :meth:`record_touch` first.  Assigning a whole new array
        invalidates outstanding delta snapshots."""
        return self._levels

    @levels.setter
    def levels(self, value: np.ndarray) -> None:
        self._journal.invalidate()
        self._levels = value

    def record_touch(self, indices: np.ndarray) -> None:
        """Journal the current values of ``indices`` before an external
        in-place bulk write (compiled-block application, noise injection),
        keeping outstanding delta snapshots restorable."""
        if self._journal.armed:
            uniq = np.unique(indices)
            self._journal.record(
                (uniq, self._levels[uniq].copy()), size=len(uniq)
            )

    # -- indexing helpers --------------------------------------------------

    def _check(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.n_entries:
            raise IndexError(f"PHT index {index} out of range")
        return index

    # -- per-entry operations ----------------------------------------------

    def predict(self, index: int) -> bool:
        """Direction prediction (taken?) of entry ``index``."""
        return self.fsm.predicts(int(self.levels[self._check(index)]))

    def update(self, index: int, taken: bool) -> None:
        """Advance entry ``index`` by one actual branch outcome."""
        index = self._check(index)
        old = int(self._levels[index])
        if self._journal.armed:
            self._journal.record((index, old))
        self._levels[index] = self.fsm.step(old, taken)

    def level(self, index: int) -> int:
        """Raw internal FSM level of entry ``index``."""
        return int(self.levels[self._check(index)])

    def state(self, index: int) -> State:
        """Observable architectural state of entry ``index``."""
        return self.fsm.public_state(self.level(index))

    def set_state(self, index: int, state: State) -> None:
        """Force entry ``index`` to a given architectural state.

        This is a simulator-only capability used by tests and by the
        Figure 9 experiment setup; the attacker inside the model reaches
        states only through branch executions.
        """
        index = self._check(index)
        if self._journal.armed:
            self._journal.record((index, int(self._levels[index])))
        self._levels[index] = self.fsm.level_for(state)

    def set_level(self, index: int, level: int) -> None:
        """Force entry ``index`` to a raw internal level."""
        if not 0 <= level < self.fsm.n_levels:
            raise ValueError(f"level {level} out of range")
        index = self._check(index)
        if self._journal.armed:
            self._journal.record((index, int(self._levels[index])))
        self._levels[index] = level

    # -- whole-table operations ----------------------------------------------

    def states(self) -> np.ndarray:
        """Architectural states of all entries, as an int8 array of State values."""
        return self.fsm.public_array(self.levels)

    def randomize(self, rng: np.random.Generator) -> None:
        """Scramble every entry to a uniformly random level.

        Models the unknown PHT contents inherited from prior system
        activity (paper §6.2 discusses such inherited state as a noise
        source).
        """
        self.levels = rng.integers(
            0, self.fsm.n_levels, size=self.n_entries
        ).astype(self._levels.dtype)

    def reset(self) -> None:
        """Return every entry to the configured initial state."""
        self._journal.invalidate()
        self._levels.fill(self._initial_level)

    def snapshot(self, *, full: bool = False) -> np.ndarray:
        """Copy of the raw level vector (pair with :meth:`restore`).

        The returned array additionally carries a journal mark so a later
        :meth:`restore` can undo just the entries written since, instead
        of copying the table; ``full=True`` omits the mark, forcing the
        seed's full-copy restore path (the differential reference).
        """
        mark = None if full else self._journal.mark()
        return DeltaSnapshot(self._levels.copy(), mark)

    def restore(self, snapshot: np.ndarray) -> None:
        """Restore a level vector previously taken with :meth:`snapshot`.

        Replays the write journal back to the snapshot's mark when it is
        still valid — O(entries touched since) — and falls back to the
        full copy otherwise.  Both paths leave identical state.
        """
        if snapshot.shape != self._levels.shape:
            raise ValueError("snapshot shape mismatch")
        mark = getattr(snapshot, "journal_mark", None)
        if mark is not None:
            tail = self._journal.rewind(mark)
            if tail is not None:
                levels = self._levels
                for index, old in tail:
                    levels[index] = old
                return
        # Full copy is itself an unjournaled bulk write: poison any
        # remaining marks so they cannot replay over it.
        self._journal.invalidate()
        np.copyto(self._levels, snapshot)

    def __len__(self) -> int:
        return self.n_entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PatternHistoryTable(n_entries={self.n_entries}, "
            f"fsm={self.fsm.name!r})"
        )
