"""Pattern history table: the attacked structure (paper §2, §6).

A PHT is a fixed-size vector of prediction FSM *levels* (see
:mod:`repro.bpu.fsm`).  Both component predictors of the hybrid BPU store
their direction history in a PHT; they differ only in how the table is
indexed (paper §2: "the only difference between the two predictors is how
the PHT is indexed").

The table stores raw integer levels in a NumPy array so the attack's fast
paths (randomisation-block application, noise injection, full-table
snapshots for the §6.3 PHT scan) can operate vectorised.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bpu.fsm import FSMSpec, State

__all__ = ["PatternHistoryTable"]


class PatternHistoryTable:
    """A table of ``n_entries`` prediction FSMs.

    Parameters
    ----------
    n_entries:
        Number of PHT entries.  Need not be a power of two, although real
        microarchitecture presets use powers of two.
    fsm:
        The prediction FSM specification shared by all entries.
    initial_state:
        Architectural state each entry starts in.  Real hardware powers up
        in an unknown state; we default to weakly not-taken, and tests /
        experiments that need a random start use :meth:`randomize`.
    """

    def __init__(
        self,
        n_entries: int,
        fsm: FSMSpec,
        initial_state: State = State.WN,
    ) -> None:
        if n_entries <= 0:
            raise ValueError("PHT must have at least one entry")
        self.fsm = fsm
        self.n_entries = int(n_entries)
        self._initial_level = fsm.level_for(initial_state)
        self.levels = np.full(self.n_entries, self._initial_level, dtype=np.int8)

    # -- indexing helpers --------------------------------------------------

    def _check(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.n_entries:
            raise IndexError(f"PHT index {index} out of range")
        return index

    # -- per-entry operations ----------------------------------------------

    def predict(self, index: int) -> bool:
        """Direction prediction (taken?) of entry ``index``."""
        return self.fsm.predicts(int(self.levels[self._check(index)]))

    def update(self, index: int, taken: bool) -> None:
        """Advance entry ``index`` by one actual branch outcome."""
        index = self._check(index)
        self.levels[index] = self.fsm.step(int(self.levels[index]), taken)

    def level(self, index: int) -> int:
        """Raw internal FSM level of entry ``index``."""
        return int(self.levels[self._check(index)])

    def state(self, index: int) -> State:
        """Observable architectural state of entry ``index``."""
        return self.fsm.public_state(self.level(index))

    def set_state(self, index: int, state: State) -> None:
        """Force entry ``index`` to a given architectural state.

        This is a simulator-only capability used by tests and by the
        Figure 9 experiment setup; the attacker inside the model reaches
        states only through branch executions.
        """
        self.levels[self._check(index)] = self.fsm.level_for(state)

    def set_level(self, index: int, level: int) -> None:
        """Force entry ``index`` to a raw internal level."""
        if not 0 <= level < self.fsm.n_levels:
            raise ValueError(f"level {level} out of range")
        self.levels[self._check(index)] = level

    # -- whole-table operations ----------------------------------------------

    def states(self) -> np.ndarray:
        """Architectural states of all entries, as an int8 array of State values."""
        return self.fsm.public_array(self.levels)

    def randomize(self, rng: np.random.Generator) -> None:
        """Scramble every entry to a uniformly random level.

        Models the unknown PHT contents inherited from prior system
        activity (paper §6.2 discusses such inherited state as a noise
        source).
        """
        self.levels = rng.integers(
            0, self.fsm.n_levels, size=self.n_entries, dtype=np.int8
        )

    def reset(self) -> None:
        """Return every entry to the configured initial state."""
        self.levels.fill(self._initial_level)

    def snapshot(self) -> np.ndarray:
        """Copy of the raw level vector (pair with :meth:`restore`)."""
        return self.levels.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Restore a level vector previously taken with :meth:`snapshot`."""
        if snapshot.shape != self.levels.shape:
            raise ValueError("snapshot shape mismatch")
        np.copyto(self.levels, snapshot)

    def __len__(self) -> int:
        return self.n_entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PatternHistoryTable(n_entries={self.n_entries}, "
            f"fsm={self.fsm.name!r})"
        )
