"""1-level (bimodal) predictor (Smith 1981; paper §2).

The bimodal predictor indexes its PHT *directly by the branch address*
with byte granularity (paper §6.3 measures exactly this), so two branches
at addresses congruent modulo the table size collide deterministically.
That determinism is BranchScope's attack surface: the spy places a branch
at the victim branch's virtual address and shares its PHT entry.

The index function accepts an optional per-context ``key`` so the §10.2
"randomization of the PHT" mitigation can be layered on without changing
the predictor itself.
"""

from __future__ import annotations

from typing import Optional

from repro.bpu.hashes import apply_hash, validate_hash
from repro.bpu.partition import Partition
from repro.bpu.pht import PatternHistoryTable

__all__ = ["BimodalPredictor"]


class BimodalPredictor:
    """PC-indexed direction predictor over a :class:`PatternHistoryTable`."""

    def __init__(
        self, pht: PatternHistoryTable, index_hash: str = "mod"
    ) -> None:
        self.pht = pht
        self.index_hash = validate_hash(index_hash)

    def index(
        self,
        address: int,
        key: int = 0,
        partition: Optional[Partition] = None,
    ) -> int:
        """PHT entry used for a branch at ``address``.

        The paper's reverse engineering (§6.3) found byte-granular
        indexing and a power-of-two table, consistent with a simple
        modulo (``index_hash="mod"``); the Arm-flavoured presets fold
        upper address bits first (:mod:`repro.bpu.hashes`).  ``key``
        (normally 0) models the §10.2 mitigation that mixes a
        per-software-entity secret into the index; ``partition``
        models the §10.2 BPU-partitioning mitigation.
        """
        mixed = int(address) ^ int(key)
        if partition is not None:
            return partition.confine(mixed)
        return apply_hash(self.index_hash, mixed, self.pht.n_entries)

    def predict(
        self,
        address: int,
        key: int = 0,
        partition: Optional[Partition] = None,
    ) -> bool:
        """Direction prediction for the branch at ``address``."""
        return self.pht.predict(self.index(address, key, partition))

    def update(
        self,
        address: int,
        taken: bool,
        key: int = 0,
        partition: Optional[Partition] = None,
    ) -> None:
        """Train the entry for ``address`` with an actual outcome."""
        self.pht.update(self.index(address, key, partition), taken)
