"""Global history register (paper §2).

The GHR records the outcomes of the last several branches executed on the
core.  It feeds the gshare predictor's index function, which is what makes
2-level predictions depend on inter-branch correlation — and what makes
them hard for an attacker to collide with deliberately (paper §4), hence
BranchScope's strategy of forcing the 1-level mode.
"""

from __future__ import annotations

__all__ = ["GlobalHistoryRegister"]


class GlobalHistoryRegister:
    """A shift register of the last ``length`` branch outcomes.

    The register is shared by every hardware context on the physical core
    (it is part of the shared BPU), which is exactly the property the
    randomisation block exploits to pollute the victim's 2-level history.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError("GHR length must be positive")
        self.length = int(length)
        self._mask = (1 << self.length) - 1
        self.value = 0

    def shift_in(self, taken: bool) -> None:
        """Record one branch outcome (1 = taken) as the newest history bit."""
        self.value = ((self.value << 1) | int(bool(taken))) & self._mask

    def clear(self) -> None:
        """Zero the history (power-up state)."""
        self.value = 0

    def set(self, value: int) -> None:
        """Force the register contents (simulator/fast-path use)."""
        self.value = int(value) & self._mask

    def snapshot(self) -> int:
        """Current raw contents (pair with :meth:`restore`).

        The register is a single integer, so snapshot and restore are
        already O(1) — it is exempt from the write-journal delta machinery
        the table-shaped components use (:mod:`repro.snapshot`).
        """
        return self.value

    def restore(self, snapshot: int) -> None:
        """Restore contents captured by :meth:`snapshot`."""
        self.set(snapshot)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GlobalHistoryRegister(length={self.length}, value={self.value:#x})"
