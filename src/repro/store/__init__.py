"""``repro.store`` — content-addressed persistent artifact cache.

The hot artifacts of a campaign are pure functions of their inputs: a
compiled randomisation block is determined by ``(block content, core
geometry, mitigation view, timing, kernel backend)``, a calibration
shard's result by ``(campaign spec, seed range)``, the manycore engine's
per-trial block summaries by ``(structure signature, seeds)``.  PR 1's
in-process LRU already exploits this within one process; this module
generalises it across processes, users and machine restarts with a
**two-tier content-addressed store**:

* **memory tier** — a bounded LRU of deserialised objects (cheap repeat
  hits within one process);
* **disk tier** — one file per key under a root directory, written
  atomically via :mod:`repro.ioutil` and framed with a SHA-256 digest so
  a torn or bit-flipped artifact reads as a *miss* (quarantine + delete),
  never as silent corruption.  Forked trial workers inherit the
  configured store and may write concurrently — the pid-unique temp name
  plus ``os.replace`` makes the last whole write win.

Keys are ``blake2b`` hexdigests derived by :func:`store_key` from a
*kind* tag plus canonical key parts, so two campaigns (or two users)
asking for the same artifact share one entry — the "millions of users,
one warm substrate" architecture of ROADMAP item 5.  Values are pickled
with a pinned protocol.

Eviction is by size budget: when the disk tier exceeds ``max_bytes``,
least-recently-*used* files go first (hits bump the file mtime).  All
traffic is counted on always-on stats (:meth:`ContentStore.stats`) and,
when observability is enabled, on the ``repro_store_requests_total``
metrics counter — so a service operator can watch hit rates per artifact
kind on the ``/metrics`` endpoint.

A process-wide default store (:func:`configure_store` /
:func:`get_store`, or the ``REPRO_STORE_DIR`` env var) is what the
compile and manycore cache hooks consult; with none configured those
paths behave exactly as before this module existed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.ioutil import atomic_write_bytes
from repro.obs import trace as obs

__all__ = [
    "ContentStore",
    "StoreStats",
    "store_key",
    "configure_store",
    "get_store",
    "STORE_DIR_ENV",
    "STORE_BYTES_ENV",
]

#: Configure the default store from the environment: forked workers and
#: ``repro serve`` children inherit it without any wiring.
STORE_DIR_ENV = "REPRO_STORE_DIR"
#: Optional disk budget (bytes) for the env-configured store.
STORE_BYTES_ENV = "REPRO_STORE_BYTES"

#: File magic; bump when the value framing changes.
_MAGIC = b"REPRO-STORE-1\n"

#: Pickle protocol pinned for stable bytes across interpreter minors.
_PICKLE_PROTOCOL = 4

#: Default disk budget: 512 MiB holds thousands of compiled blocks.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Default memory-tier entry bound.
DEFAULT_MEMORY_ENTRIES = 128


def _canonical(part: Any) -> str:
    """Stable text form of one key part (no memory addresses allowed)."""
    if isinstance(part, (str, int, float, bool)) or part is None:
        return repr(part)
    if isinstance(part, bytes):
        return part.hex()
    if isinstance(part, (tuple, list)):
        return "[" + ",".join(_canonical(p) for p in part) + "]"
    if isinstance(part, dict):
        return (
            "{"
            + ",".join(
                f"{_canonical(k)}:{_canonical(part[k])}" for k in sorted(part)
            )
            + "}"
        )
    text = repr(part)
    if " at 0x" in text:  # a default object repr would break key stability
        raise TypeError(
            f"store key part {type(part).__name__} has no stable repr"
        )
    return text


def store_key(kind: str, **parts: Any) -> str:
    """Content key: blake2b over the kind tag and canonical key parts.

    ``kind`` namespaces the artifact family (``"compiled_block"``,
    ``"shard_result"``, ``"manycore_summary"`` in-tree) and is folded
    into the digest *and* kept as a readable prefix, so the disk tier is
    browsable and per-kind stats stay attributable.
    """
    digest = hashlib.blake2b(digest_size=20)
    digest.update(kind.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(_canonical(parts).encode("utf-8"))
    return f"{kind}-{digest.hexdigest()}"


class StoreStats:
    """Always-on traffic counters of one :class:`ContentStore`."""

    __slots__ = (
        "memory_hits", "disk_hits", "misses", "puts", "evictions",
        "corrupt", "bytes_written", "bytes_read",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def _record_request(kind: str, tier: str) -> None:
    """Metrics-side accounting (no-op unless metrics are collected)."""
    tracer = obs.TRACER
    if tracer is not None and tracer.metrics is not None:
        tracer.metrics.counter(
            "repro_store_requests_total",
            "content-store lookups by artifact kind and serving tier",
            labels=("kind", "tier"),
        ).inc(kind=kind, tier=tier)


class ContentStore:
    """Two-tier (memory LRU + disk) content-addressed artifact store."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.memory_entries = int(memory_entries)
        self.stats = StoreStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()

    # -- internals ----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    @staticmethod
    def _kind(key: str) -> str:
        return key.rsplit("-", 1)[0]

    def _remember(self, key: str, value: Any) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _read_disk(self, key: str) -> Tuple[bool, Any]:
        """(found, value) from the disk tier; corruption reads as a miss."""
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return False, None
        self.stats.bytes_read += len(data)
        if data.startswith(_MAGIC):
            rest = data[len(_MAGIC):]
            header, sep, payload = rest.partition(b"\n")
            if sep and hashlib.sha256(payload).hexdigest().encode() == header:
                try:
                    value = pickle.loads(payload)
                except Exception:
                    pass
                else:
                    # A hit is a "use": bump mtime so the LRU eviction
                    # order tracks access, not creation.
                    try:
                        os.utime(path)
                    except OSError:
                        pass
                    return True, value
        # Torn, bit-flipped or unpicklable: a content-addressed artifact
        # is always recomputable, so drop it and report a miss.
        self.stats.corrupt += 1
        obs.record_resilience_event("store_corrupt", detail=key)
        try:
            os.unlink(str(path))
        except OSError:
            pass
        return False, None

    # -- API ----------------------------------------------------------------

    def get(self, key: str, *, memory: bool = True) -> Tuple[bool, Any]:
        """Look up ``key``; returns ``(found, value)``.

        ``memory=False`` skips the memory tier both ways — for callers
        (the compiled-block LRU) that keep their own in-process cache and
        only want the persistent tier behind it.
        """
        if memory and key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _record_request(self._kind(key), "memory")
            return True, self._memory[key]
        found, value = self._read_disk(key)
        if found:
            self.stats.disk_hits += 1
            _record_request(self._kind(key), "disk")
            if memory:
                self._remember(key, value)
            return True, value
        self.stats.misses += 1
        _record_request(self._kind(key), "miss")
        return False, None

    def put(self, key: str, value: Any, *, memory: bool = True) -> None:
        """Persist ``value`` under ``key`` (atomic; last whole write wins)."""
        payload = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        data = _MAGIC + digest + b"\n" + payload
        atomic_write_bytes(self._path(key), data)
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        if memory:
            self._remember(key, value)
        if self.max_bytes:
            self.evict_to_budget()

    def contains(self, key: str) -> bool:
        return key in self._memory or self._path(key).exists()

    def total_bytes(self) -> int:
        """Bytes currently held by the disk tier."""
        return sum(size for _, _, size in self._entries())

    def _entries(self) -> Iterable[Tuple[Path, float, int]]:
        for path in self.root.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            yield path, stat.st_mtime, stat.st_size

    def evict_to_budget(self) -> int:
        """Delete least-recently-used artifacts until under ``max_bytes``.

        Returns the number of files evicted.  Safe against concurrent
        writers: a racing unlink is simply skipped.
        """
        entries = sorted(self._entries(), key=lambda e: (e[1], e[0].name))
        total = sum(size for _, _, size in entries)
        evicted = 0
        for path, _, size in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(str(path))
            except OSError:
                continue
            self._memory.pop(path.stem, None)
            total -= size
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
        return evicted

    def clear(self) -> None:
        """Drop both tiers (fresh-start semantics; stats are kept)."""
        self._memory.clear()
        for path, _, _ in self._entries():
            try:
                os.unlink(str(path))
            except OSError:
                pass

    def stats_dict(self) -> Dict[str, int]:
        """Plain-data stats snapshot (manifests, result files, tests)."""
        return self.stats.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ContentStore({str(self.root)!r}, "
            f"memory={len(self._memory)}/{self.memory_entries})"
        )


# -- process-wide default store ----------------------------------------------

_DEFAULT_STORE: Optional[ContentStore] = None
_ENV_CHECKED = False


def configure_store(
    store: Union[ContentStore, str, Path, None]
) -> Optional[ContentStore]:
    """Install (or clear, with ``None``) the process-wide default store.

    The default store is what the compiled-block and manycore cache
    hooks consult; forked trial workers inherit it through fork, so
    configuring it in a service parent warms every worker.
    """
    global _DEFAULT_STORE, _ENV_CHECKED
    if store is not None and not isinstance(store, ContentStore):
        store = ContentStore(store)
    _DEFAULT_STORE = store
    _ENV_CHECKED = True  # explicit configuration wins over the env var
    return _DEFAULT_STORE


def get_store() -> Optional[ContentStore]:
    """The process-wide default store, or ``None`` when unconfigured.

    First call reads :data:`STORE_DIR_ENV` (and :data:`STORE_BYTES_ENV`)
    so batch jobs opt in without code changes; an unset env keeps every
    cache purely in-process, exactly the pre-store behaviour.
    """
    global _DEFAULT_STORE, _ENV_CHECKED
    if _DEFAULT_STORE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        root = os.environ.get(STORE_DIR_ENV, "").strip()
        if root:
            try:
                budget = int(
                    os.environ.get(STORE_BYTES_ENV, "") or DEFAULT_MAX_BYTES
                )
            except ValueError:
                budget = DEFAULT_MAX_BYTES
            _DEFAULT_STORE = ContentStore(root, max_bytes=budget)
    return _DEFAULT_STORE
