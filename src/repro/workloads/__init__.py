"""Synthetic branch workloads and predictor-accuracy metrics.

The hybrid predictor exists to predict *programs* (paper §2's background:
bimodal catches biased branches, gshare catches correlated patterns, the
tournament combines them).  This package generates branch traces with
the control-flow structures real code exhibits — loops, biased
conditionals, periodic patterns, correlated branches — and measures
component/hybrid prediction accuracy on them, validating that the
substrate behaves like a real BPU and quantifying *why* the combined
design of Figure 1 wins (``bench_predictor_accuracy``).

The generators double as realistic co-runner noise for attack
experiments (structured traces stress the predictor differently than
uniform noise).
"""

from repro.workloads.metrics import AccuracyReport, measure_accuracy
from repro.workloads.synthetic import (
    BiasedWorkload,
    CorrelatedWorkload,
    LoopWorkload,
    MixedWorkload,
    PatternWorkload,
    Workload,
)

__all__ = [
    "AccuracyReport",
    "BiasedWorkload",
    "CorrelatedWorkload",
    "LoopWorkload",
    "MixedWorkload",
    "PatternWorkload",
    "Workload",
    "measure_accuracy",
]
