"""Branch-trace generators with real-code control-flow structure.

Each workload yields ``(address, taken)`` pairs.  The four families map
to the classic branch-behaviour taxonomy the hybrid predictor design
targets (paper §2 background):

* :class:`LoopWorkload` — backward loop branches: taken ``body-1`` times
  then not-taken once.  Bimodal handles these well; gshare handles them
  perfectly once it learns the iteration count.
* :class:`BiasedWorkload` — branches with a fixed per-branch bias
  (e.g. error checks that almost never fire).  Bimodal's home turf.
* :class:`PatternWorkload` — a short repeating outcome pattern per
  branch (the Figure 2 workload): hopeless for bimodal when balanced,
  learnable by gshare.
* :class:`CorrelatedWorkload` — each branch's outcome equals the XOR of
  the previous two *other* branches' outcomes: pure global-history
  correlation, invisible to any per-branch predictor.

:class:`MixedWorkload` interleaves several of these, weighted — the
closest thing to "a program" and the default realistic co-runner.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Workload",
    "LoopWorkload",
    "BiasedWorkload",
    "PatternWorkload",
    "CorrelatedWorkload",
    "MixedWorkload",
]

Branch = Tuple[int, bool]


class Workload:
    """Base class: an infinite, seeded branch-trace generator."""

    #: Human-readable family name for reports.
    name = "abstract"

    def __init__(self, base_address: int, seed: int = 0) -> None:
        self.base_address = int(base_address)
        self.seed = seed

    def branches(self) -> Iterator[Branch]:
        """Yield ``(address, taken)`` pairs forever."""
        raise NotImplementedError

    def take(self, n: int) -> List[Branch]:
        """The trace's first ``n`` branches."""
        stream = self.branches()
        return [next(stream) for _ in range(n)]


class LoopWorkload(Workload):
    """Nested counted loops: the dominant branch shape in real code."""

    name = "loops"

    def __init__(
        self,
        base_address: int,
        seed: int = 0,
        *,
        inner_iterations: int = 8,
        outer_iterations: int = 4,
    ) -> None:
        super().__init__(base_address, seed)
        if inner_iterations < 2 or outer_iterations < 2:
            raise ValueError("loops need at least two iterations")
        self.inner_iterations = inner_iterations
        self.outer_iterations = outer_iterations

    def branches(self) -> Iterator[Branch]:
        inner_branch = self.base_address
        outer_branch = self.base_address + 0x40
        while True:
            for outer in range(self.outer_iterations):
                for inner in range(self.inner_iterations):
                    # Inner back-edge: taken while the loop continues.
                    yield inner_branch, inner < self.inner_iterations - 1
                yield outer_branch, outer < self.outer_iterations - 1


class BiasedWorkload(Workload):
    """Independent branches, each with a fixed strong bias."""

    name = "biased"

    def __init__(
        self,
        base_address: int,
        seed: int = 0,
        *,
        n_branches: int = 16,
        bias: float = 0.95,
    ) -> None:
        super().__init__(base_address, seed)
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be a probability")
        self.n_branches = n_branches
        self.bias = bias

    def branches(self) -> Iterator[Branch]:
        rng = np.random.default_rng(self.seed)
        # Half the branches biased taken, half biased not-taken.
        directions = rng.integers(0, 2, self.n_branches).astype(bool)
        while True:
            for i in range(self.n_branches):
                address = self.base_address + 4 * i
                agree = rng.random() < self.bias
                yield address, bool(directions[i]) == agree


class PatternWorkload(Workload):
    """One branch repeating a fixed irregular pattern (Figure 2's shape)."""

    name = "pattern"

    def __init__(
        self,
        base_address: int,
        seed: int = 0,
        *,
        pattern_bits: int = 10,
    ) -> None:
        super().__init__(base_address, seed)
        if pattern_bits < 2:
            raise ValueError("pattern needs at least two bits")
        self.pattern_bits = pattern_bits

    def branches(self) -> Iterator[Branch]:
        rng = np.random.default_rng(self.seed)
        pattern = rng.integers(0, 2, self.pattern_bits).astype(bool)
        while True:
            for taken in pattern:
                yield self.base_address, bool(taken)


class CorrelatedWorkload(Workload):
    """Branches predictable only from *global* history.

    Branch C's outcome is the XOR of the outcomes of branches A and B
    that executed just before it; A and B themselves are random.  No
    per-branch state can predict C above 50%; a global-history predictor
    can reach ~100%.
    """

    name = "correlated"

    def branches(self) -> Iterator[Branch]:
        rng = np.random.default_rng(self.seed)
        a_branch = self.base_address
        b_branch = self.base_address + 4
        c_branch = self.base_address + 8
        while True:
            a = bool(rng.integers(0, 2))
            b = bool(rng.integers(0, 2))
            yield a_branch, a
            yield b_branch, b
            yield c_branch, a ^ b


class MixedWorkload(Workload):
    """Weighted interleaving of several workloads — "a program"."""

    name = "mixed"

    def __init__(
        self,
        workloads: Sequence[Workload],
        weights: Sequence[float],
        seed: int = 0,
        *,
        burst: int = 20,
    ) -> None:
        if len(workloads) != len(weights) or not workloads:
            raise ValueError("need matching, non-empty workloads/weights")
        if burst <= 0:
            raise ValueError("burst must be positive")
        super().__init__(workloads[0].base_address, seed)
        self.workloads = list(workloads)
        total = float(sum(weights))
        self.weights = [w / total for w in weights]
        self.burst = burst

    @classmethod
    def typical(cls, base_address: int = 0x60_0000, seed: int = 0) -> "MixedWorkload":
        """A plausible mix: mostly loops and biased checks, some pattern
        and correlation."""
        return cls(
            [
                LoopWorkload(base_address, seed),
                BiasedWorkload(base_address + 0x1000, seed + 1),
                PatternWorkload(base_address + 0x2000, seed + 2),
                CorrelatedWorkload(base_address + 0x3000, seed + 3),
            ],
            weights=[0.45, 0.35, 0.1, 0.1],
            seed=seed,
        )

    def branches(self) -> Iterator[Branch]:
        rng = np.random.default_rng(self.seed)
        streams = [w.branches() for w in self.workloads]
        while True:
            index = int(rng.choice(len(streams), p=self.weights))
            stream = streams[index]
            for _ in range(self.burst):
                yield next(stream)
