"""Predictor accuracy measurement over workloads.

Runs a trace through a fresh predictor and reports per-component and
final accuracies — the methodology behind every tournament-predictor
design paper, applied to our Figure 1 model.  Component accuracies are
counted from the same executions (what *would* each component have
said), so the numbers are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.hybrid import HybridPredictor
from repro.bpu.presets import PredictorConfig
from repro.workloads.synthetic import Workload

__all__ = ["AccuracyReport", "measure_accuracy"]


@dataclass(frozen=True)
class AccuracyReport:
    """Prediction accuracies over one workload trace."""

    workload: str
    branches: int
    #: Accuracy of the hybrid's final predictions.
    hybrid: float
    #: Accuracy the bimodal component alone would have achieved.
    bimodal: float
    #: Accuracy the gshare component alone would have achieved.
    gshare: float
    #: Fraction of predictions the selector (or cold rule) took from
    #: the bimodal side.
    bimodal_share: float

    def best_component(self) -> str:
        """Which standalone component won on this workload."""
        return "bimodal" if self.bimodal >= self.gshare else "gshare"


def measure_accuracy(
    config: PredictorConfig,
    workload: Workload,
    n_branches: int = 20_000,
    *,
    warmup: int = 2_000,
) -> AccuracyReport:
    """Run ``workload`` through a fresh predictor and score it.

    ``warmup`` branches execute before counting starts, so steady-state
    accuracy is measured (the paper's Figure 2 covers the transient).
    """
    if n_branches <= 0:
        raise ValueError("n_branches must be positive")
    predictor: HybridPredictor = config.build()
    stream = workload.branches()
    for _ in range(warmup):
        address, taken = next(stream)
        predictor.execute(address, taken)

    hybrid_hits = bimodal_hits = gshare_hits = bimodal_chosen = 0
    for _ in range(n_branches):
        address, taken = next(stream)
        prediction = predictor.execute(address, taken)
        hybrid_hits += prediction.taken == taken
        bimodal_hits += prediction.bimodal_taken == taken
        gshare_hits += prediction.gshare_taken == taken
        bimodal_chosen += prediction.taken == prediction.bimodal_taken and (
            prediction.cold or prediction.component == 0
        )
    return AccuracyReport(
        workload=workload.name,
        branches=n_branches,
        hybrid=hybrid_hits / n_branches,
        bimodal=bimodal_hits / n_branches,
        gshare=gshare_hits / n_branches,
        bimodal_share=bimodal_chosen / n_branches,
    )
