"""8x8 block DCT/IDCT and quantisation — the JPEG codec's math core.

Implemented from scratch (orthonormal DCT-II via its matrix form) so the
:mod:`repro.victims.jpeg` victim has a real decompression path to leak
from.  The quantisation table is the JPEG Annex K luminance table, the
one real libjpeg uses at quality 50.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BLOCK",
    "STANDARD_LUMINANCE_QTABLE",
    "dct_matrix",
    "dct2_8x8",
    "idct2_8x8",
    "quantize",
    "dequantize",
]

#: JPEG block edge length.
BLOCK = 8

#: JPEG Annex K base luminance quantisation table (quality 50).
STANDARD_LUMINANCE_QTABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II matrix ``C`` with ``X = C @ x`` for columns."""
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    matrix = np.cos((2 * i + 1) * k * np.pi / (2 * n))
    matrix *= np.sqrt(2.0 / n)
    matrix[0, :] = np.sqrt(1.0 / n)
    return matrix


_C = dct_matrix()


def dct2_8x8(block: np.ndarray) -> np.ndarray:
    """2-D DCT-II of one 8x8 spatial block."""
    if block.shape != (BLOCK, BLOCK):
        raise ValueError("expected an 8x8 block")
    return _C @ block @ _C.T


def idct2_8x8(coefficients: np.ndarray) -> np.ndarray:
    """2-D inverse DCT of one 8x8 coefficient block."""
    if coefficients.shape != (BLOCK, BLOCK):
        raise ValueError("expected an 8x8 block")
    return _C.T @ coefficients @ _C


def quantize(
    coefficients: np.ndarray, qtable: np.ndarray = STANDARD_LUMINANCE_QTABLE
) -> np.ndarray:
    """Quantise DCT coefficients to integers (lossy step)."""
    return np.round(coefficients / qtable).astype(np.int32)


def dequantize(
    quantized: np.ndarray, qtable: np.ndarray = STANDARD_LUMINANCE_QTABLE
) -> np.ndarray:
    """Rescale quantised coefficients for the inverse transform."""
    return quantized.astype(np.float64) * qtable
