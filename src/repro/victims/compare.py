"""Early-exit secret comparison victim (a classic branchy leak).

``memcmp``-style checks compare a guess against a secret byte-by-byte
and bail out at the first mismatch — the textbook "branch instruction
conditioned on a bit of a secret" the paper's introduction motivates.
Timing attacks read the *number* of loop iterations; BranchScope reads
the *direction of each comparison branch* directly, so the attacker
learns exactly which position mismatched, and can therefore recover the
secret with ``alphabet x length`` guesses instead of brute force.

The attack driver :func:`crack_secret` does exactly that with the
standard :class:`repro.core.attack.BranchScope` facade.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process

__all__ = ["EarlyExitComparatorVictim", "crack_secret"]

#: Link-time address of the per-position comparison branch.
COMPARE_BRANCH_LINK_ADDRESS = 0x40_2C10


class EarlyExitComparatorVictim:
    """A service that checks guesses against a secret, leakily.

    Each :meth:`submit_guess` plans one check; :meth:`step` executes the
    check's next comparison branch on the core (victim-slowdown
    granularity).  The comparison branch is *taken* while characters
    match ("continue the loop") and not-taken at the first mismatch
    ("exit"), after which the check is over.
    """

    def __init__(
        self,
        secret: Sequence[int],
        *,
        process: Optional[Process] = None,
        branch_link_address: int = COMPARE_BRANCH_LINK_ADDRESS,
    ) -> None:
        if not secret:
            raise ValueError("secret must not be empty")
        self._secret = list(secret)
        self.process = process or Process("comparator-victim")
        self.branch_address = self.process.branch_address(branch_link_address)
        self._pending: List[bool] = []
        self.last_result: Optional[bool] = None

    def __len__(self) -> int:
        return len(self._secret)

    def submit_guess(self, guess: Sequence[int]) -> None:
        """Start one comparison of ``guess`` against the secret."""
        if len(guess) != len(self._secret):
            raise ValueError("guess length must match the secret's")
        directions: List[bool] = []
        for guessed, true in zip(guess, self._secret):
            if guessed == true:
                directions.append(True)  # match: loop continues
            else:
                directions.append(False)  # mismatch: early exit
                break
        self._pending = directions
        self.last_result = all(directions) and len(directions) == len(
            self._secret
        )

    @property
    def check_finished(self) -> bool:
        """Whether the current comparison has run all its branches."""
        return not self._pending

    def step(self, core: PhysicalCore) -> None:
        """Execute the next comparison branch of the current check."""
        if not self._pending:
            raise RuntimeError("no check in progress; submit a guess")
        core.execute_branch(
            self.process, self.branch_address, self._pending.pop(0)
        )

    def reveal_secret(self) -> Sequence[int]:
        """Ground truth for evaluation harnesses only."""
        return tuple(self._secret)


def crack_secret(
    attack,
    victim: EarlyExitComparatorVictim,
    core: PhysicalCore,
    alphabet: Sequence[int],
    *,
    filler: Optional[int] = None,
) -> List[int]:
    """Recover the victim's secret position by position.

    ``attack`` is a :class:`repro.core.attack.BranchScope` configured on
    ``victim.branch_address``.  For each position, try alphabet symbols
    until the spied direction of that position's comparison branch is
    *taken* (match).  Earlier positions use already-recovered symbols,
    so each check reaches the position under test.
    """
    filler = alphabet[0] if filler is None else filler
    recovered: List[int] = []
    length = len(victim)
    for position in range(length):
        found = None
        for symbol in alphabet:
            guess = recovered + [symbol] + [filler] * (
                length - position - 1
            )
            victim.submit_guess(guess)
            # Run the check up to the position under test, unobserved —
            # those directions are known (they match by construction).
            for _ in range(position):
                victim.step(core)
            spied = attack.spy_on_branch(lambda: victim.step(core))
            # Drain the rest of the check, if any.
            while not victim.check_finished:
                victim.step(core)
            if spied.taken:
                found = symbol
                break
        if found is None:
            # All symbols read as mismatch (noise): fall back to the
            # filler; the caller sees the error in the final comparison.
            found = filler
        recovered.append(found)
    return recovered
