"""Montgomery-ladder victims (paper §9.2 "Montgomery ladder").

The Montgomery ladder computes ``base^k`` (or ``k·P`` on an elliptic
curve) with a uniform operation sequence per key bit — a classic defense
against *timing* side channels — but its loop still contains a branch
whose direction **is** the key bit:

.. code-block:: text

    for i = bits-1 .. 0:
        if k_i == 1:      # <- the spied branch
            R0 = R0*R1; R1 = R1^2
        else:
            R1 = R0*R1; R0 = R0^2

Both arms perform the same operations, so execution *time* is constant —
yet the direction predictor learns the branch outcome, and BranchScope
reads it back bit by bit.  "BranchScope can directly recover the
direction of such branch."

Implemented from scratch: modular-exponentiation ladder and a ladder
scalar multiplication over a short-Weierstrass curve with affine
arithmetic (a small curve keeps tests fast; the branch structure is what
matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process

__all__ = [
    "montgomery_ladder_pow",
    "TinyCurve",
    "CurvePoint",
    "ladder_scalar_mult",
    "MontgomeryLadderVictim",
]

#: Link-time address of the ladder's key-bit branch.
LADDER_BRANCH_LINK_ADDRESS = 0x4017A2

BranchHook = Callable[[bool], None]


def montgomery_ladder_pow(
    base: int,
    exponent: int,
    modulus: int,
    branch_hook: Optional[BranchHook] = None,
) -> int:
    """``base ** exponent % modulus`` by the Montgomery powering ladder.

    ``branch_hook(bit)`` is invoked once per key bit at the point where
    the real implementation's conditional branch executes; victims wire
    it to the simulated core.  With no hook this is just a reference
    modular exponentiation (tested against :func:`pow`).
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if exponent < 0:
        raise ValueError("negative exponents are not supported")
    r0, r1 = 1, base % modulus
    for i in reversed(range(exponent.bit_length())):
        bit = (exponent >> i) & 1
        if branch_hook is not None:
            branch_hook(bool(bit))
        if bit:
            r0 = (r0 * r1) % modulus
            r1 = (r1 * r1) % modulus
        else:
            r1 = (r0 * r1) % modulus
            r0 = (r0 * r0) % modulus
    return r0


@dataclass(frozen=True)
class CurvePoint:
    """Affine point; ``None`` coordinates encode the point at infinity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    @staticmethod
    def infinity() -> "CurvePoint":
        return CurvePoint(None, None)


@dataclass(frozen=True)
class TinyCurve:
    """Short Weierstrass curve  y² = x³ + ax + b  over GF(p).

    The default parameters give a small prime-order group — large enough
    to exercise multi-word scalars, small enough for fast tests.
    """

    p: int = 0xFFFFFFFB  # 2^32 - 5, prime
    a: int = 3
    b: int = 7

    def is_on_curve(self, point: CurvePoint) -> bool:
        """Whether ``point`` satisfies the curve equation."""
        if point.is_infinity:
            return True
        x, y = point.x % self.p, point.y % self.p
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def _inv(self, value: int) -> int:
        return pow(value, self.p - 2, self.p)

    def add(self, p1: CurvePoint, p2: CurvePoint) -> CurvePoint:
        """Group law (affine)."""
        if p1.is_infinity:
            return p2
        if p2.is_infinity:
            return p1
        if p1.x == p2.x and (p1.y + p2.y) % self.p == 0:
            return CurvePoint.infinity()
        if p1 == p2:
            slope = (
                (3 * p1.x * p1.x + self.a) * self._inv(2 * p1.y)
            ) % self.p
        else:
            slope = ((p2.y - p1.y) * self._inv(p2.x - p1.x)) % self.p
        x3 = (slope * slope - p1.x - p2.x) % self.p
        y3 = (slope * (p1.x - x3) - p1.y) % self.p
        return CurvePoint(x3, y3)

    def double(self, point: CurvePoint) -> CurvePoint:
        """Point doubling."""
        return self.add(point, point)

    def base_point(self) -> CurvePoint:
        """A fixed valid generator-ish point for examples/tests."""
        # x=2: y^2 = 8 + 6 + 7 = 21; search upward for a quadratic residue.
        x = 2
        while True:
            rhs = (x * x * x + self.a * x + self.b) % self.p
            y = pow(rhs, (self.p + 1) // 4, self.p)
            if (y * y) % self.p == rhs:
                return CurvePoint(x, y)
            x += 1


def ladder_scalar_mult(
    curve: TinyCurve,
    scalar: int,
    point: CurvePoint,
    branch_hook: Optional[BranchHook] = None,
) -> CurvePoint:
    """``scalar · point`` by the Montgomery ladder (uniform operations)."""
    if scalar < 0:
        raise ValueError("negative scalars are not supported")
    r0, r1 = CurvePoint.infinity(), point
    for i in reversed(range(scalar.bit_length())):
        bit = (scalar >> i) & 1
        if branch_hook is not None:
            branch_hook(bool(bit))
        if bit:
            r0 = curve.add(r0, r1)
            r1 = curve.double(r1)
        else:
            r1 = curve.add(r0, r1)
            r0 = curve.double(r0)
    return r0


class MontgomeryLadderVictim:
    """A decryption/signing service leaking its key through the ladder.

    The attacker triggers one *step* at a time (victim-slowdown
    assumption): each :meth:`step` executes exactly one key-bit branch on
    the core; the surrounding arithmetic happens between steps.  When the
    key is exhausted the result becomes available and a fresh operation
    can be started with :meth:`begin`.
    """

    def __init__(
        self,
        secret_exponent: int,
        *,
        base: int = 0x10001,
        modulus: int = (1 << 61) - 1,  # Mersenne prime
        process: Optional[Process] = None,
        branch_link_address: int = LADDER_BRANCH_LINK_ADDRESS,
    ) -> None:
        if secret_exponent <= 0:
            raise ValueError("secret exponent must be positive")
        self._exponent = secret_exponent
        self.base = base
        self.modulus = modulus
        self.process = process or Process("rsa-victim")
        self.branch_address = self.process.branch_address(branch_link_address)
        self.result: Optional[int] = None
        self._pending: List[bool] = []
        self.begin()

    @property
    def n_bits(self) -> int:
        """Key length in bits (public knowledge — e.g. RSA-2048)."""
        return self._exponent.bit_length()

    def begin(self) -> None:
        """Start one exponentiation; bits will leak as steps execute."""
        self._pending = [
            bool((self._exponent >> i) & 1)
            for i in reversed(range(self._exponent.bit_length()))
        ]
        self.result = None

    def step(self, core: PhysicalCore) -> None:
        """Execute the next key-bit branch (one ladder iteration)."""
        if not self._pending:
            raise RuntimeError("operation finished; call begin() again")
        bit = self._pending.pop(0)
        core.execute_branch(self.process, self.branch_address, taken=bit)
        if not self._pending:
            # Operation complete: compute the architectural result.
            self.result = montgomery_ladder_pow(
                self.base, self._exponent, self.modulus
            )

    @property
    def finished(self) -> bool:
        """Whether the current exponentiation has consumed every bit."""
        return not self._pending

    def reveal_exponent(self) -> int:
        """Ground truth for evaluation harnesses only."""
        return self._exponent
