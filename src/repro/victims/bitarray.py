"""The Listing 2 victim: a branch conditioned on a secret bit array.

.. code-block:: c

    int sec_data[] = {1, 0, 1, 1, ...};
    void victim_f() {
        if (sec_data[i])      // <- the spied branch
            asm("nop; nop");
        i++;
    }

In the paper's disassembly the ``je`` jumps (is *taken*) when the secret
value is zero; the convention is configurable here because the covert
channel's dictionary handles either polarity.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process

__all__ = ["SecretBitArrayVictim"]

#: Link-time address of the ``je`` in Listing 2(B)'s disassembly
#: (``300006d <victim_f+0x6d>``).
LISTING2_BRANCH_LINK_ADDRESS = 0x300006D


class SecretBitArrayVictim:
    """A process whose branch directions spell out a secret bit array."""

    def __init__(
        self,
        secret_bits: Sequence[int],
        *,
        process: Optional[Process] = None,
        branch_link_address: int = LISTING2_BRANCH_LINK_ADDRESS,
        taken_when_bit: int = 1,
        cyclic: bool = True,
    ) -> None:
        """``taken_when_bit`` selects the encoding polarity: with the
        default, a secret 1 makes the branch taken (the paper's ``je``
        has the opposite polarity; both are attackable identically).
        With ``cyclic`` (the default, matching Listing 2's endless loop
        over the array) the victim wraps around after the last bit;
        otherwise running off the end raises ``IndexError``."""
        if any(b not in (0, 1) for b in secret_bits):
            raise ValueError("secret bits must be 0/1")
        if not secret_bits:
            raise ValueError("secret must not be empty")
        self._secret = list(secret_bits)
        self.process = process or Process("bitarray-victim")
        self.branch_address = self.process.branch_address(branch_link_address)
        self.taken_when_bit = taken_when_bit
        self.cyclic = cyclic
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._secret)

    @property
    def exhausted(self) -> bool:
        """Whether every secret bit has been consumed (never, if cyclic)."""
        return not self.cyclic and self._cursor >= len(self._secret)

    def execute_next(self, core: PhysicalCore) -> None:
        """Execute the branch for the next secret bit (Listing 2's loop body)."""
        if self.exhausted:
            raise IndexError("secret exhausted")
        bit = self._secret[self._cursor % len(self._secret)]
        self._cursor += 1
        core.execute_branch(
            self.process,
            self.branch_address,
            taken=(bit == self.taken_when_bit),
        )

    def rewind(self) -> None:
        """Restart from the first bit (e.g. for a repeated transmission)."""
        self._cursor = 0

    def reveal_secret(self) -> Sequence[int]:
        """Ground truth for evaluation harnesses only.

        The spy never calls this; benchmarks use it to compute error
        rates against what the attack recovered.
        """
        return tuple(self._secret)
