"""Victim programs (paper Listing 2 and §9.2 application targets).

Each victim couples a real computation (implemented from scratch) to the
simulated core: whenever its control flow reaches a secret-dependent
conditional branch, it executes that branch through
:meth:`~repro.cpu.core.PhysicalCore.execute_branch` at a stable virtual
address — the leak BranchScope exploits.

* :mod:`repro.victims.bitarray` — the Listing 2 secret-bit-array victim
  used by the covert-channel evaluation.
* :mod:`repro.victims.montgomery` — Montgomery-ladder modular
  exponentiation and elliptic-curve scalar multiplication, the §9.2
  crypto target (branch direction = key bit).
* :mod:`repro.victims.jpeg` / :mod:`repro.victims.dct` — a JPEG-like
  8x8-block codec whose IDCT skips all-zero rows/columns with individual
  branch instructions, the §9.2 libjpeg target.
"""

from repro.victims.bitarray import SecretBitArrayVictim
from repro.victims.compare import EarlyExitComparatorVictim, crack_secret
from repro.victims.dct import dct2_8x8, idct2_8x8, quantize, dequantize
from repro.victims.jpeg import (
    JpegDecoderVictim,
    JpegImage,
    encode_image,
)
from repro.victims.montgomery import (
    CurvePoint,
    MontgomeryLadderVictim,
    TinyCurve,
    ladder_scalar_mult,
    montgomery_ladder_pow,
)
from repro.victims.square_multiply import (
    SquareAndMultiplyVictim,
    square_and_multiply_pow,
)

__all__ = [
    "CurvePoint",
    "EarlyExitComparatorVictim",
    "JpegDecoderVictim",
    "JpegImage",
    "MontgomeryLadderVictim",
    "SecretBitArrayVictim",
    "SquareAndMultiplyVictim",
    "TinyCurve",
    "crack_secret",
    "square_and_multiply_pow",
    "dct2_8x8",
    "dequantize",
    "encode_image",
    "idct2_8x8",
    "ladder_scalar_mult",
    "montgomery_ladder_pow",
    "quantize",
]
