"""JPEG-like codec victim (paper §9.2 "libjpeg").

libjpeg's inverse DCT skips all-zero rows/columns of the coefficient
matrix to save arithmetic; "each such comparison is realized as an
individual branch instruction.  By spying on these branches the
BranchScope is capable of recovering information about relative
complexity of decoded pixel blocks" — and unlike the page-fault attacks,
it learns *which* element is non-zero.

We implement the codec from scratch (:mod:`repro.victims.dct` provides
the math) with exactly that optimisation structure: during decompression
each 8x8 block runs eight row-zero checks (first 1-D IDCT pass) and
eight column-zero checks (second pass), each check a conditional branch
at a fixed virtual address, *taken* when the row/column is non-zero.
The attacker who recovers the row-check directions reconstructs the
block-by-block sparsity map — a coarse image of the picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.victims.dct import (
    BLOCK,
    STANDARD_LUMINANCE_QTABLE,
    dct2_8x8,
    dct_matrix,
    dequantize,
    idct2_8x8,
    quantize,
)

__all__ = ["JpegImage", "encode_image", "decode_image", "JpegDecoderVictim"]

#: Link-time addresses of the two zero-check branches in the IDCT loops.
ROW_CHECK_LINK_ADDRESS = 0x40A210
COLUMN_CHECK_LINK_ADDRESS = 0x40A3F4


@dataclass(frozen=True)
class JpegImage:
    """A compressed image: quantised DCT coefficients per 8x8 block."""

    #: Quantised coefficients, shape (blocks_y, blocks_x, 8, 8).
    blocks: np.ndarray
    #: Original image dimensions (rows, cols) before padding.
    shape: Tuple[int, int]
    qtable: np.ndarray

    @property
    def block_grid(self) -> Tuple[int, int]:
        """Number of blocks vertically and horizontally."""
        return self.blocks.shape[0], self.blocks.shape[1]

    def zero_row_map(self) -> np.ndarray:
        """Ground truth: which coefficient rows are all-zero.

        Shape (blocks_y, blocks_x, 8), True where the IDCT may skip the
        row — the exact information the row-check branches leak.
        """
        return (self.blocks == 0).all(axis=3)

    def nonzero_counts(self) -> np.ndarray:
        """Per-block count of non-zero coefficients ("complexity")."""
        return (self.blocks != 0).sum(axis=(2, 3))


def encode_image(
    pixels: np.ndarray, qtable: np.ndarray = STANDARD_LUMINANCE_QTABLE
) -> JpegImage:
    """Compress a grayscale image (values 0..255) block by block."""
    pixels = np.asarray(pixels, dtype=np.float64)
    if pixels.ndim != 2:
        raise ValueError("expected a 2-D grayscale image")
    rows, cols = pixels.shape
    pad_rows = (-rows) % BLOCK
    pad_cols = (-cols) % BLOCK
    padded = np.pad(pixels, ((0, pad_rows), (0, pad_cols)), mode="edge")
    blocks_y = padded.shape[0] // BLOCK
    blocks_x = padded.shape[1] // BLOCK
    blocks = np.empty((blocks_y, blocks_x, BLOCK, BLOCK), dtype=np.int32)
    for by in range(blocks_y):
        for bx in range(blocks_x):
            tile = padded[
                by * BLOCK : (by + 1) * BLOCK, bx * BLOCK : (bx + 1) * BLOCK
            ]
            blocks[by, bx] = quantize(dct2_8x8(tile - 128.0), qtable)
    return JpegImage(blocks=blocks, shape=(rows, cols), qtable=qtable)


def decode_image(image: JpegImage) -> np.ndarray:
    """Reference decompression (no core interaction)."""
    blocks_y, blocks_x = image.block_grid
    out = np.empty((blocks_y * BLOCK, blocks_x * BLOCK), dtype=np.float64)
    for by in range(blocks_y):
        for bx in range(blocks_x):
            coefficients = dequantize(image.blocks[by, bx], image.qtable)
            out[
                by * BLOCK : (by + 1) * BLOCK, bx * BLOCK : (bx + 1) * BLOCK
            ] = idct2_8x8(coefficients) + 128.0
    rows, cols = image.shape
    return np.clip(out[:rows, :cols], 0, 255)


@dataclass(frozen=True)
class _PendingBranch:
    """One zero-check branch the decoder will execute."""

    address: int
    taken: bool


class JpegDecoderVictim:
    """A decompression service leaking block sparsity through its IDCT.

    Each :meth:`step` executes the decoder's next zero-check branch on
    the core (victim-slowdown granularity); :attr:`pixels` holds the
    decoded image once all checks have executed.
    """

    def __init__(
        self,
        image: JpegImage,
        *,
        process: Optional[Process] = None,
        row_check_link_address: int = ROW_CHECK_LINK_ADDRESS,
        column_check_link_address: int = COLUMN_CHECK_LINK_ADDRESS,
    ) -> None:
        self.image = image
        self.process = process or Process("jpeg-victim")
        self.row_branch_address = self.process.branch_address(
            row_check_link_address
        )
        self.column_branch_address = self.process.branch_address(
            column_check_link_address
        )
        self.pixels: Optional[np.ndarray] = None
        self._pending: List[_PendingBranch] = self._plan_branches()

    def _plan_branches(self) -> List[_PendingBranch]:
        """The decoder's zero-check branch schedule, in execution order.

        Pass 1 checks each coefficient *row* (skip its 1-D IDCT when all
        zero); pass 2 checks each intermediate *column*.  Branch taken =
        non-zero = work performed.
        """
        pending: List[_PendingBranch] = []
        blocks_y, blocks_x = self.image.block_grid
        for by in range(blocks_y):
            for bx in range(blocks_x):
                quantized = self.image.blocks[by, bx]
                coefficients = dequantize(quantized, self.image.qtable)
                for r in range(BLOCK):
                    pending.append(
                        _PendingBranch(
                            self.row_branch_address,
                            taken=bool(np.any(quantized[r] != 0)),
                        )
                    )
                # Pass 1 output (rows transformed): Y = X @ C, since the
                # 2-D inverse is C.T @ X @ C.  Pass 2 checks Y's columns.
                intermediate = coefficients @ dct_matrix()
                for c in range(BLOCK):
                    pending.append(
                        _PendingBranch(
                            self.column_branch_address,
                            taken=bool(
                                np.any(np.abs(intermediate[:, c]) > 1e-9)
                            ),
                        )
                    )
        return pending

    @property
    def branches_per_block(self) -> int:
        """Zero-check branches per 8x8 block (8 rows + 8 columns)."""
        return 2 * BLOCK

    @property
    def finished(self) -> bool:
        """Whether decompression has executed every check."""
        return not self._pending

    def step(self, core: PhysicalCore) -> None:
        """Execute the decoder's next zero-check branch."""
        if not self._pending:
            raise RuntimeError("decode finished")
        branch = self._pending.pop(0)
        core.execute_branch(self.process, branch.address, taken=branch.taken)
        if not self._pending:
            self.pixels = decode_image(self.image)

    def steps_remaining(self) -> int:
        """How many zero-check branches are still pending."""
        return len(self._pending)

    def next_branch_address(self) -> Optional[int]:
        """Address of the next check branch, or None when finished.

        The attacker knows this *statically* — the decoder's control flow
        (8 row checks then 8 column checks per block) is public code — so
        exposing it models the attacker's disassembly knowledge, not a
        secret leak.
        """
        return self._pending[0].address if self._pending else None
