"""Square-and-multiply exponentiation victim.

The pre-Montgomery modexp the paper's crypto citations attack
(Acıiçmez et al. demonstrated the original BTB attacks against RSA's
square-and-multiply): every exponent bit squares, and a *1* bit
additionally multiplies — guarded by a branch taken exactly when the
key bit is 1:

.. code-block:: text

    for i = bits-1 .. 0:
        r = r*r mod n
        if k_i == 1:      # <- the spied branch
            r = r*b mod n

Unlike the ladder, this implementation also leaks through *time* (the
multiply is conditional work); BranchScope reads the branch directly,
needing no timing statistics over the arithmetic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process

__all__ = ["square_and_multiply_pow", "SquareAndMultiplyVictim"]

#: Link-time address of the multiply-guard branch.
SQM_BRANCH_LINK_ADDRESS = 0x40_33C8


def square_and_multiply_pow(
    base: int,
    exponent: int,
    modulus: int,
    branch_hook: Optional[Callable[[bool], None]] = None,
) -> int:
    """Left-to-right square-and-multiply modular exponentiation.

    ``branch_hook(bit)`` fires at each iteration's multiply-guard branch.
    Verified against :func:`pow` in the tests.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if exponent < 0:
        raise ValueError("negative exponents are not supported")
    result = 1 % modulus
    base %= modulus
    for i in reversed(range(exponent.bit_length())):
        result = (result * result) % modulus
        bit = (exponent >> i) & 1
        if branch_hook is not None:
            branch_hook(bool(bit))
        if bit:
            result = (result * base) % modulus
    return result


class SquareAndMultiplyVictim:
    """An RSA-style signer leaking its exponent via the multiply guard.

    Mirrors :class:`repro.victims.montgomery.MontgomeryLadderVictim`'s
    step interface: each :meth:`step` executes one multiply-guard branch
    on the core; :attr:`result` holds the signature once the exponent is
    exhausted.
    """

    def __init__(
        self,
        secret_exponent: int,
        *,
        base: int = 0x1234567,
        modulus: int = (1 << 61) - 1,
        process: Optional[Process] = None,
        branch_link_address: int = SQM_BRANCH_LINK_ADDRESS,
    ) -> None:
        if secret_exponent <= 0:
            raise ValueError("secret exponent must be positive")
        self._exponent = secret_exponent
        self.base = base
        self.modulus = modulus
        self.process = process or Process("sqm-victim")
        self.branch_address = self.process.branch_address(branch_link_address)
        self.result: Optional[int] = None
        self._pending: List[bool] = []
        self.begin()

    @property
    def n_bits(self) -> int:
        """Exponent length in bits (public)."""
        return self._exponent.bit_length()

    def begin(self) -> None:
        """Start one exponentiation."""
        self._pending = [
            bool((self._exponent >> i) & 1)
            for i in reversed(range(self._exponent.bit_length()))
        ]
        self.result = None

    @property
    def finished(self) -> bool:
        """Whether the current operation has consumed every bit."""
        return not self._pending

    def step(self, core: PhysicalCore) -> None:
        """Execute the next multiply-guard branch."""
        if not self._pending:
            raise RuntimeError("operation finished; call begin() again")
        bit = self._pending.pop(0)
        core.execute_branch(self.process, self.branch_address, taken=bit)
        if not self._pending:
            self.result = square_and_multiply_pow(
                self.base, self._exponent, self.modulus
            )

    def reveal_exponent(self) -> int:
        """Ground truth for evaluation harnesses only."""
        return self._exponent
