"""Parallel trial execution (`repro.parallel`).

A supervised process-pool engine for the embarrassingly-parallel layer
of the reproduction — candidate-block assessments, covert-channel
message trials, benchmark sweep cells — with a hard determinism
contract: per-trial RNGs are derived via ``np.random.SeedSequence.spawn``
from the experiment seed, so results are bit-identical at any worker
count, and supervised recovery (crash/hang/corruption retries with
backoff, graceful serial degradation) never changes a result, only when
and where it was computed.
"""

from repro.parallel.pool import (
    RetryExhaustedError,
    SuperviseConfig,
    TrialPool,
    fork_available,
    resolve_workers,
    spawn_rngs,
    spawn_seeds,
)

__all__ = [
    "RetryExhaustedError",
    "SuperviseConfig",
    "TrialPool",
    "fork_available",
    "resolve_workers",
    "spawn_rngs",
    "spawn_seeds",
]
