"""Parallel trial execution (`repro.parallel`).

A process-pool engine for the embarrassingly-parallel layer of the
reproduction — candidate-block assessments, covert-channel message
trials, benchmark sweep cells — with a hard determinism contract:
per-trial RNGs are derived via ``np.random.SeedSequence.spawn`` from the
experiment seed, so results are bit-identical at any worker count.
"""

from repro.parallel.pool import (
    TrialPool,
    fork_available,
    resolve_workers,
    spawn_rngs,
    spawn_seeds,
)

__all__ = [
    "TrialPool",
    "fork_available",
    "resolve_workers",
    "spawn_rngs",
    "spawn_seeds",
]
