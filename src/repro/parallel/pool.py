"""Supervised process-pool trial engine for embarrassingly-parallel runs.

The paper's evaluation is built out of *independent trials*: candidate
blocks in the §6.2 calibration search and the Figure 4 stability
experiment, message transmissions in the Table 2/3 covert-channel
sweeps, parameter cells in the ablation benches.  Each trial simulates
branches against its own core state and returns a small result object,
which is exactly the worker-pool-over-test-cases shape fuzzing harnesses
use at scale.  :class:`TrialPool` provides that engine:

* **fork dispatch** — trials run in ``fork``-context worker processes,
  so the trial function may be any closure over parent state (cores,
  compiled blocks, factories): the function itself is handed to workers
  through a pre-fork module global and is never pickled, only payloads
  and results cross the process boundary;
* **chunked dispatch, ordered collection** — payloads are dispatched in
  index-ordered chunks and results are reassembled in payload order, so
  callers observe exactly the serial loop's result list;
* **supervision** — every chunk runs in its own forked worker whose
  liveness the parent watches (process sentinel + a shared heartbeat the
  worker bumps per trial) and whose result frame is integrity-checked
  (SHA-256 over the pickled results).  A worker that dies, hangs past
  the heartbeat deadline, or returns a corrupted frame gets its chunk
  **requeued with exponential backoff + jitter**; after ``max_retries``
  the pool **degrades gracefully to the serial engine** (the chunk runs
  in-process), surfaced on the always-on resilience counters
  (:func:`repro.obs.trace.resilience_event_counts`) — never silent;
* **serial fallback** — ``workers=1``, platforms without ``fork``
  (``spawn``-only platforms cannot ship closures), and nested pools all
  degrade to a plain in-process loop with identical semantics.

Because a chunk's worker forks fresh for each attempt and copy-on-write
isolates it from the parent, a crashed or killed attempt leaves *no*
partial state behind — the retry replays the chunk from scratch against
unchanged parent memory, which is what makes recovery bit-identical.

Determinism contract
--------------------
Results must be *bit-identical at any worker count, through any number
of injected faults*.  The pool guarantees ordering and clean-slate
retries; the caller must make each trial self-contained:

1. derive per-trial RNGs with :func:`spawn_rngs` (``np.random.
   SeedSequence.spawn`` from the experiment seed) instead of sharing one
   generator across trials — a shared stream's draws would depend on
   trial scheduling;
2. give each trial its own core (a factory or a copy), or only read
   shared state — forked workers see copy-on-write parent state, so a
   trial that *mutates* a shared core would diverge between serial and
   parallel runs (and between a first attempt and its retry).

``tests/test_parallel.py`` pins the contract; ``tests/test_resilience.py``
pins recovery (injected crash/hang/corruption via
:class:`repro.resilience.FaultInjector` recovers to bit-identical
results); the Figure 4 determinism test asserts
``stability_experiment(workers=4)`` equals ``workers=1`` bit-for-bit.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import kernels
from repro.obs import trace as obs

__all__ = [
    "TrialPool",
    "SuperviseConfig",
    "RetryExhaustedError",
    "fork_available",
    "resolve_workers",
    "spawn_seeds",
    "spawn_rngs",
]

#: Environment default for ``workers=None`` — CI's pool smoke job sets
#: this to run every pooled experiment with 2 workers.
WORKERS_ENV = "REPRO_TRIAL_WORKERS"


def fork_available() -> bool:
    """Whether this platform can fork workers (closures need fork)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[Any] = None) -> int:
    """Resolve a ``workers`` argument to a concrete positive count.

    ``None`` reads :data:`WORKERS_ENV` (default 1 — experiments stay
    serial unless asked); ``"auto"`` or ``0`` means one worker per CPU.
    An explicit invalid argument raises; an invalid *environment* value
    (a typo in a job script must not kill an hours-long campaign at
    import of the pool path) falls back to serial with a warning and a
    resilience-counter entry.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            return _coerce_workers(raw)
        except (ValueError, TypeError):
            warnings.warn(
                f"ignoring invalid {WORKERS_ENV}={raw!r} (want a positive "
                f"integer, 'auto' or 0); running serial",
                RuntimeWarning,
                stacklevel=2,
            )
            obs.record_resilience_event(
                "env_workers_invalid", detail=f"{WORKERS_ENV}={raw!r}"
            )
            return 1
    return _coerce_workers(workers)


def _coerce_workers(workers: Any) -> int:
    if workers in ("auto", 0, "0"):
        return os.cpu_count() or 1
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return count


def spawn_seeds(seed: Optional[int], n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child seed sequences of the experiment seed."""
    return list(np.random.SeedSequence(seed).spawn(n))


def spawn_rngs(seed: Optional[int], n: int) -> List[np.random.Generator]:
    """``n`` independent per-trial generators for one experiment seed."""
    return [np.random.default_rng(child) for child in spawn_seeds(seed, n)]


@dataclass(frozen=True)
class SuperviseConfig:
    """How the parent supervises forked chunk workers.

    ``heartbeat_timeout`` is the hang detector: seconds a worker may go
    without completing a trial (workers bump a shared heartbeat per
    trial) before it is killed and its chunk requeued.  ``None``
    disables it — the right default, since no universal bound on one
    trial's runtime exists; campaigns that know theirs (CI chaos jobs,
    the ``repro campaign`` CLI) pass one.
    """

    #: Re-dispatches of one chunk after its first failed attempt.
    max_retries: int = 3
    #: Seconds without worker progress before it counts as hung.
    heartbeat_timeout: Optional[float] = None
    #: First retry delay; doubles per attempt (exponential backoff).
    backoff_base: float = 0.05
    #: Backoff ceiling in seconds.
    backoff_cap: float = 2.0
    #: Max extra delay fraction, drawn deterministically per attempt —
    #: decorrelates retry storms without perturbing results.
    backoff_jitter: float = 0.25
    #: After retry exhaustion: run the chunk serially in the parent
    #: (True) or raise :class:`RetryExhaustedError` (False).
    degrade_serial: bool = True

    def backoff_delay(self, chunk_index: int, attempt: int) -> float:
        """Deterministic backoff-with-jitter delay before ``attempt``."""
        base = min(
            self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1))
        )
        if self.backoff_jitter <= 0:
            return base
        jitter = np.random.default_rng(
            np.random.SeedSequence([chunk_index, attempt, 0xBACC0FF])
        ).random()
        return base * (1.0 + self.backoff_jitter * jitter)


class RetryExhaustedError(RuntimeError):
    """A chunk failed every attempt and serial degradation was disabled."""

    def __init__(self, chunk_index: int, attempts: int, last_fault: str):
        super().__init__(
            f"chunk {chunk_index} failed {attempts} attempts "
            f"(last fault: {last_fault}) and degrade_serial is off"
        )
        self.chunk_index = chunk_index
        self.attempts = attempts
        self.last_fault = last_fault


# The trial function / fault injector of the pool currently dispatching.
# Set immediately before workers fork (so they inherit them) and cleared
# after; _ACTIVE_FN doubles as the reentrancy latch that sends nested
# pools down the serial path.
_ACTIVE_FN: Optional[Callable[[Any], Any]] = None
_ACTIVE_INJECTOR = None  # Optional[repro.resilience.FaultInjector]


def _chunk_worker(conn, heartbeat, chunk_index: int, attempt: int,
                  chunk: Sequence[Any]) -> None:
    """Worker body: run the inherited trial function over one chunk.

    Sends one frame back on ``conn``:

    * ``("ok", pid, elapsed, digest, blob)`` — ``blob`` is the pickled
      result list, ``digest`` its SHA-256; the parent verifies the
      digest before trusting the payload (a worker returning garbage —
      injected here by the corrupt fault, in production by e.g. a
      partial write through a dying interpreter — is requeued, not
      believed);
    * ``("error", pid, payload)`` — the trial function raised; the
      parent re-raises immediately (a clean exception is a bug in the
      experiment, not a fault to retry).

    An injected *crash* exits without sending anything; an injected
    *hang* sleeps without heartbeating, which is what the parent's
    heartbeat deadline exists to catch.
    """
    fn = _ACTIVE_FN
    assert fn is not None, "worker forked without an active trial function"
    # No-op when the parent warmed the kernel layer before forking; a
    # backstop for workers whose parent skipped it (direct use).
    kernels.ensure_initialized()
    injector = _ACTIVE_INJECTOR
    fault = injector.decide(chunk_index, attempt) if injector else None
    if fault == "crash":
        injector.crash()
    if fault == "hang":
        time.sleep(injector.spec.hang_seconds)
    start = time.perf_counter()
    try:
        results = []
        for payload in chunk:
            results.append(fn(payload))
            if heartbeat is not None:
                heartbeat.value = time.monotonic()
    except BaseException as exc:
        try:
            payload = pickle.dumps(exc, protocol=4)
        except Exception:
            payload = pickle.dumps(
                RuntimeError(f"{type(exc).__name__}: {exc}"), protocol=4
            )
        conn.send(("error", os.getpid(), payload))
        conn.close()
        return
    blob = pickle.dumps(results, protocol=4)
    digest = hashlib.sha256(blob).hexdigest()
    if fault == "corrupt":
        blob = injector.corrupt_bytes(blob, chunk_index, attempt)
    conn.send(("ok", os.getpid(), time.perf_counter() - start, digest, blob))
    conn.close()


class _Slot:
    """One in-flight chunk attempt: its process, pipe and heartbeat."""

    __slots__ = ("proc", "conn", "heartbeat", "chunk_index", "attempt",
                 "started")

    def __init__(self, proc, conn, heartbeat, chunk_index, attempt):
        self.proc = proc
        self.conn = conn
        self.heartbeat = heartbeat
        self.chunk_index = chunk_index
        self.attempt = attempt
        self.started = time.monotonic()

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()


class TrialPool:
    """Fan a trial function over payloads, preserving payload order."""

    def __init__(
        self,
        workers: Optional[Any] = None,
        *,
        chunk_size: Optional[int] = None,
        supervise: Optional[SuperviseConfig] = None,
        fault_injector=None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.supervise = supervise or SuperviseConfig()
        #: Test/CI hook: a :class:`repro.resilience.FaultInjector` that
        #: makes forked workers misbehave on a deterministic schedule.
        #: Never consulted on the serial path.
        self.fault_injector = fault_injector

    # -- internals ----------------------------------------------------------

    def _effective_workers(self, n_payloads: int) -> int:
        if _ACTIVE_FN is not None:  # nested pool: stay in-process
            return 1
        if not fork_available():
            return 1
        return max(1, min(self.workers, n_payloads))

    def _chunks(self, payloads: List[Any], workers: int) -> List[List[Any]]:
        # Several chunks per worker evens out trial-cost variance while
        # keeping dispatch overhead amortised.
        size = self.chunk_size or max(1, -(-len(payloads) // (workers * 4)))
        return [
            payloads[i:i + size] for i in range(0, len(payloads), size)
        ]

    def _spawn(self, ctx, chunks, chunk_index: int, attempt: int) -> _Slot:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        heartbeat = ctx.Value("d", time.monotonic())
        proc = ctx.Process(
            target=_chunk_worker,
            args=(child_conn, heartbeat, chunk_index, attempt,
                  chunks[chunk_index]),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Slot(proc, parent_conn, heartbeat, chunk_index, attempt)

    def _supervised_dispatch(
        self, ctx, fn, chunks: List[List[Any]], workers: int,
        consume: Optional[Callable[[int, List[Any]], None]] = None,
    ) -> List[tuple]:
        """Run every chunk to completion under supervision.

        Returns ``[(worker_pid, elapsed_seconds, results), ...]`` in
        chunk order, so the parent can attribute per-chunk latency to
        workers in its trace (events a forked worker emits into *its*
        tracer die with the worker; the parent is the only durable
        sink).

        With ``consume`` given, each verified chunk's results are handed
        to it the moment the frame arrives (in completion order, not
        chunk order) and are *not* retained — the streaming-reduction
        path, which keeps parent memory at one chunk instead of the
        whole campaign.
        """
        sup = self.supervise
        pending = deque(range(len(chunks)))
        not_before: Dict[int, float] = {}
        attempts: Dict[int, int] = {i: 0 for i in range(len(chunks))}
        done: Dict[int, tuple] = {}
        running: List[_Slot] = []

        def fault(slot: _Slot, kind: str) -> None:
            ci = slot.chunk_index
            slot.close()
            running.remove(slot)
            obs.record_resilience_event(
                f"worker_{kind}" if kind in ("crash", "hang") else kind,
                detail=f"chunk={ci} attempt={slot.attempt}",
            )
            if attempts[ci] > sup.max_retries:
                if not sup.degrade_serial:
                    raise RetryExhaustedError(ci, attempts[ci], kind)
                # Graceful degradation: the chunk runs on the serial
                # engine, in-process.  _ACTIVE_FN is still set, so any
                # pool the trial opens stays serial too.
                obs.record_resilience_event(
                    "degrade_serial", detail=f"chunk={ci}"
                )
                start = time.perf_counter()
                results = [fn(payload) for payload in chunks[ci]]
                elapsed = time.perf_counter() - start
                if consume is not None:
                    consume(ci, results)
                    results = None
                done[ci] = (os.getpid(), elapsed, results)
            else:
                obs.record_resilience_event(
                    "chunk_retry", detail=f"chunk={ci} kind={kind}"
                )
                not_before[ci] = time.monotonic() + sup.backoff_delay(
                    ci, attempts[ci]
                )
                pending.append(ci)

        try:
            while len(done) < len(chunks):
                now = time.monotonic()
                # Launch every eligible pending chunk into a free slot.
                blocked = []
                while pending and len(running) < workers:
                    ci = pending.popleft()
                    if not_before.get(ci, 0.0) > now:
                        blocked.append(ci)
                        continue
                    attempts[ci] += 1
                    running.append(
                        self._spawn(ctx, chunks, ci, attempts[ci] - 1)
                    )
                pending.extend(blocked)
                if not running:
                    if not pending:
                        continue  # everything landed in done via degrade
                    wake = min(not_before.get(ci, now) for ci in pending)
                    time.sleep(max(0.0, min(wake - now, 0.25)))
                    continue
                # Wait for frames (or worker death: EOF wakes us too).
                ready = multiprocessing.connection.wait(
                    [slot.conn for slot in running], timeout=0.05
                )
                for slot in list(running):
                    if slot.conn in ready:
                        try:
                            frame = slot.conn.recv()
                        except (EOFError, OSError):
                            fault(slot, "crash")
                            continue
                        if frame[0] == "error":
                            raise pickle.loads(frame[2])
                        _, pid, elapsed, digest, blob = frame
                        if hashlib.sha256(blob).hexdigest() != digest:
                            fault(slot, "chunk_corrupt")
                            continue
                        results = pickle.loads(blob)
                        if consume is not None:
                            consume(slot.chunk_index, results)
                            results = None
                        done[slot.chunk_index] = (pid, elapsed, results)
                        slot.close()
                        running.remove(slot)
                    elif not slot.proc.is_alive():
                        # Dead — but it may have sent its frame and
                        # exited *after* the wait() snapshot above, so
                        # never declare a crash while the pipe still has
                        # anything to say.  poll() is true both for a
                        # queued frame and for EOF, and the next pass's
                        # wait() disambiguates: recv() returns the frame
                        # or raises EOFError (a real crash).
                        if not slot.conn.poll():
                            fault(slot, "crash")
                    elif (
                        sup.heartbeat_timeout is not None
                        and time.monotonic() - max(
                            slot.heartbeat.value, slot.started
                        ) > sup.heartbeat_timeout
                    ):
                        fault(slot, "hang")
        finally:
            for slot in running:
                slot.close()
        return [done[i] for i in range(len(chunks))]

    def _map_forked(
        self, fn: Callable[[Any], Any], payloads: List[Any], workers: int,
        consume: Optional[Callable[[int, List[Any]], None]] = None,
    ) -> List[Any]:
        global _ACTIVE_FN, _ACTIVE_INJECTOR
        chunks = self._chunks(payloads, workers)
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "pool",
                "dispatch",
                payloads=len(payloads),
                chunks=len(chunks),
                workers=workers,
            )
        dispatch_start = time.perf_counter()
        # Resolve and JIT/load the kernel backend once in the parent so
        # every forked worker inherits a warm backend instead of racing
        # to build the compiled module N times.
        kernels.warmup()
        _ACTIVE_FN = fn
        _ACTIVE_INJECTOR = self.fault_injector
        try:
            ctx = multiprocessing.get_context("fork")
            chunk_results = self._supervised_dispatch(
                ctx, fn, chunks, workers, consume
            )
        finally:
            _ACTIVE_FN = None
            _ACTIVE_INJECTOR = None
        if tracer is not None:
            wall = time.perf_counter() - dispatch_start
            for i, (worker_pid, elapsed, _results) in enumerate(chunk_results):
                tracer.emit(
                    "pool",
                    "chunk",
                    pid=worker_pid,
                    chunk=i,
                    trials=len(chunks[i]),
                    elapsed_s=round(elapsed, 6),
                )
            tracer.emit(
                "pool",
                "collected",
                payloads=len(payloads),
                workers=workers,
                elapsed_s=round(wall, 6),
            )
            metrics = tracer.metrics
            if metrics is not None:
                hist = metrics.histogram(
                    "repro_pool_chunk_seconds",
                    "wall time of one forked trial chunk",
                )
                for _, elapsed, _results in chunk_results:
                    hist.observe(elapsed)
                metrics.counter(
                    "repro_pool_trials_total",
                    "trials dispatched through forked workers",
                ).inc(len(payloads))
        if consume is not None:
            return []
        return [
            result
            for _, _, results in chunk_results
            for result in results
        ]

    # -- API ----------------------------------------------------------------

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[Any]:
        """``[fn(p) for p in payloads]``, possibly across worker processes.

        Results come back in payload order regardless of which worker
        finished first, through any number of supervised retries.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        workers = self._effective_workers(len(payloads))
        if workers <= 1:
            return [fn(payload) for payload in payloads]
        return self._map_forked(fn, payloads, workers)

    def map_reduce(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        merge: Callable[[Any, Any], Any],
        zero: Any,
    ) -> Any:
        """Fold ``fn`` over payloads without materialising the results.

        ``merge(accumulator, result)`` is applied to each trial result
        and its return value becomes the accumulator; ``zero`` is the
        initial accumulator.  On the forked path chunk results are folded
        the moment each chunk's frame arrives — parent memory stays at
        O(one chunk) instead of O(campaign), which is what lets the
        campaign service stream millions of trials through a handful of
        accumulators.

        Chunks complete in nondeterministic order, so a deterministic
        fold requires ``merge`` to be associative and commutative over
        the trial results (the :mod:`repro.service.aggregate`
        accumulators are exact-rational precisely to meet this).  The
        serial path folds in payload order, same as a plain loop.
        """
        payloads = list(payloads)
        acc = zero
        if not payloads:
            return acc
        workers = self._effective_workers(len(payloads))
        if workers <= 1:
            for payload in payloads:
                acc = merge(acc, fn(payload))
            return acc
        box = {"acc": acc}

        def consume(chunk_index: int, results: List[Any]) -> None:
            for result in results:
                box["acc"] = merge(box["acc"], result)

        self._map_forked(fn, payloads, workers, consume)
        return box["acc"]

    def find_first(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        predicate: Callable[[Any], bool] = lambda result: result is not None,
    ) -> Optional[Any]:
        """First (in payload order) trial result satisfying ``predicate``.

        The serial path stops at the winner exactly like a search loop;
        the parallel path evaluates wave after wave of payloads and stops
        after the first wave containing a match — later payloads in the
        winning wave are wasted work, but the *returned* result is the
        payload-order first match either way, keeping search outcomes
        independent of the worker count.
        """
        payloads = list(payloads)
        if not payloads:
            return None
        workers = self._effective_workers(len(payloads))
        if workers <= 1:
            for payload in payloads:
                result = fn(payload)
                if predicate(result):
                    return result
            return None
        wave = workers * (self.chunk_size or 4)
        for start in range(0, len(payloads), wave):
            for result in self._map_forked(
                fn, payloads[start:start + wave], workers
            ):
                if predicate(result):
                    return result
        return None
