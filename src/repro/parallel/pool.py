"""Process-pool trial engine for embarrassingly-parallel experiments.

The paper's evaluation is built out of *independent trials*: candidate
blocks in the §6.2 calibration search and the Figure 4 stability
experiment, message transmissions in the Table 2/3 covert-channel
sweeps, parameter cells in the ablation benches.  Each trial simulates
branches against its own core state and returns a small result object,
which is exactly the worker-pool-over-test-cases shape fuzzing harnesses
use at scale.  :class:`TrialPool` provides that engine:

* **fork dispatch** — trials run in ``fork``-context worker processes,
  so the trial function may be any closure over parent state (cores,
  compiled blocks, factories): the function itself is handed to workers
  through a pre-fork module global and is never pickled, only payloads
  and results cross the process boundary;
* **chunked dispatch, ordered collection** — payloads are dispatched in
  index-ordered chunks and results are reassembled in payload order, so
  callers observe exactly the serial loop's result list;
* **serial fallback** — ``workers=1``, platforms without ``fork``
  (``spawn``-only platforms cannot ship closures), and nested pools all
  degrade to a plain in-process loop with identical semantics.

Determinism contract
--------------------
Results must be *bit-identical at any worker count*.  The pool
guarantees ordering; the caller must make each trial self-contained:

1. derive per-trial RNGs with :func:`spawn_rngs` (``np.random.
   SeedSequence.spawn`` from the experiment seed) instead of sharing one
   generator across trials — a shared stream's draws would depend on
   trial scheduling;
2. give each trial its own core (a factory or a copy), or only read
   shared state — forked workers see copy-on-write parent state, so a
   trial that *mutates* a shared core would diverge between serial and
   parallel runs.

``tests/test_parallel.py`` pins the contract; the Figure 4 determinism
test asserts ``stability_experiment(workers=4)`` equals ``workers=1``
bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.obs import trace as obs

__all__ = [
    "TrialPool",
    "fork_available",
    "resolve_workers",
    "spawn_seeds",
    "spawn_rngs",
]

#: Environment default for ``workers=None`` — CI's pool smoke job sets
#: this to run every pooled experiment with 2 workers.
WORKERS_ENV = "REPRO_TRIAL_WORKERS"


def fork_available() -> bool:
    """Whether this platform can fork workers (closures need fork)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[Any] = None) -> int:
    """Resolve a ``workers`` argument to a concrete positive count.

    ``None`` reads :data:`WORKERS_ENV` (default 1 — experiments stay
    serial unless asked); ``"auto"`` or ``0`` means one worker per CPU.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        workers = raw
    if workers in ("auto", 0, "0"):
        return os.cpu_count() or 1
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return count


def spawn_seeds(seed: Optional[int], n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child seed sequences of the experiment seed."""
    return list(np.random.SeedSequence(seed).spawn(n))


def spawn_rngs(seed: Optional[int], n: int) -> List[np.random.Generator]:
    """``n`` independent per-trial generators for one experiment seed."""
    return [np.random.default_rng(child) for child in spawn_seeds(seed, n)]


# The trial function of the pool currently dispatching.  Set immediately
# before workers fork (so they inherit it) and cleared after; doubles as
# the reentrancy latch that sends nested pools down the serial path.
_ACTIVE_FN: Optional[Callable[[Any], Any]] = None


def _run_chunk(chunk: Sequence[Any]) -> tuple:
    """Worker body: run the inherited trial function over one chunk.

    Returns ``(worker_pid, elapsed_seconds, results)`` so the parent can
    attribute per-chunk latency to workers in its trace (events a forked
    worker emits into *its* tracer die with the worker; the parent is
    the only durable sink).
    """
    fn = _ACTIVE_FN
    assert fn is not None, "worker forked without an active trial function"
    start = time.perf_counter()
    results = [fn(payload) for payload in chunk]
    return os.getpid(), time.perf_counter() - start, results


class TrialPool:
    """Fan a trial function over payloads, preserving payload order."""

    def __init__(
        self,
        workers: Optional[Any] = None,
        *,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size

    # -- internals ----------------------------------------------------------

    def _effective_workers(self, n_payloads: int) -> int:
        global _ACTIVE_FN
        if _ACTIVE_FN is not None:  # nested pool: stay in-process
            return 1
        if not fork_available():
            return 1
        return max(1, min(self.workers, n_payloads))

    def _chunks(self, payloads: List[Any], workers: int) -> List[List[Any]]:
        # Several chunks per worker evens out trial-cost variance while
        # keeping dispatch overhead amortised.
        size = self.chunk_size or max(1, -(-len(payloads) // (workers * 4)))
        return [
            payloads[i:i + size] for i in range(0, len(payloads), size)
        ]

    def _map_forked(
        self, fn: Callable[[Any], Any], payloads: List[Any], workers: int
    ) -> List[Any]:
        global _ACTIVE_FN
        _ACTIVE_FN = fn
        chunks = self._chunks(payloads, workers)
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "pool",
                "dispatch",
                payloads=len(payloads),
                chunks=len(chunks),
                workers=workers,
            )
        dispatch_start = time.perf_counter()
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers) as pool:
                chunk_results = pool.map(_run_chunk, chunks)
        finally:
            _ACTIVE_FN = None
        if tracer is not None:
            wall = time.perf_counter() - dispatch_start
            for i, (worker_pid, elapsed, results) in enumerate(chunk_results):
                tracer.emit(
                    "pool",
                    "chunk",
                    pid=worker_pid,
                    chunk=i,
                    trials=len(results),
                    elapsed_s=round(elapsed, 6),
                )
            tracer.emit(
                "pool",
                "collected",
                payloads=len(payloads),
                workers=workers,
                elapsed_s=round(wall, 6),
            )
            metrics = tracer.metrics
            if metrics is not None:
                hist = metrics.histogram(
                    "repro_pool_chunk_seconds",
                    "wall time of one forked trial chunk",
                )
                for _, elapsed, _results in chunk_results:
                    hist.observe(elapsed)
                metrics.counter(
                    "repro_pool_trials_total",
                    "trials dispatched through forked workers",
                ).inc(len(payloads))
        return [
            result
            for _, _, results in chunk_results
            for result in results
        ]

    # -- API ----------------------------------------------------------------

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[Any]:
        """``[fn(p) for p in payloads]``, possibly across worker processes.

        Results come back in payload order regardless of which worker
        finished first.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        workers = self._effective_workers(len(payloads))
        if workers <= 1:
            return [fn(payload) for payload in payloads]
        return self._map_forked(fn, payloads, workers)

    def find_first(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        predicate: Callable[[Any], bool] = lambda result: result is not None,
    ) -> Optional[Any]:
        """First (in payload order) trial result satisfying ``predicate``.

        The serial path stops at the winner exactly like a search loop;
        the parallel path evaluates wave after wave of payloads and stops
        after the first wave containing a match — later payloads in the
        winning wave are wasted work, but the *returned* result is the
        payload-order first match either way, keeping search outcomes
        independent of the worker count.
        """
        payloads = list(payloads)
        if not payloads:
            return None
        workers = self._effective_workers(len(payloads))
        if workers <= 1:
            for payload in payloads:
                result = fn(payload)
                if predicate(result):
                    return result
            return None
        wave = workers * (self.chunk_size or 4)
        for start in range(0, len(payloads), wave):
            for result in self._map_forked(
                fn, payloads[start:start + wave], workers
            ):
                if predicate(result):
                    return result
        return None
