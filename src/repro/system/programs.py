"""Programs: schedulable branch-instruction streams.

The attack-facade modules drive the core directly, which is convenient
but hides the scheduling reality of paper §3: victim, spy and background
work are *processes* that an OS scheduler interleaves, and the attacker's
leverage is exactly its influence over that interleaving (slowing the
victim to one branch per slice, à la Gullasch et al.).

A :class:`Program` couples a :class:`~repro.cpu.process.Process` to a
generator of :class:`BranchOp`/:class:`Yield` events; the
:class:`~repro.system.scheduler.SliceScheduler` (see below) runs several
programs round-robin with a per-program slice length measured in branch
instructions.  ``examples/scheduled_attack.py`` and
``tests/test_programs.py`` run the complete BranchScope loop this way —
no harness shortcuts, every branch of every party goes through the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Iterator, List, Optional, Union

import numpy as np

from repro.cpu.core import BranchExecution, PhysicalCore
from repro.cpu.process import Process

__all__ = ["BranchOp", "Yield", "Program", "SliceScheduler", "program_from_branches"]


@dataclass(frozen=True)
class BranchOp:
    """One conditional branch the program wants to execute."""

    address: int
    taken: bool
    target: Optional[int] = None


@dataclass(frozen=True)
class Yield:
    """Voluntarily end the current slice (e.g. the spy sleeping in
    Listing 3's ``usleep`` while the victim runs)."""


ProgramEvent = Union[BranchOp, Yield]


class Program:
    """A process plus its instruction stream.

    ``body`` is a generator function receiving the program instance; it
    yields :class:`BranchOp` to execute branches and :class:`Yield` to
    give up the CPU.  The results of executed branches are appended to
    :attr:`executions` so program logic can observe its own performance
    counters the way the spy does.
    """

    def __init__(
        self,
        process: Process,
        body: Callable[["Program"], Generator[ProgramEvent, None, None]],
    ) -> None:
        self.process = process
        self._body = body
        self._stream: Optional[Iterator[ProgramEvent]] = None
        self.executions: List[BranchExecution] = []
        self.finished = False

    def _ensure_started(self) -> None:
        if self._stream is None:
            self._stream = iter(self._body(self))

    def run_slice(self, core: PhysicalCore, max_branches: int) -> int:
        """Run until ``max_branches`` branches executed, a Yield, or end.

        Returns the number of branches executed this slice.
        """
        if self.finished:
            return 0
        self._ensure_started()
        executed = 0
        while executed < max_branches:
            try:
                event = next(self._stream)
            except StopIteration:
                self.finished = True
                break
            if isinstance(event, Yield):
                break
            record = core.execute_branch(
                self.process, event.address, event.taken, event.target
            )
            self.executions.append(record)
            executed += 1
        return executed

    @property
    def last_execution(self) -> Optional[BranchExecution]:
        """Most recent branch result (the spy reads its counters here)."""
        return self.executions[-1] if self.executions else None


def program_from_branches(
    process: Process, branches
) -> Program:
    """Wrap a plain iterable of ``(address, taken)`` pairs as a Program."""

    def body(_program: Program):
        for address, taken in branches:
            yield BranchOp(address, taken)

    return Program(process, body)


class SliceScheduler:
    """Round-robin scheduler over programs with per-program slices.

    ``slices`` maps each program to its slice length in branch
    instructions; the attacker's Gullasch-style leverage is modelled by
    giving the victim a slice of one branch.  Context-switch boundaries
    invoke the installed mitigations' ``on_context_switch`` hooks, as
    the :class:`~repro.system.scheduler.AttackScheduler` does.
    """

    def __init__(
        self,
        core: PhysicalCore,
        programs: List[Program],
        slices: Optional[dict] = None,
        default_slice: int = 50,
    ) -> None:
        if not programs:
            raise ValueError("need at least one program")
        if default_slice <= 0:
            raise ValueError("slices must be positive")
        self.core = core
        self.programs = list(programs)
        self._slices = dict(slices or {})
        self.default_slice = default_slice
        self.rounds = 0

    def slice_for(self, program: Program) -> int:
        """Slice length (branches) granted to ``program`` per round."""
        return int(self._slices.get(program, self.default_slice))

    @property
    def all_finished(self) -> bool:
        """Whether every program has run to completion."""
        return all(p.finished for p in self.programs)

    def run_round(self) -> int:
        """One scheduling round: every unfinished program gets a slice.

        Returns the total branches executed in the round.
        """
        executed = 0
        for program in self.programs:
            if program.finished:
                continue
            self.core.mitigations.on_context_switch(self.core)
            executed += program.run_slice(self.core, self.slice_for(program))
        self.rounds += 1
        return executed

    def run(self, max_rounds: int = 1_000_000) -> int:
        """Run rounds until every program finishes; returns rounds used."""
        start = self.rounds
        while not self.all_finished:
            if self.rounds - start >= max_rounds:
                raise RuntimeError("scheduler exceeded max_rounds")
            self.run_round()
        return self.rounds - start
