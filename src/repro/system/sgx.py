"""Intel SGX enclave model with a malicious OS (paper §9).

SGX protects enclave *memory* from system software, but the BPU remains
shared between enclave and non-enclave code — that asymmetry is the
paper's §9 target.  The SGX threat model also *helps* the attacker: the
OS is attacker-controlled, so it can

* schedule the enclave with single-instruction precision (APIC timer
  interrupts after a few instructions, or page-unmap faults — §9.2),
* quiesce the machine, eliminating noise (Table 3's improved error
  rates), and
* read performance counters freely.

:class:`Enclave` wraps a victim process: its secret state is only
reachable through :meth:`Enclave.step` (executing the next secret-
dependent branch on the shared core); nothing else about the secret is
exposed.  :class:`MaliciousOS` provides the attacker's control surface.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.system.noise import NoiseModel, inject_noise

__all__ = ["Enclave", "MaliciousOS"]


class Enclave:
    """A victim program sealed inside SGX.

    Parameters
    ----------
    process:
        The process identity (flagged ``enclave=True`` automatically).
    step_fn:
        Executes the enclave's next secret-dependent branch on a given
        core.  This is the *only* channel from the secret to the outside
        world; the secret itself lives in the closure and is never
        attribute-accessible (mirroring SGX memory protection).
    """

    def __init__(
        self, process: Process, step_fn: Callable[[PhysicalCore], None]
    ) -> None:
        process.enclave = True
        self.process = process
        self._step_fn = step_fn

    def step(self, core: PhysicalCore) -> None:
        """Resume the enclave for one secret-dependent branch."""
        self._step_fn(core)


class MaliciousOS:
    """The attacker-controlled operating system of the SGX threat model."""

    def __init__(
        self,
        core: PhysicalCore,
        *,
        quiesce: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """With ``quiesce=True`` the OS prevents other processes from
        running (Table 3 "SGX isolated"); otherwise normal system noise
        remains (Table 3 "SGX with noise")."""
        self.core = core
        self.rng = rng if rng is not None else core.rng
        self.noise_model = (
            NoiseModel.quiesced() if quiesce else NoiseModel.isolated()
        )

    def single_step(self, enclave: Enclave) -> None:
        """Run the enclave for exactly one secret-dependent branch.

        Models APIC-timer single-stepping (§9.2): unlike the conventional
        scheduler there is **no** jitter — the OS controls interrupt
        delivery precisely, which is why SGX error rates beat the
        conventional ones in Table 3.
        """
        enclave.step(self.core)

    def stage_gap(self) -> int:
        """Time between attack stages under OS-controlled noise."""
        n = self.noise_model.gap_branches(self.rng)
        inject_noise(self.core, n, self.rng)
        return n
