"""System noise: background branch activity on the shared BPU.

Table 2 evaluates the covert channel in two settings: an *isolated*
physical core (only OS housekeeping perturbs the predictor) and a *noisy*
one (normal system activity runs on the sibling hardware thread).  Either
way the noise is other code executing branches through the same shared
predictor; each such branch lands on a PHT entry determined by its
address and nudges that entry's FSM — occasionally the entry the attack
is using, which is what produces bit errors.

Two implementations are provided:

* :func:`noise_branches` generates explicit ``(address, taken)`` pairs to
  feed :meth:`~repro.cpu.core.PhysicalCore.execute_branch` — the exact
  path, used in tests and small experiments.
* :func:`inject_noise` applies the *aggregate* effect of ``n`` random
  branches directly to the predictor arrays with vectorised NumPy — the
  fast path used inside long covert-channel runs.  A property test
  (``tests/test_noise.py``) checks the two produce statistically
  indistinguishable per-entry effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process

__all__ = [
    "NoiseModel",
    "NoiseDraw",
    "noise_branches",
    "draw_noise",
    "apply_noise_draw",
    "inject_noise",
    "run_workload_noise",
    "apply_fsm_steps",
]

#: Address range noise branches are drawn from: a large, unrelated shared
#: library / kernel text region.
NOISE_REGION = (0x7F0000000000, 0x7F0000400000)


@dataclass(frozen=True)
class NoiseModel:
    """How much foreign branch activity hits the BPU between attack stages.

    ``ambient_branches`` models steady OS housekeeping; with probability
    ``burst_prob`` a scheduling burst of ``burst_size`` extra branches
    (timer interrupt, kworker, another process's timeslice) lands in the
    gap.  The Table 2 presets are :meth:`isolated` and :meth:`noisy`.
    """

    ambient_branches: int = 60
    burst_prob: float = 0.02
    burst_size: int = 2500

    @staticmethod
    def isolated() -> "NoiseModel":
        """Table 2's "isolated physical core" setting."""
        return NoiseModel(ambient_branches=60, burst_prob=0.02, burst_size=2500)

    @staticmethod
    def noisy() -> "NoiseModel":
        """Table 2's "no restrictions / with noise" setting."""
        return NoiseModel(ambient_branches=180, burst_prob=0.05, burst_size=3500)

    @staticmethod
    def quiesced() -> "NoiseModel":
        """An attacker-controlled OS suppressing other work (paper §9.2,
        Table 3's SGX-isolated setting)."""
        return NoiseModel(ambient_branches=4, burst_prob=0.001, burst_size=400)

    @staticmethod
    def silent() -> "NoiseModel":
        """No noise at all — for deterministic unit tests."""
        return NoiseModel(ambient_branches=0, burst_prob=0.0, burst_size=0)

    def gap_branches(self, rng: np.random.Generator) -> int:
        """Sample how many foreign branches execute in one stage gap."""
        n = 0
        if self.ambient_branches > 0:
            n += int(rng.poisson(self.ambient_branches))
        if self.burst_size > 0 and rng.random() < self.burst_prob:
            n += self.burst_size
        return n

    def gap_array(self, rng: np.random.Generator, n_gaps: int) -> np.ndarray:
        """Sample ``n_gaps`` stage gaps in two vectorised draws.

        Statistically identical to ``n_gaps`` :meth:`gap_branches` calls
        but orders of magnitude cheaper — per-call :class:`Generator`
        overhead dominates scalar draws.  The *stream* differs from the
        scalar call sequence, so use this only where a caller owns the
        whole generator (pre-drawn trial plans), never to replay a
        scalar engine's draws.
        """
        gaps = np.zeros(n_gaps, dtype=np.int64)
        if self.ambient_branches > 0:
            gaps += rng.poisson(self.ambient_branches, size=n_gaps)
        if self.burst_size > 0:
            gaps[rng.random(size=n_gaps) < self.burst_prob] += self.burst_size
        return gaps


def noise_branches(
    rng: np.random.Generator,
    n: int,
    region: Tuple[int, int] = NOISE_REGION,
) -> Iterator[Tuple[int, bool]]:
    """Yield ``n`` random foreign branches as ``(address, taken)`` pairs."""
    low, high = region
    addresses = rng.integers(low, high, size=n)
    outcomes = rng.integers(0, 2, size=n).astype(bool)
    for address, taken in zip(addresses, outcomes):
        yield int(address), bool(taken)


def apply_fsm_steps(
    levels: np.ndarray,
    step_table: np.ndarray,
    indices: np.ndarray,
    outcomes: np.ndarray,
) -> None:
    """Apply a sequence of FSM steps ``(indices[i], outcomes[i])`` in order.

    Equivalent to a Python loop of ``levels[idx] = step[out, levels[idx]]``
    but vectorised: duplicate indices are resolved by processing the k-th
    occurrence of each index in round k, preserving per-entry ordering
    (cross-entry ordering is irrelevant — entries are independent).
    """
    if len(indices) == 0:
        return
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    sorted_out = outcomes[order].astype(np.int8)
    is_first = np.ones(len(sorted_idx), dtype=bool)
    is_first[1:] = sorted_idx[1:] != sorted_idx[:-1]
    positions = np.arange(len(sorted_idx))
    group_start = np.maximum.accumulate(np.where(is_first, positions, 0))
    occurrence = positions - group_start
    for round_no in range(int(occurrence.max()) + 1):
        mask = occurrence == round_no
        idx = sorted_idx[mask]
        out = sorted_out[mask]
        levels[idx] = step_table[out, levels[idx]]


def run_workload_noise(core: PhysicalCore, workload, n: int) -> None:
    """Exact-path noise: execute ``n`` branches of a structured workload.

    Uniform-random noise (:func:`inject_noise`) is the fast default, but
    real co-runners execute *structured* control flow
    (:mod:`repro.workloads`): loops train entries to strong states,
    biased checks park entries on one side.  This helper runs such a
    co-runner exactly; the structured-vs-uniform comparison lives in
    ``tests/test_noise.py``.
    """
    process = Process("noise-workload")
    stream = workload.branches()
    for _ in range(n):
        address, taken = next(stream)
        core.execute_branch(process, address, taken)


@dataclass(frozen=True)
class NoiseDraw:
    """All randomness one noise gap consumes, drawn up front.

    Splitting the draw (:func:`draw_noise`) from the state mutation
    (:func:`apply_noise_draw`) lets the scalar and batch calibration
    engines consume the *identical* generator call sequence: the batch
    engine never mutates predictor state, but it must draw exactly what
    the scalar reference draws to stay bit-compatible.
    """

    n: int
    addresses: np.ndarray
    outcomes: np.ndarray
    gshare_indices: np.ndarray
    nudges: np.ndarray


def draw_noise(
    rng: np.random.Generator,
    n: int,
    n_gshare_entries: int,
    region: Tuple[int, int] = NOISE_REGION,
) -> NoiseDraw:
    """Draw the randomness of one ``n``-branch noise gap.

    Generator calls happen in the exact order the seed ``inject_noise``
    made them (addresses, outcomes, gshare indices, selector nudges), so
    any caller mixing this with other draws on the same generator sees
    an unchanged stream.  ``n <= 0`` draws nothing.
    """
    if n <= 0:
        empty = np.empty(0, dtype=np.int64)
        return NoiseDraw(0, empty, np.empty(0, dtype=bool), empty, empty)
    low, high = region
    addresses = rng.integers(low, high, size=n)
    outcomes = rng.integers(0, 2, size=n).astype(bool)
    gshare_indices = rng.integers(0, n_gshare_entries, size=n)
    nudges = rng.integers(-1, 2, size=n)
    return NoiseDraw(int(n), addresses, outcomes, gshare_indices, nudges)


def inject_noise(
    core: PhysicalCore,
    n: int,
    rng: np.random.Generator,
    region: Tuple[int, int] = NOISE_REGION,
) -> None:
    """Fast path: apply the aggregate BPU effect of ``n`` foreign branches.

    Perturbs the bimodal PHT (the attack's observable), the gshare PHT and
    GHR (2-level pollution), the branch identification table (evictions)
    and the selector, and advances the clock.  Performance counters of the
    noise source are not modelled — no attack reads them.
    """
    apply_noise_draw(
        core,
        draw_noise(rng, n, core.predictor.gshare.pht.n_entries, region),
    )


def apply_noise_draw(core: PhysicalCore, draw: NoiseDraw) -> None:
    """Apply one pre-drawn noise gap (see :class:`NoiseDraw`) to ``core``."""
    n = draw.n
    if n <= 0:
        return
    predictor = core.predictor
    step_table = predictor.bimodal.pht.fsm.step_table

    addresses = draw.addresses
    outcomes = draw.outcomes

    bimodal_idx = (addresses % predictor.bimodal.pht.n_entries).astype(np.int64)
    predictor.bimodal.pht.record_touch(bimodal_idx)
    apply_fsm_steps(predictor.bimodal.pht.levels, step_table, bimodal_idx, outcomes)

    # gshare indices are effectively uniform anyway (PC xor evolving GHR).
    gshare_idx = draw.gshare_indices
    predictor.gshare.pht.record_touch(gshare_idx)
    apply_fsm_steps(predictor.gshare.pht.levels, step_table, gshare_idx, outcomes)

    # The last branches leave their history in the GHR.
    tail = outcomes[-predictor.ghr.length:]
    ghr_value = 0
    for bit in tail:
        ghr_value = (ghr_value << 1) | int(bit)
    predictor.ghr.set(ghr_value)

    # Identification-table insertions (may evict attack/victim branches).
    bit_table = predictor.bit
    sets = (addresses % bit_table.n_sets).astype(np.int64)
    tags = ((addresses // bit_table.n_sets) & bit_table._tag_mask).astype(np.int64)
    bit_table.record_touch(sets)
    bit_table.valid[sets] = True
    bit_table.tags[sets] = tags

    # Selector drift: each noise branch nudges its choice counter at
    # random (its own bimodal/gshare accuracies are uncorrelated).  The
    # clip squeezes *every* entry into [0, 3] (also untouched entries a
    # wider-counter selector left above 3), so the changed set is taken
    # from the clipped result, not from the drift vector.
    sel = predictor.selector
    sel_idx = (addresses % sel.n_entries).astype(np.int64)
    nudges = draw.nudges
    drift = np.zeros(sel.n_entries, dtype=np.int64)
    np.add.at(drift, sel_idx, nudges)
    new_counters = np.clip(
        sel.counters.astype(np.int64) + drift, 0, 3
    ).astype(sel.counters.dtype)
    changed = np.nonzero(new_counters != sel.counters)[0]
    sel.record_touch(changed)
    sel.counters[changed] = new_counters[changed]

    core.clock.advance(int(n))
