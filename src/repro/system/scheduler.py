"""Attack-oriented scheduling model (paper §3, §7).

BranchScope needs the victim slowed down so that exactly one victim
branch executes between the spy's prime and probe stages ("we assume that
the spy can slow down the victim process in order to allow it to execute
a single branch instruction during the context switch", §7).  On a normal
OS this is achieved with scheduler abuse à la Gullasch et al. and is
imperfect; under SGX the malicious OS single-steps the enclave precisely.

:class:`AttackScheduler` models exactly that interface:

* :meth:`stage_gap` — time passes between attack stages; foreign branch
  noise (per the :class:`~repro.system.noise.NoiseModel`) hits the shared
  BPU.
* :meth:`victim_turn` — the victim gets scheduled to execute its next
  secret-dependent branch.  With probability ``victim_jitter`` the
  slowdown misfires and the victim executes zero or two steps instead of
  one — the scheduling-precision error source of the conventional (non-
  SGX) setting.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.system.noise import NoiseModel, inject_noise

__all__ = ["NoiseSetting", "AttackScheduler"]


class NoiseSetting(enum.Enum):
    """The environmental settings evaluated in Tables 2 and 3."""

    #: Table 2 "isolated": dedicated physical core, only OS housekeeping.
    ISOLATED = "isolated"
    #: Table 2 "with noise": unrestricted co-running system activity.
    NOISY = "with noise"
    #: Table 3 "SGX isolated": malicious OS suppresses all other work.
    QUIESCED = "quiesced"
    #: Deterministic, for unit tests.
    SILENT = "silent"

    def model(self) -> NoiseModel:
        """The branch-noise model for this setting."""
        return {
            NoiseSetting.ISOLATED: NoiseModel.isolated,
            NoiseSetting.NOISY: NoiseModel.noisy,
            NoiseSetting.QUIESCED: NoiseModel.quiesced,
            NoiseSetting.SILENT: NoiseModel.silent,
        }[self]()


class AttackScheduler:
    """Scheduling and noise orchestration for one attack session."""

    def __init__(
        self,
        core: PhysicalCore,
        setting: NoiseSetting = NoiseSetting.ISOLATED,
        *,
        victim_jitter: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """``victim_jitter`` defaults by setting: 0 under QUIESCED/SILENT
        (single-stepping / determinism), a small probability otherwise."""
        self.core = core
        self.setting = setting
        self.noise_model = setting.model()
        self.rng = rng if rng is not None else core.rng
        if victim_jitter is None:
            if setting in (NoiseSetting.QUIESCED, NoiseSetting.SILENT):
                victim_jitter = 0.0
            else:
                victim_jitter = 0.002
        if not 0.0 <= victim_jitter <= 1.0:
            raise ValueError("victim_jitter must be a probability")
        self.victim_jitter = victim_jitter

    def stage_gap(self) -> int:
        """Let wall-clock time pass between attack stages.

        A stage gap is a context-switch boundary: defenses that scrub
        BPU state between security domains fire here, then the setting's
        foreign-branch noise hits the shared BPU.  Returns how many noise
        branches executed.
        """
        self.core.mitigations.on_context_switch(self.core)
        n = self.noise_model.gap_branches(self.rng)
        inject_noise(self.core, n, self.rng)
        return n

    def victim_turn(self, step: Callable[[], None]) -> int:
        """Schedule the victim for (nominally) one secret branch.

        ``step`` executes one victim step.  Returns the number of steps
        actually executed (0, 1 or 2); callers that track the victim's
        progress use the return value, the attacker of course cannot.
        """
        if self.victim_jitter > 0.0 and self.rng.random() < self.victim_jitter:
            steps = int(self.rng.choice([0, 2]))
        else:
            steps = 1
        for _ in range(steps):
            step()
        return steps
