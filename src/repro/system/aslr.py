"""Address-space layout randomisation model (paper §4, §9.2).

ASLR randomises where a process's code is loaded, so an attacker who
wants a PHT collision with a victim branch must first learn the branch's
virtual address.  The paper notes the attacker can de-randomise with data
disclosure or side channels — and §9.2 shows BranchScope *itself* can be
that side channel, because PHT collisions reveal where victim branches
live modulo the PHT size.

We model ASLR as a random, alignment-constrained displacement of the
process load base within an entropy window, matching Linux mmap-style
code randomisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.process import Process

__all__ = ["AslrConfig"]


@dataclass(frozen=True)
class AslrConfig:
    """Entropy and alignment of code-base randomisation.

    Defaults model 28 bits of mmap entropy at page (4 KiB) alignment —
    i.e. the base is ``link_base + r * 4096`` with ``r`` uniform in
    ``[0, 2^16)`` by default entropy_bits=16 page-granule bits, a
    tractable stand-in for Linux's larger window (the *attack math* only
    depends on entropy modulo the PHT size; see
    :mod:`repro.core.aslr_attack`).
    """

    entropy_bits: int = 16
    alignment: int = 4096

    def __post_init__(self) -> None:
        if self.entropy_bits <= 0:
            raise ValueError("entropy_bits must be positive")
        if self.alignment <= 0:
            raise ValueError("alignment must be positive")

    @property
    def slots(self) -> int:
        """Number of equally likely load bases."""
        return 1 << self.entropy_bits

    def randomize_base(self, link_base: int, rng: np.random.Generator) -> int:
        """Draw a random load base for a binary linked at ``link_base``."""
        slot = int(rng.integers(0, self.slots))
        return link_base + slot * self.alignment

    def randomized_process(
        self,
        name: str,
        rng: np.random.Generator,
        link_base: int = 0x400000,
        **kwargs,
    ) -> Process:
        """Create a process with a freshly randomised load base."""
        return Process(
            name=name,
            link_base=link_base,
            load_base=self.randomize_base(link_base, rng),
            **kwargs,
        )
