"""Operating-system substrate.

Models the parts of the software stack the paper's threat model (§3)
depends on: co-scheduling of victim and spy on one physical core with
attacker-useful granularity (victim slowdown), background system noise on
the sibling hardware thread, address-space layout randomisation, and the
SGX enclave environment with a malicious OS (§9).
"""

from repro.system.aslr import AslrConfig
from repro.system.noise import NoiseModel, inject_noise
from repro.system.scheduler import AttackScheduler, NoiseSetting
from repro.system.sgx import Enclave, MaliciousOS

__all__ = [
    "AslrConfig",
    "AttackScheduler",
    "Enclave",
    "MaliciousOS",
    "NoiseModel",
    "NoiseSetting",
    "inject_noise",
]
