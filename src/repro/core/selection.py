"""Understanding the selection logic (paper §5.1, Figure 2).

The experiment that motivates the whole attack: an irregular-but-
repeating outcome sequence from a single branch cannot be predicted by a
1-level predictor (no better than ~50%), but a gshare-style 2-level
predictor learns it — and by watching the misprediction counter while
repeating the sequence, one observes the hybrid predictor *hand the
branch over* to the 2-level component within 5-7 repetitions.

"We initialize an array of 10 bits to a randomly selected state ...
execute a single branch instruction conditional on the array bits, once
for each bit.  We repeat the series of branches 20 times in a row and
record the total number of incorrect predictions in this branch sequence
for each of the iterations."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.cpu.counters import CounterKind
from repro.cpu.process import Process

__all__ = ["SelectorLearningResult", "selector_learning_experiment"]

#: Address of the experiment's single conditional branch.
EXPERIMENT_BRANCH_ADDRESS = 0x401136


@dataclass(frozen=True)
class SelectorLearningResult:
    """Average mispredictions per iteration of the repeated pattern."""

    #: Microarchitecture the experiment ran on.
    config_name: str
    #: ``mispredictions[i]`` = mean mispredicts in iteration ``i`` (of
    #: ``pattern_bits`` branches), averaged over runs — Figure 2's y-axis.
    mispredictions: np.ndarray

    @property
    def iterations(self) -> int:
        return len(self.mispredictions)

    def converged_by(self, threshold: float = 0.5) -> Optional[int]:
        """First iteration whose mean misprediction count stays below
        ``threshold`` for the rest of the run, or None."""
        for i in range(self.iterations):
            if (self.mispredictions[i:] < threshold).all():
                return i
        return None


def selector_learning_experiment(
    core_factory,
    *,
    pattern_bits: int = 10,
    iterations: int = 20,
    runs: int = 50,
    seed: int = 0,
    branch_address: int = EXPERIMENT_BRANCH_ADDRESS,
) -> SelectorLearningResult:
    """Run the §5.1 experiment and average over ``runs`` random patterns.

    ``core_factory`` builds a fresh core per run (each run must start
    with an untrained predictor, as each of the paper's runs does).
    Hardware performance counters track mispredictions, "enabling
    accurate measurement with a resolution of a single branch
    misprediction".
    """
    rng = np.random.default_rng(seed)
    totals = np.zeros(iterations, dtype=np.float64)
    config_name = ""
    for _ in range(runs):
        core: PhysicalCore = core_factory()
        config_name = core.config.name
        process = Process("selection-probe")
        pattern = rng.integers(0, 2, size=pattern_bits).astype(bool)
        counters = core.counters_for(process)
        for iteration in range(iterations):
            before = counters.read(CounterKind.BRANCH_MISSES)
            for taken in pattern:
                core.execute_branch(process, branch_address, bool(taken))
            after = counters.read(CounterKind.BRANCH_MISSES)
            totals[iteration] += after - before
    return SelectorLearningResult(
        config_name=config_name, mispredictions=totals / runs
    )
