"""ASLR derandomisation via directional-predictor collisions (paper §9.2).

"The attacker may learn not only whether a certain branch was taken or
not, but also detect the location of branch instruction in a victim's
virtual memory by observing branch collisions."

The 1-level PHT is indexed by ``address mod N`` (N = table size), so a
victim branch *collides* with a spy branch exactly when their addresses
are congruent mod N.  The attacker knows the branch's link-time offset in
the victim binary; ASLR hides the load base.  By priming a candidate
address to a strong state, triggering the victim, and probing, the
attacker detects whether the victim's branch landed on that entry —
scanning candidate congruence classes recovers ``load_base mod N``, i.e.
``log2(N)`` bits of ASLR entropy beyond the alignment bits (14 bits on
the 16384-entry table, which is why the paper calls the direction
predictor "a unique candidate for this class of attacks" now that
BTB-based variants are mitigated).

Detection must work whatever direction the victim's branch takes, so each
candidate is tested from both strong states:

* prime SN, probe TT: a taken victim branch moves SN→WN and the second
  probe hits (``MH`` instead of the ``MM`` baseline);
* prime WN, probe TT: baseline ``MH``; a taken victim branch yields
  ``HH`` and a not-taken one ``MM`` — discriminative in both directions
  on every modelled FSM, including Skylake's sticky-taken variant.

A candidate is flagged when either test observes a state change across
several trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.bpu.fsm import State
from repro.core.prime_probe import prime_direct, probe_pair
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.system.scheduler import AttackScheduler, NoiseSetting

__all__ = ["CandidateScore", "probe_collision", "recover_load_base"]


@dataclass(frozen=True)
class CandidateScore:
    """Collision evidence for one candidate congruence class."""

    candidate_address: int
    #: Fraction of trials in which a collision-consistent change was seen.
    score: float


def probe_collision(
    core: PhysicalCore,
    spy: Process,
    candidate_address: int,
    trigger: Callable[[], None],
    *,
    trials: int = 8,
    scheduler: Optional[AttackScheduler] = None,
) -> float:
    """Fraction of trials showing a victim-induced change at a candidate.

    Uses direct priming with the spy's own branch at the candidate
    address (no randomisation block needed: only this one entry must be
    controlled, and the spy's branch is freshly placed so it runs in
    1-level mode).
    """
    scheduler = scheduler or AttackScheduler(core, NoiseSetting.ISOLATED)
    hits = 0
    for trial in range(trials):
        # Alternate prime polarity.  SN/TT turns a taken victim branch
        # into MH (vs. MM baseline); WN/TT is sensitive in *both*
        # directions (victim taken -> HH, victim not-taken -> MM, vs. MH
        # baseline) and, unlike ST/NN, stays discriminative under the
        # Skylake sticky-taken FSM.
        if trial % 2 == 0:
            prime, probe, baseline = State.SN, (True, True), "MM"
        else:
            prime, probe, baseline = State.WN, (True, True), "MH"
        prime_direct(core, spy, candidate_address, prime)
        scheduler.stage_gap()
        scheduler.victim_turn(trigger)
        scheduler.stage_gap()
        pattern = probe_pair(core, spy, candidate_address, probe).pattern
        if pattern != baseline:
            hits += 1
    return hits / trials


def recover_load_base(
    core: PhysicalCore,
    spy: Process,
    branch_link_offset: int,
    trigger: Callable[[], None],
    candidate_bases: Sequence[int],
    *,
    trials: int = 8,
    scheduler: Optional[AttackScheduler] = None,
) -> List[CandidateScore]:
    """Score every candidate load base by collision evidence.

    ``branch_link_offset`` is the spied branch's offset from the binary's
    link base (known from the victim binary); ``candidate_bases`` are the
    load bases ASLR could have chosen.  Bases congruent mod the PHT size
    are indistinguishable to this attack, so callers typically pass one
    representative per congruence class (see
    ``examples/aslr_bypass.py``).  Returns scores sorted descending; the
    true class should dominate.
    """
    pht_size = core.predictor.bimodal.pht.n_entries
    seen_classes = set()
    scores: List[CandidateScore] = []
    for base in candidate_bases:
        candidate = int(base) + int(branch_link_offset)
        congruence = candidate % pht_size
        if congruence in seen_classes:
            continue
        seen_classes.add(congruence)
        score = probe_collision(
            core,
            spy,
            candidate,
            trigger,
            trials=trials,
            scheduler=scheduler,
        )
        scores.append(CandidateScore(candidate_address=candidate, score=score))
    return sorted(scores, key=lambda s: s.score, reverse=True)
