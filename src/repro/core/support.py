"""Shared engine-support predicates.

Every vectorised engine in the repo (the §6.3 batch probe scan, the
calibration batch assessor, the manycore struct-of-arrays campaign
backend) is an *exactness-gated* fast path: it runs only when it can be
bit-identical to the scalar reference, and falls back otherwise.  The
gating conditions used to live as near-duplicated predicates inside each
engine (ROADMAP item 3's "scattered special-case predicates"); this
module is now the single home for them, so a new disqualifier — like the
zoo's non-modulo ``index_hash`` — is added exactly once and every engine
picks it up.

Three independent conditions, composed per engine:

* **observation hooks** — a mitigation overriding ``perturb_counter``
  (noisy counters) or ``update_outcome`` (stochastic FSM) makes the
  probe observation stochastic; no batch engine can replay it.
* **index hash** — the batch probe/assess inner loops compute PHT
  indices with the Intel ``mixed % n`` formula inline; a preset using a
  different :mod:`repro.bpu.hashes` entry (the Arm-flavoured ``"fold"``)
  must take the scalar path, whose indices go through the predictor
  objects.  (The block *compiler* is hash-aware, so scalar trials on
  fold presets keep their vectorised block application.)
* **timing / plan** — the batch assessor samples the timing model
  analytically; a custom :class:`~repro.cpu.timing.TimingModel` subclass
  with its own draw pattern needs a pre-drawn trial plan to stay
  RNG-exact.

The reason strings (``"mitigation"``, ``"index_hash"``,
``"custom_timing"``, ``"unshared_structure"``) feed
``repro.obs.record_scalar_fallback`` so operators can see *why* an
engine degraded, not just that it did.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.cpu.timing import TimingModel
from repro.mitigations.base import Mitigation

__all__ = [
    "OBSERVATION_HOOKS",
    "observation_hooks_clean",
    "index_hash_batchable",
    "batch_scan_supported",
    "batch_scan_fallback_reason",
    "batch_assess_supported",
    "batch_assess_fallback_reason",
    "scalar_engine_forced",
    "manycore_fallback_reason",
]

#: Hooks whose override makes the probe observation stochastic; any
#: mitigation overriding one of these forces the scalar reference path.
OBSERVATION_HOOKS = ("perturb_counter", "update_outcome")


def observation_hooks_clean(core: PhysicalCore) -> bool:
    """No installed mitigation overrides an observation hook."""
    for mitigation in core.mitigations:
        for hook in OBSERVATION_HOOKS:
            if getattr(type(mitigation), hook) is not getattr(Mitigation, hook):
                return False
    return True


def index_hash_batchable(core: PhysicalCore) -> bool:
    """Both component predictors use the inline-replayable ``"mod"`` hash."""
    predictor = core.predictor
    return (
        predictor.bimodal.index_hash == "mod"
        and predictor.gshare.index_hash == "mod"
    )


def batch_scan_supported(core: PhysicalCore) -> bool:
    """Whether the batch probe engine is exact for this core.

    True iff no installed mitigation overrides a hook that perturbs the
    probe *observation* (counter noise) or the training outcome
    (stochastic FSM), and the preset's index hash is the modulo the
    engine replays inline.  Index/suppression mitigation hooks are
    handled exactly by the engine's pre-pass and do not disqualify.
    """
    return observation_hooks_clean(core) and index_hash_batchable(core)


def batch_scan_fallback_reason(core: PhysicalCore) -> Optional[str]:
    """Why the batch probe engine would fall back (``None`` = it won't)."""
    if not observation_hooks_clean(core):
        return "mitigation"
    if not index_hash_batchable(core):
        return "index_hash"
    return None


def batch_assess_supported(core: PhysicalCore, plan=None) -> bool:
    """Whether the vectorised calibration assessor is exact for this core.

    On top of :func:`batch_scan_supported`, the assessor samples probe
    timing itself, so without a pre-drawn trial plan it also requires the
    base :class:`~repro.cpu.timing.TimingModel` (an exact subclass could
    draw differently and shift the RNG stream).
    """
    return batch_scan_supported(core) and (
        plan is not None or type(core.timing) is TimingModel
    )


def batch_assess_fallback_reason(core: PhysicalCore, plan=None) -> Optional[str]:
    """Why the vectorised assessor would fall back (``None`` = it won't)."""
    reason = batch_scan_fallback_reason(core)
    if reason is not None:
        return reason
    if plan is None and type(core.timing) is not TimingModel:
        return "custom_timing"
    return None


def scalar_engine_forced(core: PhysicalCore, *, pooled: bool) -> bool:
    """Whether ``find_block``'s fast path must run the scalar assessor.

    The fast path needs the batch assessor; a pooled run pre-draws trial
    plans (so a custom timing model is fine), a non-pooled run does not.
    """
    return not (
        batch_scan_supported(core)
        and (type(core.timing) is TimingModel or pooled)
    )


def manycore_fallback_reason(
    core: PhysicalCore,
    gaps: Optional[np.ndarray] = None,
    *,
    instance_shared: bool = True,
) -> Optional[str]:
    """Why the manycore closed-form engine is inexact for ``core``.

    Returns ``None`` when supported, else the fallback reason:

    * ``"mitigation"`` — any installed mitigation (index hooks would
      have to run per branch per instance; observation hooks fail
      :func:`observation_hooks_clean` as in the per-trial engines);
    * ``"index_hash"`` — a non-modulo preset: the engine's probe and
      noise index arithmetic is the Intel modulo, so zoo presets like
      ``oryon_like`` delegate to the (hash-aware) trial closure;
    * ``"unshared_structure"`` — the two PHTs do not share one FSM
      (``instance_shared=True`` demands one shared *instance*, the
      shared-structure premise; ``False`` relaxes to spec equality, the
      grouped engine's per-payload requirement) or ``gaps`` contains an
      empty noise gap (the closed-form GHR then depends on the
      per-block ``ghr_end``).
    """
    if len(core.mitigations) > 0 or not observation_hooks_clean(core):
        return "mitigation"
    if not index_hash_batchable(core):
        return "index_hash"
    bimodal_fsm = core.predictor.bimodal.pht.fsm
    gshare_fsm = core.predictor.gshare.pht.fsm
    if instance_shared:
        if bimodal_fsm is not gshare_fsm:
            return "unshared_structure"
    elif bimodal_fsm != gshare_fsm:
        return "unshared_structure"
    if gaps is not None and bool((np.asarray(gaps) == 0).any()):
        return "unshared_structure"
    return None
