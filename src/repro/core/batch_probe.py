"""Vectorised batch-probe engine for the §6.3 PHT scan.

The scalar scan decodes one address at a time: probe the colliding branch
twice taken-taken, restore, probe twice not-taken-not-taken, restore.
With exact performance counters each probe's H/M pattern is a *pure
function of the microarchitectural state the probe starts from* — the
counter bracket reports exactly the architectural hit/miss of each
execution, and nothing random enters the prediction path (timing noise
perturbs latencies, never directions).  Every address probes the same
restored "prepared" state, so all four per-address probe executions can
be computed for the whole address range at once with NumPy table lookups
against the live predictor arrays, skipping the simulate/restore cycle
entirely.

What a probe execution does, per the scalar pipeline
(:meth:`repro.cpu.core.PhysicalCore.execute_branch` /
:meth:`repro.bpu.hybrid.HybridPredictor.predict`):

1. mitigation hooks decide static suppression, index key and partition;
2. the prediction reads one bimodal entry, one gshare entry (under the
   current GHR), the branch-identification table and — for known
   branches — the selector;
3. training steps both PHT entries, trains or resets the selector,
   shifts the outcome into the GHR and inserts the branch into the
   identification table.

The engine replays exactly this, two branches deep, as array expressions:
branch 2 of a probe reads branch 1's writes through explicit
``same-index`` forwarding instead of mutating any table.  Bit-exactness
against the scalar loop is pinned by ``tests/test_batch_probe.py`` across
every preset and the fast-path-safe mitigations.

Exactness boundary
------------------
Two mitigation hooks can make the observation itself stochastic:
``perturb_counter`` (noisy performance counters, §10.2) breaks the
"pattern == architectural hit/miss" identity, and ``update_outcome``
(stochastic FSM, §10.2) draws from the core RNG inside training.
:func:`batch_scan_supported` detects either override and the scan falls
back to the scalar reference.  Every other shipped mitigation is safe:
static prediction, PHT index randomisation and BPU partitioning act on
the *index/suppression* hooks — which the engine replays through a
pre-pass honouring the scalar call order and multiplicity, so stateful
keys (e.g. the rekey-period counter of
:class:`~repro.mitigations.pht_randomization.PhtIndexRandomization`)
evolve identically — and the noisy timer only perturbs latencies.

The one deliberate divergence: the batch path never samples the timing
model, so the core RNG ends at a different position than after a scalar
scan.  Checkpoints intentionally exclude the RNG (noise stays fresh
across restores), patterns never depend on it, and the scalar scan's own
restores already leave the RNG wherever the probes happened to move it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.bpu.hashes import fold_history
from repro.core.patterns import DecodedState, state_signatures
from repro.core.support import batch_scan_supported
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process

__all__ = [
    "batch_scan_supported",
    "batch_probe_signatures",
    "batch_decode_states",
]

# The support predicate (one shared home for every engine's gating
# conditions, repro.core.support) is re-exported here because this
# engine is its original owner and existing callers import it from
# here.  Since the zoo landed it also covers the index-hash condition:
# the inline `mixed % n` replay below is only exact for "mod" presets.


def _collect_hooks(
    core: PhysicalCore, spy: Process, addresses: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Replay the scalar probe loop's mitigation hook calls.

    The scalar scan executes, per address, four probe branches — TT
    first and second, then NN first and second — and each execution
    calls ``suppresses_prediction`` once and, unless suppressed,
    ``pht_key`` and ``partition`` once.  Stateful mitigations (the
    rekey-period index randomisation) depend on exactly this call
    sequence, so the pre-pass makes the identical calls in the identical
    order and records the outcome per (slot, address).

    Returns ``(static, key, offset, size_bimodal, size_gshare)``, each of
    shape ``(4, n_addresses)``; a ``None`` partition is encoded as the
    whole table (offset 0, size ``n_entries``) so the index formula is
    uniform.
    """
    n = len(addresses)
    n_bimodal = core.predictor.bimodal.pht.n_entries
    n_gshare = core.predictor.gshare.pht.n_entries
    static = np.zeros((4, n), dtype=bool)
    key = np.zeros((4, n), dtype=np.int64)
    offset = np.zeros((4, n), dtype=np.int64)
    size_bimodal = np.full((4, n), n_bimodal, dtype=np.int64)
    size_gshare = np.full((4, n), n_gshare, dtype=np.int64)
    stack = core.mitigations
    if len(stack) == 0:
        return static, key, offset, size_bimodal, size_gshare
    for i in range(n):
        address = int(addresses[i])
        for slot in range(4):
            if stack.suppresses_prediction(spy, address):
                static[slot, i] = True
                continue
            key[slot, i] = stack.pht_key(spy)
            partition = stack.partition(spy)
            if partition is not None:
                offset[slot, i] = partition.offset
                size_bimodal[slot, i] = partition.size
                size_gshare[slot, i] = partition.size
    return static, key, offset, size_bimodal, size_gshare


def _probe_variant(
    core: PhysicalCore,
    addresses: np.ndarray,
    outcome: bool,
    hooks: Tuple[np.ndarray, ...],
    slot1: int,
    slot2: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Hit flags of one two-branch probe variant, for every address.

    Reads the live predictor arrays (the prepared scan state) without
    mutating them; branch 2 observes branch 1's would-be writes through
    same-index forwarding, exactly mirroring one scalar ``probe_pair``
    against a restored checkpoint.
    """
    predictor = core.predictor
    bimodal = predictor.bimodal.pht
    gshare = predictor.gshare.pht
    selector = predictor.selector
    bit = predictor.bit
    o = int(bool(outcome))

    static_all, key_all, offset_all, size_b_all, size_g_all = hooks
    levels_b = bimodal.levels
    levels_g = gshare.levels
    step_b = bimodal.fsm.step_table
    step_g = gshare.fsm.step_table
    h = predictor.ghr.value
    ghr_len = predictor.ghr.length
    ghr_mask = (1 << ghr_len) - 1
    n_g = gshare.n_entries
    hf = fold_history(h, ghr_len, n_g)

    # -- branch 1 -----------------------------------------------------------
    st1 = static_all[slot1]
    key1 = key_all[slot1]
    bi1 = offset_all[slot1] + ((addresses ^ key1) % size_b_all[slot1])
    gi1 = offset_all[slot1] + ((addresses ^ hf ^ key1) % size_g_all[slot1])
    lvl_b1 = levels_b[bi1]
    lvl_g1 = levels_g[gi1]
    bt1 = bimodal.fsm.predicts_array(lvl_b1)
    gt1 = gshare.fsm.predicts_array(lvl_g1)

    sets = addresses % bit.n_sets
    tags = (addresses // bit.n_sets) & bit._tag_mask
    cold1 = ~(bit.valid[sets] & (bit.tags[sets] == tags))
    c0 = selector.counters[addresses % selector.n_entries].astype(np.int64)
    use_gshare1 = ~cold1 & (c0 >= selector.max_counter)

    pred1 = np.where(st1, False, np.where(use_gshare1, gt1, bt1))
    hit1 = pred1 == bool(o)
    updated1 = ~st1

    # Functional post-branch-1 state (only where branch 1 trained).
    stepped_b1 = step_b[o, lvl_b1]
    stepped_g1 = step_g[o, lvl_g1]
    agree = (bt1 == bool(o)) == (gt1 == bool(o))
    mcfarling = np.clip(
        c0 + np.where(agree, 0, np.where(gt1 == bool(o), 1, -1)),
        0,
        selector.max_counter,
    )
    c1 = np.where(updated1, np.where(cold1, selector._initial, mcfarling), c0)
    h2 = np.where(updated1, ((h << 1) | o) & ghr_mask, h)
    hf2 = fold_history(h2, ghr_len, n_g)
    cold2 = np.where(updated1, False, cold1)

    # -- branch 2 -----------------------------------------------------------
    st2 = static_all[slot2]
    key2 = key_all[slot2]
    bi2 = offset_all[slot2] + ((addresses ^ key2) % size_b_all[slot2])
    gi2 = offset_all[slot2] + ((addresses ^ hf2 ^ key2) % size_g_all[slot2])
    lvl_b2 = np.where(updated1 & (bi2 == bi1), stepped_b1, levels_b[bi2])
    lvl_g2 = np.where(updated1 & (gi2 == gi1), stepped_g1, levels_g[gi2])
    bt2 = bimodal.fsm.predicts_array(lvl_b2)
    gt2 = gshare.fsm.predicts_array(lvl_g2)
    use_gshare2 = ~cold2 & (c1 >= selector.max_counter)

    pred2 = np.where(st2, False, np.where(use_gshare2, gt2, bt2))
    hit2 = pred2 == bool(o)
    return hit1, hit2


def batch_probe_signatures(
    core: PhysicalCore, spy: Process, addresses: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """TT and NN probe hit flags for every address, against current state.

    Returns ``(tt1, tt2, nn1, nn2)`` boolean arrays: the per-execution
    hit flags the scalar ``probe_pair`` would report for the taken-taken
    and not-taken-not-taken variants, each run against the core's
    *current* (prepared) state.  The core is not mutated — callers
    restore their own checkpoint as the scalar scan does.

    Only valid when :func:`batch_scan_supported` holds; the caller is
    responsible for falling back otherwise.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    hooks = _collect_hooks(core, spy, addresses)
    tt1, tt2 = _probe_variant(core, addresses, True, hooks, 0, 1)
    nn1, nn2 = _probe_variant(core, addresses, False, hooks, 2, 3)
    return tt1, tt2, nn1, nn2


def _signature_lut(fsm) -> List[DecodedState]:
    """16-entry (tt1, tt2, nn1, nn2)-bit-coded Table 1 dictionary."""
    lut = [DecodedState.UNKNOWN] * 16
    for (tt, nn), state in state_signatures(fsm).items():
        code = (
            (tt[0] == "H") * 8
            | (tt[1] == "H") * 4
            | (nn[0] == "H") * 2
            | (nn[1] == "H")
        )
        lut[code] = state
    return lut


def batch_decode_states(
    fsm,
    tt1: np.ndarray,
    tt2: np.ndarray,
    nn1: np.ndarray,
    nn2: np.ndarray,
) -> List[DecodedState]:
    """Decode per-address probe signatures via the Table 1 dictionary.

    Equivalent to :func:`repro.core.patterns.decode_state` on each
    address's (TT, NN) pattern pair; unknown signatures decode to
    :attr:`DecodedState.UNKNOWN` exactly as the scalar path does.
    """
    lut = _signature_lut(fsm)
    codes = (
        tt1.astype(np.int64) * 8 + tt2 * 4 + nn1 * 2 + nn2
    )
    return [lut[code] for code in codes.tolist()]
