"""Pre-attack calibration: choosing the randomisation block (paper §6.2).

The attacker cannot set a PHT entry directly — the randomisation block
rewrites the whole table.  But a block's effect on a given entry is
reproducible, so the attacker generates candidate blocks and keeps one
that (a) leaves the *target* entry in the desired state and (b) does so
*stably* under system noise.  The paper's stability experiment (10 000
candidate blocks x 1000 probes each, Figure 4) defines the methodology:

* for each candidate block, repeatedly execute the block and probe the
  target address, separately with ``TT`` and ``NN`` probe variants;
* a block is *stable* if the most frequent probe pattern occurs at least
  85% of the time for **both** variants;
* stable pattern pairs decode to a PHT state via the Table 1 dictionary;
  anything else is ``unknown`` (too noisy) — and an always-``HH``/``HH``
  signature is ``dirty`` (2-level predictor interference).

"Finding the appropriate randomization code is a one-time effort by the
attacker and can be performed during the pre-attack stage.  This is a
key element of BranchScope."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.patterns import DecodedState, decode_state
from repro.core.prime_probe import probe_pair
from repro.core.randomizer import (
    PAPER_BLOCK_BRANCHES,
    CompiledBlock,
    RandomizationBlock,
)
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.system.noise import NoiseModel, inject_noise

__all__ = [
    "BlockAssessment",
    "CalibrationError",
    "assess_block",
    "find_block",
    "stability_experiment",
]

#: Paper §6.2: "the most frequent prediction pattern in both variations
#: of the probing code occurs more than 85% of the time".
STABILITY_THRESHOLD = 0.85


class CalibrationError(RuntimeError):
    """No candidate block produced the requested stable state."""


@dataclass(frozen=True)
class BlockAssessment:
    """Stability statistics of one candidate block at one target address."""

    seed: int
    #: Most frequent TT-probe pattern and its relative frequency.
    tt_pattern: str
    tt_frequency: float
    #: Most frequent NN-probe pattern and its relative frequency.
    nn_pattern: str
    nn_frequency: float

    @property
    def stable(self) -> bool:
        """Paper's stability criterion: both dominant patterns >= 85%."""
        return (
            self.tt_frequency >= STABILITY_THRESHOLD
            and self.nn_frequency >= STABILITY_THRESHOLD
        )

    def decoded(self, fsm) -> DecodedState:
        """State implied by the dominant patterns (UNKNOWN if unstable)."""
        if not self.stable:
            return DecodedState.UNKNOWN
        return decode_state(fsm, self.tt_pattern, self.nn_pattern)


def _dominant(patterns: Sequence[str]) -> tuple:
    counts = Counter(patterns)
    pattern, count = counts.most_common(1)[0]
    return pattern, count / len(patterns)


def assess_block(
    core: PhysicalCore,
    spy: Process,
    compiled: CompiledBlock,
    target_address: int,
    *,
    repetitions: int = 100,
    noise: Optional[NoiseModel] = None,
    rng: Optional[np.random.Generator] = None,
) -> BlockAssessment:
    """Measure a block's probe-pattern stability at ``target_address``.

    Each repetition first *scrambles* the target entry to a random level
    (by executing the spy's own branch at the target address with random
    outcomes — during an attack the entry's pre-block state is whatever
    the victim and earlier probes left behind, so a usable block must pin
    the entry regardless), then applies the block, lets the configured
    system noise hit the BPU, and probes.  TT and NN variants are
    measured in separate repetitions (each must start from a freshly
    prepared state).  The surrounding core state is checkpointed and
    restored.
    """
    rng = rng if rng is not None else core.rng
    noise = noise if noise is not None else NoiseModel.isolated()
    fsm = core.predictor.bimodal.pht.fsm
    checkpoint = core.checkpoint()
    observations = {}
    for outcomes in ((True, True), (False, False)):
        patterns: List[str] = []
        for _ in range(repetitions):
            for taken in rng.integers(0, 2, size=fsm.n_levels):
                core.execute_branch(spy, target_address, bool(taken))
            compiled.apply(core, spy)
            inject_noise(core, noise.gap_branches(rng), rng)
            patterns.append(
                probe_pair(core, spy, target_address, outcomes).pattern
            )
        observations[outcomes] = _dominant(patterns)
    core.restore(checkpoint)
    tt_pattern, tt_freq = observations[(True, True)]
    nn_pattern, nn_freq = observations[(False, False)]
    return BlockAssessment(
        seed=compiled.block.seed,
        tt_pattern=tt_pattern,
        tt_frequency=tt_freq,
        nn_pattern=nn_pattern,
        nn_frequency=nn_freq,
    )


def find_block(
    core: PhysicalCore,
    spy: Process,
    target_address: int,
    desired_state: DecodedState,
    *,
    block_branches: int = PAPER_BLOCK_BRANCHES,
    repetitions: int = 60,
    max_candidates: int = 64,
    noise: Optional[NoiseModel] = None,
    seed_start: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> CompiledBlock:
    """Search candidate blocks until one stably yields ``desired_state``.

    "The attacker can randomly generate the blocks of code that randomize
    the PHT until the block is found that leaves the target PHT entry in
    the desired state" (§6.2).  Candidates whose transition-map row does
    not *pin* the target entry to the desired state are discarded with a
    cheap analytical check before the full stability assessment runs,
    and surviving candidates compile through the process-wide
    compiled-block cache (see :meth:`RandomizationBlock.compile`), so
    repeated searches over the same seed range cost one compile each.
    Raises :class:`CalibrationError` after ``max_candidates`` failures.
    """
    fsm = core.predictor.bimodal.pht.fsm
    for seed in range(seed_start, seed_start + max_candidates):
        block = RandomizationBlock.generate(seed, n_branches=block_branches)
        row = block.entry_fold(core, spy, target_address)
        if not (row == row[0]).all():
            continue
        if fsm.public_state(int(row[0])).name != desired_state.value:
            continue
        compiled = block.compile(core, spy)
        assessment = assess_block(
            core,
            spy,
            compiled,
            target_address,
            repetitions=repetitions,
            noise=noise,
            rng=rng,
        )
        if assessment.stable and assessment.decoded(fsm) is desired_state:
            return compiled
    raise CalibrationError(
        f"no stable block for {desired_state} at {target_address:#x} "
        f"in {max_candidates} candidates"
    )


def stability_experiment(
    core_factory: Callable[[], PhysicalCore],
    target_address: int,
    *,
    n_blocks: int = 400,
    block_branches: int = 20_000,
    repetitions: int = 100,
    noise: Optional[NoiseModel] = None,
    seed_start: int = 0,
) -> List[BlockAssessment]:
    """The Figure 4 experiment: stability scatter over many random blocks.

    Scaled down from the paper's 10 000 blocks x 1000 probes by default;
    the bench passes its own sizes.  A fresh core per candidate keeps
    candidates independent, as the paper's iterations are.
    """
    assessments = []
    spy = Process("stability-spy")
    for seed in range(seed_start, seed_start + n_blocks):
        core = core_factory()
        block = RandomizationBlock.generate(seed, n_branches=block_branches)
        compiled = block.compile(core, spy)
        assessments.append(
            assess_block(
                core,
                spy,
                compiled,
                target_address,
                repetitions=repetitions,
                noise=noise,
            )
        )
    return assessments
