"""Pre-attack calibration: choosing the randomisation block (paper §6.2).

The attacker cannot set a PHT entry directly — the randomisation block
rewrites the whole table.  But a block's effect on a given entry is
reproducible, so the attacker generates candidate blocks and keeps one
that (a) leaves the *target* entry in the desired state and (b) does so
*stably* under system noise.  The paper's stability experiment (10 000
candidate blocks x 1000 probes each, Figure 4) defines the methodology:

* for each candidate block, repeatedly execute the block and probe the
  target address, separately with ``TT`` and ``NN`` probe variants;
* a block is *stable* if the most frequent probe pattern occurs at least
  85% of the time for **both** variants;
* stable pattern pairs decode to a PHT state via the Table 1 dictionary;
  anything else is ``unknown`` (too noisy) — and an always-``HH``/``HH``
  signature is ``dirty`` (2-level predictor interference).

"Finding the appropriate randomization code is a one-time effort by the
attacker and can be performed during the pre-attack stage.  This is a
key element of BranchScope."

Two execution engines implement the assessment:

* :func:`assess_block` — the scalar reference: every scramble branch,
  block application, noise gap and probe runs through
  :meth:`~repro.cpu.core.PhysicalCore.execute_branch` /
  :meth:`~repro.core.randomizer.CompiledBlock.apply`.
* :func:`assess_block_batch` — the vectorised fast path
  (:mod:`repro.core.calibration_batch`): a *replay* engine that tracks
  only the handful of predictor entries the probes can observe and
  evolves them with numpy table operations, while consuming the
  identical generator streams (observation draws *and* the core RNG's
  timing draws) and making the identical mitigation hook calls.  It is
  therefore a bit-exact drop-in — same :class:`BlockAssessment`, same
  post-call core/RNG/mitigation state — pinned by the differential
  tests in ``tests/test_calibration_batch.py``.  Whenever a mitigation
  perturbs the observation itself (stochastic FSM, noisy counters) or a
  custom timing model is installed, it transparently runs the scalar
  engine instead.

The candidate searches (:func:`find_block`, :func:`stability_experiment`)
optionally fan independent candidates across a
:class:`repro.parallel.TrialPool` (``workers=`` kwarg) with per-candidate
generators spawned via ``np.random.SeedSequence`` from one entropy draw,
so search outcomes are bit-identical at any worker count.  Both accept
``checkpoint=`` (a path or :class:`repro.resilience.CheckpointStore`):
progress then persists through crash-safe atomic checkpoints and a
killed campaign resumes bit-identically (see
:mod:`repro.resilience.checkpoint` and MODELING.md §10).
"""

from __future__ import annotations

import copy
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.patterns import DecodedState, decode_state
from repro.core.support import (
    batch_assess_fallback_reason,
    batch_assess_supported,
    scalar_engine_forced,
)
from repro.core.prime_probe import probe_pair
from repro.core.randomizer import (
    PAPER_BLOCK_BRANCHES,
    CompiledBlock,
    RandomizationBlock,
)
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.obs import trace as obs
from repro.parallel import TrialPool, resolve_workers, spawn_seeds
from repro.resilience.checkpoint import (
    ResumableCampaign,
    as_store,
    verify_fingerprint,
)
from repro.system.noise import (
    NoiseDraw,
    NoiseModel,
    apply_noise_draw,
    draw_noise,
    inject_noise,
)

__all__ = [
    "BlockAssessment",
    "CalibrationError",
    "SearchStats",
    "TrialPlan",
    "assess_block",
    "assess_block_batch",
    "draw_trial_plan",
    "find_block",
    "stability_experiment",
]

#: Paper §6.2: "the most frequent prediction pattern in both variations
#: of the probing code occurs more than 85% of the time".
STABILITY_THRESHOLD = 0.85


class CalibrationError(RuntimeError):
    """No candidate block produced the requested stable state."""


@dataclass(frozen=True)
class SearchStats:
    """How a :func:`find_block` search spent its effort.

    Returned alongside the block via ``find_block(..., with_stats=True)``.
    ``assessed`` is ``None`` on the pooled path (a cancelled-early fan-out
    does not report how many trials ran); ``scalar_fallbacks`` counts
    fallbacks observed *in this process* — trials running in forked
    workers keep their own counters, so ``scalar_engine_forced`` is the
    portable signal that the fast engine was disabled for the search.
    """

    #: Candidate seeds examined (serial) or submitted to the pool.
    candidates: int
    #: Full stability assessments actually run (``None`` when pooled).
    assessed: Optional[int]
    #: Scalar-engine fallbacks recorded in this process during the search.
    scalar_fallbacks: int
    #: True when the fallback predicate disables the batch engine for
    #: every assessment of this search (mitigation/timing on the core).
    scalar_engine_forced: bool
    #: Worker count the search resolved to.
    workers: int


def _trace_assessment(
    engine: str, target_address: int, assessment: "BlockAssessment"
) -> None:
    """Emit the per-assessment "calibration" event (no-op untraced)."""
    tracer = obs.TRACER
    if tracer is not None:
        tracer.emit(
            "calibration",
            "block_assessed",
            engine=engine,
            address=target_address,
            seed=assessment.seed,
            tt=f"{assessment.tt_pattern}:{assessment.tt_frequency:.3f}",
            nn=f"{assessment.nn_pattern}:{assessment.nn_frequency:.3f}",
            stable=assessment.stable,
        )


@dataclass(frozen=True)
class BlockAssessment:
    """Stability statistics of one candidate block at one target address."""

    seed: int
    #: Most frequent TT-probe pattern and its relative frequency.
    tt_pattern: str
    tt_frequency: float
    #: Most frequent NN-probe pattern and its relative frequency.
    nn_pattern: str
    nn_frequency: float

    @property
    def stable(self) -> bool:
        """Paper's stability criterion: both dominant patterns >= 85%."""
        return (
            self.tt_frequency >= STABILITY_THRESHOLD
            and self.nn_frequency >= STABILITY_THRESHOLD
        )

    def decoded(self, fsm) -> DecodedState:
        """State implied by the dominant patterns (UNKNOWN if unstable)."""
        if not self.stable:
            return DecodedState.UNKNOWN
        return decode_state(fsm, self.tt_pattern, self.nn_pattern)


def _dominant_counts(counts: Dict[str, int], total: int) -> Tuple[str, float]:
    """Dominant pattern from a ``{pattern: count}`` table.

    Ties break on ``(count, pattern)`` — lexicographically largest
    pattern wins among equals — so the result is a pure function of the
    counts, not of observation order.  (``Counter.most_common`` breaks
    ties by insertion order, which differs between the scalar engine's
    chronological counting and a vectorised engine's histogram.)
    """
    pattern, count = max(counts.items(), key=lambda item: (item[1], item[0]))
    return pattern, count / total


def _dominant(patterns: Sequence[str]) -> Tuple[str, float]:
    return _dominant_counts(Counter(patterns), len(patterns))


@dataclass(frozen=True)
class TrialPlan:
    """All randomness one block assessment consumes, pre-drawn in bulk.

    The scalar engine interleaves observation draws with the core RNG's
    timing draws, so a per-repetition draw loop is the only way to stay
    on its historical stream — and per-call :class:`~numpy.random.Generator`
    overhead then dominates the vectorised engine.  A trial plan breaks
    that floor: :func:`draw_trial_plan` draws every scramble outcome and
    the whole noise stream of all ``2 x repetitions`` repetitions in a
    handful of vectorised generator calls up front.  Both engines accept
    a plan (``plan=`` on :func:`assess_block` / :func:`assess_block_batch`)
    and produce identical assessments from the same plan, which is what
    the pooled candidate searches hand their per-trial generators.
    """

    #: ``(2 * repetitions, fsm.n_levels)`` random scramble outcomes.
    scrambles: np.ndarray
    #: ``(2 * repetitions + 1,)`` prefix offsets into the noise arrays.
    offsets: np.ndarray
    #: One bulk :class:`~repro.system.noise.NoiseDraw` holding every
    #: gap's noise stream back to back.
    bulk: NoiseDraw

    @property
    def repetitions(self) -> int:
        return len(self.scrambles) // 2

    def gap(self, r: int) -> int:
        return int(self.offsets[r + 1] - self.offsets[r])

    def noise_draw(self, r: int) -> NoiseDraw:
        """Repetition ``r``'s noise gap as zero-copy views of the bulk."""
        lo, hi = int(self.offsets[r]), int(self.offsets[r + 1])
        return NoiseDraw(
            hi - lo,
            self.bulk.addresses[lo:hi],
            self.bulk.outcomes[lo:hi],
            self.bulk.gshare_indices[lo:hi],
            self.bulk.nudges[lo:hi],
        )


def draw_trial_plan(
    rng: np.random.Generator,
    core: PhysicalCore,
    *,
    repetitions: int = 100,
    noise: Optional[NoiseModel] = None,
) -> TrialPlan:
    """Pre-draw one assessment's randomness from ``rng`` (seven calls)."""
    noise = noise if noise is not None else NoiseModel.isolated()
    fsm = core.predictor.bimodal.pht.fsm
    n_reps = 2 * repetitions
    scrambles = rng.integers(0, 2, size=(n_reps, fsm.n_levels))
    gaps = noise.gap_array(rng, n_reps)
    offsets = np.zeros(n_reps + 1, dtype=np.int64)
    np.cumsum(gaps, out=offsets[1:])
    bulk = draw_noise(
        rng, int(offsets[-1]), core.predictor.gshare.pht.n_entries
    )
    return TrialPlan(scrambles=scrambles, offsets=offsets, bulk=bulk)


def assess_block(
    core: PhysicalCore,
    spy: Process,
    compiled: CompiledBlock,
    target_address: int,
    *,
    repetitions: int = 100,
    noise: Optional[NoiseModel] = None,
    rng: Optional[np.random.Generator] = None,
    plan: Optional[TrialPlan] = None,
) -> BlockAssessment:
    """Measure a block's probe-pattern stability at ``target_address``.

    Each repetition first *scrambles* the target entry to a random level
    (by executing the spy's own branch at the target address with random
    outcomes — during an attack the entry's pre-block state is whatever
    the victim and earlier probes left behind, so a usable block must pin
    the entry regardless), then applies the block, lets the configured
    system noise hit the BPU, and probes.  TT and NN variants are
    measured in separate repetitions (each must start from a freshly
    prepared state).  The surrounding core state is checkpointed and
    restored.

    With ``plan`` given (a pre-drawn :class:`TrialPlan`), the scramble
    and noise randomness comes from the plan instead of ``rng`` and
    ``repetitions``/``noise`` are taken from it — the draw-call pattern
    on the live generators changes, but the simulated machine semantics
    are exactly the same.
    """
    if plan is not None:
        assessment = _assess_block_plan(
            core, spy, compiled, target_address, plan
        )
        _trace_assessment("scalar", target_address, assessment)
        return assessment
    rng = rng if rng is not None else core.rng
    noise = noise if noise is not None else NoiseModel.isolated()
    fsm = core.predictor.bimodal.pht.fsm
    checkpoint = core.checkpoint()
    observations = {}
    for outcomes in ((True, True), (False, False)):
        patterns: List[str] = []
        for _ in range(repetitions):
            for taken in rng.integers(0, 2, size=fsm.n_levels):
                core.execute_branch(spy, target_address, bool(taken))
            compiled.apply(core, spy)
            inject_noise(core, noise.gap_branches(rng), rng)
            patterns.append(
                probe_pair(core, spy, target_address, outcomes).pattern
            )
        observations[outcomes] = _dominant(patterns)
    core.restore(checkpoint)
    tt_pattern, tt_freq = observations[(True, True)]
    nn_pattern, nn_freq = observations[(False, False)]
    assessment = BlockAssessment(
        seed=compiled.block.seed,
        tt_pattern=tt_pattern,
        tt_frequency=tt_freq,
        nn_pattern=nn_pattern,
        nn_frequency=nn_freq,
    )
    _trace_assessment("scalar", target_address, assessment)
    return assessment


def _assess_block_plan(
    core: PhysicalCore,
    spy: Process,
    compiled: CompiledBlock,
    target_address: int,
    plan: TrialPlan,
) -> BlockAssessment:
    """Scalar assessment consuming a pre-drawn :class:`TrialPlan`."""
    checkpoint = core.checkpoint()
    observations = {}
    r = 0
    for outcomes in ((True, True), (False, False)):
        patterns: List[str] = []
        for _ in range(plan.repetitions):
            for taken in plan.scrambles[r]:
                core.execute_branch(spy, target_address, bool(taken))
            compiled.apply(core, spy)
            apply_noise_draw(core, plan.noise_draw(r))
            patterns.append(
                probe_pair(core, spy, target_address, outcomes).pattern
            )
            r += 1
        observations[outcomes] = _dominant(patterns)
    core.restore(checkpoint)
    tt_pattern, tt_freq = observations[(True, True)]
    nn_pattern, nn_freq = observations[(False, False)]
    return BlockAssessment(
        seed=compiled.block.seed,
        tt_pattern=tt_pattern,
        tt_frequency=tt_freq,
        nn_pattern=nn_pattern,
        nn_frequency=nn_freq,
    )


def assess_block_batch(
    core: PhysicalCore,
    spy: Process,
    compiled: CompiledBlock,
    target_address: int,
    *,
    repetitions: int = 100,
    noise: Optional[NoiseModel] = None,
    rng: Optional[np.random.Generator] = None,
    plan: Optional[TrialPlan] = None,
) -> BlockAssessment:
    """Vectorised :func:`assess_block` — bit-identical result and state.

    All repetitions of both probe variants are computed by the replay
    engine in :mod:`repro.core.calibration_batch`, which consumes the
    same generator streams and makes the same mitigation hook calls as
    the scalar reference — so the returned assessment, the post-call
    core state *and* the RNG stream positions are all identical, and
    callers may mix the two engines freely.  When a mitigation perturbs
    the observation itself (a stochastic FSM, a noisy counter — the
    :func:`~repro.core.support.batch_scan_supported` predicate, same
    contract as the §6.3 batch scan), the preset uses a non-modulo
    index hash, or the core runs a custom
    :class:`~repro.cpu.timing.TimingModel` subclass (whose draw pattern
    the replay could not mirror), this transparently runs the scalar
    engine instead.

    With a pre-drawn ``plan`` there is no stream to replay — the result
    is pinned to :func:`assess_block` with the same plan, the engine
    skips the per-repetition draw loop *and* the timing-draw replay
    entirely (this is the >=10x trial fast path), and a custom timing
    model no longer forces the scalar fallback.
    """
    if not batch_assess_supported(core, plan):
        obs.record_scalar_fallback(
            "calibration_batch",
            batch_assess_fallback_reason(core, plan) or "custom_timing",
        )
        return assess_block(
            core,
            spy,
            compiled,
            target_address,
            repetitions=repetitions,
            noise=noise,
            rng=rng,
            plan=plan,
        )
    from repro.core.calibration_batch import batch_assess

    assessment = batch_assess(
        core,
        spy,
        compiled,
        target_address,
        repetitions=repetitions,
        noise=noise,
        rng=rng,
        plan=plan,
    )
    _trace_assessment("batch", target_address, assessment)
    return assessment


def find_block(
    core: PhysicalCore,
    spy: Process,
    target_address: int,
    desired_state: DecodedState,
    *,
    block_branches: int = PAPER_BLOCK_BRANCHES,
    repetitions: int = 60,
    max_candidates: int = 64,
    noise: Optional[NoiseModel] = None,
    seed_start: int = 0,
    rng: Optional[np.random.Generator] = None,
    workers: Optional[int] = None,
    fast: bool = True,
    with_stats: bool = False,
    checkpoint=None,
    resume: bool = True,
    backend: str = "process",
):
    """Search candidate blocks until one stably yields ``desired_state``.

    "The attacker can randomly generate the blocks of code that randomize
    the PHT until the block is found that leaves the target PHT entry in
    the desired state" (§6.2).  Candidates whose transition-map row does
    not *pin* the target entry to the desired state are discarded with a
    cheap analytical check before the full stability assessment runs,
    and surviving candidates compile through the process-wide
    compiled-block cache (see :meth:`RandomizationBlock.compile`), so
    repeated searches over the same seed range cost one compile each.

    By default (``workers=None`` and no ``REPRO_TRIAL_WORKERS``) the
    search walks candidates serially with assessments chained on ``rng``
    (default the core RNG) — the historical behaviour, bit-for-bit.
    ``fast=False`` forces the scalar assessment engine; the default
    batch engine is a bit-exact drop-in either way.

    With ``workers`` given (or the env var set), candidates become
    independent trials fanned across a
    :class:`~repro.parallel.TrialPool`: each assesses with its own
    generator spawned from a single entropy draw on ``rng``, and the
    returned block is the first stable candidate *in seed order* at any
    worker count (which may differ from the serial walk's pick — the
    pooled trials draw different observation streams).  Under
    mitigations each pooled trial runs against its own deep copy of the
    core, so candidate assessment never advances mitigation state
    (rekey clocks, partition bookkeeping) of the caller's core.

    With ``with_stats=True`` the return value is a
    ``(CompiledBlock, SearchStats)`` pair surfacing how many candidates
    and assessments the search consumed and whether (and how often, in
    this process) the batch engine fell back to the scalar path.

    With ``checkpoint`` given (a path or
    :class:`~repro.resilience.CheckpointStore`), the search becomes
    crash-safe and resumable: the entropy draw and the index reached are
    persisted after every wave, so a killed search re-run with the same
    arguments (``resume=True``) skips already-cleared candidates and
    returns the identical block.  Checkpointing forces the pooled,
    trial-plan path even at one worker — candidate outcomes must be pure
    functions of the candidate index to survive a resume, which the
    serial rng-chained walk is not.

    ``backend="manycore"`` forces the pooled path and pre-screens
    candidates through :class:`~repro.core.manycore.ManycoreFindPool` —
    the pin check runs once, cheaply, before a trial is dispatched, and
    rejected candidates consume no shared state, so the winner is
    bit-identical to the pooled search at the same worker count.

    Raises :class:`CalibrationError` after ``max_candidates`` failures.
    """
    if backend not in ("process", "manycore"):
        raise ValueError(f"unknown backend {backend!r}")
    fsm = core.predictor.bimodal.pht.fsm
    assess = assess_block_batch if fast else assess_block
    desired_name = desired_state.value
    n_workers = resolve_workers(workers)
    pooled = (
        backend == "manycore"
        or checkpoint is not None
        or not (workers is None and n_workers == 1)
    )
    # Every pooled assessment carries a plan, so only the mitigation and
    # index-hash parts of the fallback predicate can disable the batch
    # engine there; the serial path (no plan) also falls back on a
    # custom timing model.
    scalar_forced = fast and scalar_engine_forced(core, pooled=pooled)
    fallbacks_before = obs.scalar_fallback_counts().get("calibration_batch", 0)
    tracer = obs.TRACER
    if tracer is not None:
        tracer.emit(
            "calibration",
            "search_start",
            address=target_address,
            desired=desired_state.value,
            max_candidates=max_candidates,
            workers=n_workers,
            engine="batch" if fast and not scalar_forced else "scalar",
        )

    def _finish(compiled: CompiledBlock, candidates: int, assessed):
        if tracer is not None:
            tracer.emit(
                "calibration",
                "search_done",
                address=target_address,
                seed=compiled.block.seed,
                candidates=candidates,
            )
        if not with_stats:
            return compiled
        fallbacks = (
            obs.scalar_fallback_counts().get("calibration_batch", 0)
            - fallbacks_before
        )
        return compiled, SearchStats(
            candidates=candidates,
            assessed=assessed,
            scalar_fallbacks=fallbacks,
            scalar_engine_forced=scalar_forced,
            workers=n_workers,
        )

    if not pooled:
        assessed = 0
        for count, seed in enumerate(
            range(seed_start, seed_start + max_candidates), start=1
        ):
            block = RandomizationBlock.generate(
                seed, n_branches=block_branches
            )
            row = block.entry_fold(core, spy, target_address)
            if not (row == row[0]).all():
                continue
            if fsm.public_state(int(row[0])).name != desired_name:
                continue
            compiled = block.compile(core, spy)
            assessment = assess(
                core,
                spy,
                compiled,
                target_address,
                repetitions=repetitions,
                noise=noise,
                rng=rng,
            )
            assessed += 1
            if assessment.stable and assessment.decoded(fsm) is desired_state:
                return _finish(compiled, count, assessed)
        raise CalibrationError(
            f"no stable block for {desired_state} at {target_address:#x} "
            f"in {max_candidates} candidates"
        )

    fingerprint = {
        "experiment": "find_block",
        "target_address": target_address,
        "desired_state": desired_state.value,
        "block_branches": block_branches,
        "repetitions": repetitions,
        "max_candidates": max_candidates,
        "noise": repr(noise),
        "seed_start": seed_start,
    }
    store = as_store(checkpoint) if checkpoint is not None else None
    state = None
    if store is not None:
        if not resume:
            store.clear()
        else:
            state = verify_fingerprint(store, store.load(), fingerprint)
    # The entropy draw always happens (the caller's stream position must
    # not depend on whether a checkpoint existed); a resumed search then
    # overrides it with the checkpointed value so its per-candidate
    # streams — and therefore its outcome — match the interrupted run's.
    entropy_rng = rng if rng is not None else core.rng
    entropy = int(entropy_rng.integers(np.iinfo(np.int64).max))
    next_index = 0
    if state is not None:
        entropy = state["entropy"]
        next_index = state["next_index"]
        if state.get("complete"):
            winner_seed = state.get("winner_seed")
            if winner_seed is None:
                raise CalibrationError(
                    f"no stable block for {desired_state} at "
                    f"{target_address:#x} in {max_candidates} candidates "
                    f"(checkpointed exhaustion)"
                )
            block = RandomizationBlock.generate(
                winner_seed, n_branches=block_branches
            )
            return _finish(block.compile(core, spy), max_candidates, None)
    children = spawn_seeds(entropy, max_candidates)

    def trial(payload: Tuple[int, np.random.SeedSequence]):
        candidate_seed, child = payload
        # A private copy keeps the caller's core (RNG position,
        # mitigation clocks) untouched whether the trial runs in-process
        # or in a forked worker — one entropy draw is the whole search's
        # footprint on the caller.
        trial_core = copy.deepcopy(core)
        block = RandomizationBlock.generate(
            candidate_seed, n_branches=block_branches
        )
        row = block.entry_fold(trial_core, spy, target_address)
        if not (row == row[0]).all():
            return None
        if fsm.public_state(int(row[0])).name != desired_name:
            return None
        compiled = block.compile(trial_core, spy)
        plan = draw_trial_plan(
            np.random.default_rng(child),
            trial_core,
            repetitions=repetitions,
            noise=noise,
        )
        assessment = assess(
            trial_core, spy, compiled, target_address, plan=plan
        )
        if assessment.stable and assessment.decoded(fsm) is desired_state:
            return compiled
        return None

    pool = TrialPool(n_workers)
    if backend == "manycore":
        from repro.core.manycore import ManycoreFindPool

        pool = ManycoreFindPool(
            pool,
            core,
            target_address,
            desired_state,
            block_branches=block_branches,
        )
    payloads = list(
        zip(range(seed_start, seed_start + max_candidates), children)
    )
    if store is None:
        winner = pool.find_first(trial, payloads)
    else:
        # Same wave walk as find_first, with a checkpoint per wave —
        # identical winner, but a SIGKILL costs at most one wave.
        def save(index: int, complete: bool, winner_seed=None) -> None:
            store.save(
                {
                    "fingerprint": fingerprint,
                    "entropy": entropy,
                    "next_index": index,
                    "complete": complete,
                    "winner_seed": winner_seed,
                }
            )

        if state is None:
            save(0, False)  # pin the entropy before any wave runs
        wave = n_workers * 4
        winner = None
        for start in range(next_index, max_candidates, wave):
            for result in pool.map(trial, payloads[start:start + wave]):
                if result is not None:
                    winner = result
                    break
            if winner is not None:
                save(start, True, winner.block.seed)
                break
            save(start + wave, False)
        if winner is None:
            save(max_candidates, True)
    if winner is None:
        raise CalibrationError(
            f"no stable block for {desired_state} at {target_address:#x} "
            f"in {max_candidates} candidates"
        )
    return _finish(winner, max_candidates, None)


def stability_experiment(
    core_factory: Callable[[], PhysicalCore],
    target_address: int,
    *,
    n_blocks: int = 400,
    block_branches: int = 20_000,
    repetitions: int = 100,
    noise: Optional[NoiseModel] = None,
    seed_start: int = 0,
    workers: Optional[int] = None,
    fast: bool = True,
    checkpoint=None,
    checkpoint_interval: Optional[int] = None,
    resume: bool = True,
    fingerprint_extra: Optional[Dict[str, object]] = None,
    pool: Optional[TrialPool] = None,
    pre_trial: Optional[Callable[[int], None]] = None,
    backend: str = "process",
) -> List[BlockAssessment]:
    """The Figure 4 experiment: stability scatter over many random blocks.

    Scaled down from the paper's 10 000 blocks x 1000 probes by default;
    the bench passes its own sizes.  A fresh core per candidate keeps
    candidates independent, as the paper's iterations are — and makes
    each trial fully self-contained (its observation stream is the fresh
    core's own seeded RNG), so the sweep is embarrassingly parallel:
    ``workers`` fans candidates across a
    :class:`~repro.parallel.TrialPool` and the assessment list is
    bit-identical at any worker count, including the serial ``workers=1``
    loop.  ``fast=False`` forces the scalar assessment engine.

    Because every trial is a pure function of its block seed, the sweep
    is also trivially resumable: ``checkpoint`` (a path or
    :class:`~repro.resilience.CheckpointStore`) persists results every
    ``checkpoint_interval`` trials through
    :class:`~repro.resilience.ResumableCampaign`, and a killed run
    re-invoked with the same arguments returns the bit-identical list
    while re-running only uncheckpointed trials.  ``fingerprint_extra``
    folds caller-side identity (the core factory's preset and seed,
    which this function cannot see inside the closure) into the
    checkpoint fingerprint so a parameter change is a
    :class:`~repro.resilience.CheckpointMismatch`, not a silent splice.
    ``pool`` substitutes a caller-built
    :class:`~repro.parallel.TrialPool` (e.g. one carrying a fault
    injector or supervision config); ``pre_trial`` runs inside the
    trial before any work — the chaos harness and the ``repro campaign``
    CLI use it to slow or fault trials without touching the result.

    ``backend`` selects how trials execute: ``"process"`` (default) runs
    the per-trial closure, serially or pooled; ``"manycore"`` routes
    trials through the struct-of-arrays shared-structure engine
    (:class:`~repro.core.manycore.ManycoreCampaignPool`), which stacks
    many trials into single array operations — bit-identical results,
    single-process, and it ignores ``workers``.  Unsupported
    configurations (mitigations, zero-width noise gaps, a
    nondeterministic factory) degrade per payload to the scalar trial,
    counted under the ``"manycore"`` scalar-fallback key.  Checkpoints
    are backend-agnostic: a campaign interrupted under one backend
    resumes under the other.
    """
    if backend not in ("process", "manycore"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "manycore":
        if pool is not None:
            raise ValueError("backend='manycore' already supplies the pool")
        if not fast:
            raise ValueError(
                "backend='manycore' is a vectorised engine; use fast=True "
                "or backend='process' for the scalar engine"
            )
    spy = Process("stability-spy")
    assess = assess_block_batch if fast else assess_block

    def trial(block_seed: int) -> BlockAssessment:
        if pre_trial is not None:
            pre_trial(block_seed)
        core = core_factory()
        block = RandomizationBlock.generate(
            block_seed, n_branches=block_branches
        )
        compiled = block.compile(core, spy)
        plan = draw_trial_plan(
            core.rng, core, repetitions=repetitions, noise=noise
        )
        return assess(core, spy, compiled, target_address, plan=plan)

    if backend == "manycore":
        from repro.core.manycore import ManycoreCampaignPool

        trial_pool = ManycoreCampaignPool(
            core_factory,
            target_address,
            block_branches=block_branches,
            repetitions=repetitions,
            noise=noise,
            pre_trial=pre_trial,
            spy=spy,
        )
    else:
        trial_pool = pool if pool is not None else TrialPool(workers)
    payloads = list(range(seed_start, seed_start + n_blocks))
    if checkpoint is None:
        return trial_pool.map(trial, payloads)
    fingerprint = {
        "experiment": "stability_experiment",
        "target_address": target_address,
        "n_blocks": n_blocks,
        "block_branches": block_branches,
        "repetitions": repetitions,
        "noise": repr(noise),
        "seed_start": seed_start,
    }
    if fingerprint_extra:
        fingerprint.update(fingerprint_extra)
    campaign = ResumableCampaign(
        checkpoint,
        fingerprint=fingerprint,
        interval=checkpoint_interval,
        resume=resume,
    )
    return campaign.map(trial_pool, trial, payloads)
