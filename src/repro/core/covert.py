"""BranchScope covert channel (paper §7, Listings 2-3, Figure 6).

A trojan/victim process repeatedly executes one branch whose direction
encodes secret bits (Listing 2); the spy, sharing the physical core,
transmits each bit through the directional predictor:

1. **Prime** — apply the calibrated randomisation block, leaving the
   colliding PHT entry in a known strong state and forcing 1-level mode.
2. **Target** — the victim is scheduled for (nominally) one execution of
   its branch; the outcome moves the shared FSM.
3. **Probe** — the spy executes two branches at the colliding address
   with fixed outcomes, classifies each as hit/miss via its own
   misprediction counter (or timing, §8) and decodes the bit with the
   Figure 6 dictionary.

The dictionary is *derived* from the FSM transition tables for the chosen
prime state and probe direction, and extended to all four patterns using
the second-probe observation, mirroring the paper: "the dictionary of
patterns that we use in this experiment is extended with rarely observed
misprediction patterns in order to include all four possible
combinations" and §8's "only the observations from the second branch
execution is relevant".
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bpu.fsm import FSMSpec, State
from repro.core.calibration import find_block
from repro.core.patterns import DecodedState, expected_probe_pattern
from repro.core.prime_probe import probe_pair, probe_timed
from repro.core.randomizer import CompiledBlock, PAPER_BLOCK_BRANCHES
from repro.core.timing_detect import TimingCalibration
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.obs import trace as obs
from repro.parallel import TrialPool, spawn_seeds
from repro.resilience.checkpoint import ResumableCampaign
from repro.system.scheduler import AttackScheduler, NoiseSetting

__all__ = ["CovertConfig", "CovertChannel", "build_dictionary", "error_rate"]

ALL_PATTERNS = ("MM", "MH", "HM", "HH")


def build_dictionary(
    fsm: FSMSpec,
    prime_state: State,
    probe_outcomes: Sequence[bool],
    taken_bit: int = 1,
) -> Dict[str, int]:
    """Derive the Figure 6 pattern → bit dictionary.

    Computes the two *canonical* patterns (what the probe observes after
    a taken vs. a not-taken victim branch, absent noise) from the FSM
    tables, then extends the mapping to all four patterns by matching the
    second-probe observation (falling back to the first).  Raises
    ``ValueError`` if the chosen prime state cannot distinguish the two
    victim outcomes — e.g. priming ST and probing NN on Skylake, the
    ambiguity the paper warns about in §6.1.
    """
    return build_dictionary_for_level(
        fsm, fsm.level_for(prime_state), probe_outcomes, taken_bit
    )


def build_dictionary_for_level(
    fsm: FSMSpec,
    prime_level: int,
    probe_outcomes: Sequence[bool],
    taken_bit: int = 1,
) -> Dict[str, int]:
    """:func:`build_dictionary` for a raw internal FSM level.

    The multi-branch attack (§6.3) primes entries to *whatever* state
    its calibrated block pins them to, which on the Skylake FSM may be
    an internal level with no canonical :class:`State` constructor; the
    dictionary only needs the level's transition behaviour.
    """
    canonical: Dict[int, str] = {}
    for victim_taken in (True, False):
        after_target = fsm.step(prime_level, victim_taken)
        pattern, _ = expected_probe_pattern(fsm, after_target, probe_outcomes)
        bit = taken_bit if victim_taken else 1 - taken_bit
        canonical[bit] = pattern
    if canonical[0] == canonical[1]:
        raise ValueError(
            f"prime level {prime_level} "
            f"({fsm.public_state(prime_level).name}) with probe "
            f"{''.join('T' if o else 'N' for o in probe_outcomes)} cannot "
            f"distinguish victim outcomes on {fsm.name} (both yield "
            f"{canonical[0]})"
        )
    dictionary: Dict[str, int] = {}
    for pattern in ALL_PATTERNS:
        if pattern == canonical[taken_bit]:
            dictionary[pattern] = taken_bit
        elif pattern == canonical[1 - taken_bit]:
            dictionary[pattern] = 1 - taken_bit
        elif canonical[0][1] != canonical[1][1]:
            # Second-probe observation decides (paper §8).
            dictionary[pattern] = (
                taken_bit
                if pattern[1] == canonical[taken_bit][1]
                else 1 - taken_bit
            )
        else:
            dictionary[pattern] = (
                taken_bit
                if pattern[0] == canonical[taken_bit][0]
                else 1 - taken_bit
            )
    return dictionary


@dataclass(frozen=True)
class CovertConfig:
    """Channel parameters (defaults work on every modelled CPU).

    The default prime state is SN probed with two taken branches: the
    not-taken side of the FSM is textbook on all three microarchitectures
    (the Skylake quirk only affects the taken side), so SN/TT avoids the
    ST/WT ambiguity — the paper's own recommendation.
    """

    prime_state: State = State.SN
    probe_outcomes: Tuple[bool, bool] = (True, True)
    #: Bit value encoded by a taken victim branch.
    taken_bit: int = 1
    #: Link-time address of the victim's secret-dependent branch
    #: (Listing 2's ``je``); the spy's probe branch is placed to collide.
    branch_link_address: int = 0x30_0006_D
    #: Branches per randomisation block (the paper's 100k by default;
    #: benches shrink it after the block-size ablation justifies that).
    block_branches: int = PAPER_BLOCK_BRANCHES
    #: How each probe execution is classified: "counters" (paper §7) or
    #: "timing" (paper §8).
    measurement: str = "counters"


def error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of bits received incorrectly."""
    if len(sent) != len(received):
        raise ValueError("sent/received length mismatch")
    if not sent:
        return 0.0
    wrong = sum(1 for s, r in zip(sent, received) if s != r)
    return wrong / len(sent)


class CovertChannel:
    """One configured covert channel between a sender and the spy.

    The sender side is any callable that makes the victim execute the
    target branch once with the outcome encoding a bit — a plain process
    (see :meth:`for_processes`), an SGX enclave step, or an application
    victim from :mod:`repro.victims`.
    """

    def __init__(
        self,
        core: PhysicalCore,
        spy: Process,
        send_bit: Callable[[int], None],
        branch_address: int,
        compiled_block: CompiledBlock,
        scheduler: AttackScheduler,
        config: Optional[CovertConfig] = None,
        timing_calibration: Optional[TimingCalibration] = None,
    ) -> None:
        self.core = core
        self.spy = spy
        self.send_bit = send_bit
        self.branch_address = branch_address
        self.block = compiled_block
        self.scheduler = scheduler
        self.config = config or CovertConfig()
        fsm = core.predictor.bimodal.pht.fsm
        self.dictionary = build_dictionary(
            fsm,
            self.config.prime_state,
            self.config.probe_outcomes,
            self.config.taken_bit,
        )
        if self.config.measurement == "timing" and timing_calibration is None:
            raise ValueError("timing measurement needs a TimingCalibration")
        self.timing_calibration = timing_calibration
        #: Simulated cycles each message of the most recent
        #: :meth:`trial_sweep` consumed.
        self.last_sweep_cycles: List[int] = []

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def for_processes(
        cls,
        core: PhysicalCore,
        victim: Process,
        spy: Process,
        *,
        setting: NoiseSetting = NoiseSetting.ISOLATED,
        config: Optional[CovertConfig] = None,
        timing_calibration: Optional[TimingCalibration] = None,
        calibration_seed_start: int = 0,
    ) -> "CovertChannel":
        """Standard two-process channel (Listings 2-3).

        Places the spy's probe branch at the victim branch's virtual
        address ("we placed the two branch instructions at identical
        virtual addresses in both processes") and runs the §6.2
        calibration search for a block that primes the required state.
        """
        config = config or CovertConfig()
        address = victim.branch_address(config.branch_link_address)
        scheduler = AttackScheduler(core, setting)
        compiled = find_block(
            core,
            spy,
            address,
            DecodedState.from_state(config.prime_state),
            block_branches=config.block_branches,
            noise=scheduler.noise_model,
            seed_start=calibration_seed_start,
        )

        def send_bit(bit: int) -> None:
            taken = bit == config.taken_bit
            core.execute_branch(victim, address, taken)

        return cls(
            core,
            spy,
            send_bit,
            address,
            compiled,
            scheduler,
            config,
            timing_calibration,
        )

    # -- transmission -----------------------------------------------------------

    def transmit_bit(self, bit: int) -> int:
        """Send one bit through the predictor; returns the decoded bit."""
        self.block.apply(self.core, self.spy)  # stage 1
        self.scheduler.stage_gap()
        self.scheduler.victim_turn(lambda: self.send_bit(bit))  # stage 2
        self.scheduler.stage_gap()
        pattern = self._probe_pattern()  # stage 3
        return self.dictionary[pattern]

    def transmit(self, bits: Sequence[int]) -> List[int]:
        """Send a bit sequence; returns the received sequence.

        Per-message fast path: the probe-variant dispatch, decode
        dictionary and stage callables are resolved once per message
        instead of once per bit (:meth:`transmit_bit` stays as the
        single-bit reference — both make the identical call sequence).
        """
        classify = self._resolve_classifier()
        dictionary = self.dictionary
        config = self.config
        taken_bit = config.taken_bit
        core = self.core
        spy = self.spy
        apply_block = self.block.apply
        stage_gap = self.scheduler.stage_gap
        victim_turn = self.scheduler.victim_turn
        send_bit = self.send_bit
        # The tracer is resolved once per message, like the other
        # per-message lookups: the untraced loop stays exactly the seed's
        # call sequence, the traced loop additionally records each bit.
        tracer = obs.TRACER
        received = []
        if tracer is None:
            for b in bits:
                bit = int(b)
                apply_block(core, spy)  # stage 1
                stage_gap()
                victim_turn(lambda bit=bit: send_bit(bit))  # stage 2
                stage_gap()
                received.append(dictionary[classify()])  # stage 3
            return received
        start_cycle = core.clock.now
        for b in bits:
            bit = int(b)
            apply_block(core, spy)  # stage 1
            stage_gap()
            victim_turn(lambda bit=bit: send_bit(bit))  # stage 2
            stage_gap()
            pattern = classify()  # stage 3
            decoded = dictionary[pattern]
            received.append(decoded)
            tracer.emit(
                "covert",
                "bit",
                cycle=core.clock.now,
                pid=spy.pid,
                sent=bit,
                decoded=decoded,
                pattern=pattern,
                correct=decoded == bit,
            )
        errors = sum(1 for b, r in zip(bits, received) if int(b) != r)
        tracer.emit(
            "covert",
            "transmit",
            cycle=start_cycle,
            pid=spy.pid,
            bits=len(received),
            errors=errors,
            dur=core.clock.now - start_cycle,
        )
        metrics = tracer.metrics
        if metrics is not None:
            metrics.counter(
                "repro_covert_bits_total",
                "covert-channel bits transmitted",
                labels=("outcome",),
            ).inc(len(received) - errors, outcome="correct")
            if errors:
                metrics.counter(
                    "repro_covert_bits_total",
                    "covert-channel bits transmitted",
                    labels=("outcome",),
                ).inc(errors, outcome="error")
        return received

    def trial_sweep(
        self,
        payloads: Sequence[Sequence[int]],
        *,
        workers: Optional[object] = None,
        seed: Optional[int] = 0,
        checkpoint=None,
        checkpoint_interval: Optional[int] = None,
        resume: bool = True,
        pool: Optional[TrialPool] = None,
    ) -> List[List[int]]:
        """Transmit each payload as an independent message trial.

        The channel's prepared state is checkpointed **once per sweep**
        and restored **once per message** (never per bit); each trial
        runs on its own :class:`~numpy.random.SeedSequence`-derived
        noise stream, so the received sequences are bit-identical at any
        ``workers`` count (see :mod:`repro.parallel`).  The channel's
        own state and generator are left untouched; each trial's
        simulated cycle cost is kept in :attr:`last_sweep_cycles`
        (restoring the clock per message would otherwise hide it from
        throughput accounting).

        Each trial is a pure function of its payload index, so the sweep
        is resumable: ``checkpoint`` (a path or
        :class:`~repro.resilience.CheckpointStore`) persists received
        messages every ``checkpoint_interval`` trials, and a killed
        sweep re-run with the same payloads and seed returns the
        bit-identical result while re-transmitting only uncheckpointed
        messages.  ``pool`` substitutes a caller-built
        :class:`~repro.parallel.TrialPool` (supervision config, fault
        injector).
        """
        payloads = [[int(b) for b in payload] for payload in payloads]
        if not payloads:
            self.last_sweep_cycles = []
            return []
        core = self.core
        scheduler = self.scheduler
        start = core.checkpoint(full=True)
        seeds = spawn_seeds(seed, len(payloads))

        def trial(index: int) -> Tuple[List[int], int]:
            trial_rng = np.random.default_rng(seeds[index])
            caller_rng = core.rng
            core.rng = trial_rng
            scheduler.rng = trial_rng
            start_cycle = core.clock.now
            try:
                received = self.transmit(payloads[index])
                return received, core.clock.now - start_cycle
            finally:
                core.restore(start)
                core.rng = caller_rng
                scheduler.rng = caller_rng

        trial_pool = pool if pool is not None else TrialPool(workers)
        indices = range(len(payloads))
        if checkpoint is None:
            outcomes = trial_pool.map(trial, indices)
        else:
            payload_digest = hashlib.sha256(
                repr(payloads).encode()
            ).hexdigest()
            campaign = ResumableCampaign(
                checkpoint,
                fingerprint={
                    "experiment": "covert_trial_sweep",
                    "payloads": payload_digest,
                    "n_payloads": len(payloads),
                    "seed": seed,
                    "branch_address": self.branch_address,
                    "config": repr(self.config),
                },
                interval=checkpoint_interval,
                resume=resume,
            )
            outcomes = campaign.map(trial_pool, trial, indices)
        self.last_sweep_cycles = [cycles for _, cycles in outcomes]
        return [received for received, _ in outcomes]

    def _resolve_classifier(self) -> Callable[[], str]:
        """The probe-variant measurement as a zero-argument callable."""
        core = self.core
        spy = self.spy
        address = self.branch_address
        outcomes = self.config.probe_outcomes
        if self.config.measurement == "timing":
            is_miss = self.timing_calibration.is_miss

            def classify() -> str:
                lat1, lat2 = probe_timed(core, spy, address, outcomes)
                return ("M" if is_miss(lat1) else "H") + (
                    "M" if is_miss(lat2) else "H"
                )

            return classify

        def classify() -> str:
            return probe_pair(core, spy, address, outcomes).pattern

        return classify

    def _probe_pattern(self) -> str:
        if self.config.measurement == "timing":
            lat1, lat2 = probe_timed(
                self.core, self.spy, self.branch_address,
                self.config.probe_outcomes,
            )
            calib = self.timing_calibration
            return ("M" if calib.is_miss(lat1) else "H") + (
                "M" if calib.is_miss(lat2) else "H"
            )
        return probe_pair(
            self.core, self.spy, self.branch_address,
            self.config.probe_outcomes,
        ).pattern
