"""High-level BranchScope facade: spy on an arbitrary victim branch.

Ties the attack primitives into the three-stage loop of paper §4 against
a real victim (not a cooperating trojan): the attacker knows the virtual
address of a secret-dependent branch in the victim (paper §4: "the
virtual addresses of victim's code are typically not a secret"; see
:mod:`repro.core.aslr_attack` when ASLR hides them) and can *trigger* the
victim to execute that branch once (threat-model assumption 3).  Each
trigger leaks one branch direction = one secret bit.

Used by the application attacks in :mod:`repro.victims` (Montgomery
ladder key recovery, libjpeg IDCT zero-map recovery) and by the SGX
attack in ``examples/sgx_attack.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.bpu.fsm import State
from repro.core.calibration import find_block
from repro.core.covert import build_dictionary
from repro.core.patterns import DecodedState
from repro.core.prime_probe import probe_pair
from repro.core.randomizer import CompiledBlock, PAPER_BLOCK_BRANCHES
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.obs import trace as obs
from repro.system.scheduler import AttackScheduler, NoiseSetting

__all__ = ["BranchScope", "SpiedBit"]


@dataclass(frozen=True)
class SpiedBit:
    """One recovered branch direction with its raw observation."""

    #: True = the victim's branch was taken.
    taken: bool
    #: The probe pattern the decision came from (diagnostics).
    pattern: str


class BranchScope:
    """A configured BranchScope attack session on one victim branch.

    Parameters
    ----------
    core, spy:
        The shared physical core and the attacker's process.
    victim_branch_address:
        Run-time virtual address of the victim branch to spy on.
    setting:
        Noise environment (Table 2's isolated / with-noise, or QUIESCED
        under an attacker-controlled OS).
    prime_state, probe_outcomes:
        Attack working point.  The default — prime SN, probe with two
        taken branches — avoids the Skylake ST/WT ambiguity and works on
        all modelled CPUs.
    block_branches:
        Size of the randomisation block (paper default 100k).
    """

    def __init__(
        self,
        core: PhysicalCore,
        spy: Process,
        victim_branch_address: int,
        *,
        setting: NoiseSetting = NoiseSetting.ISOLATED,
        prime_state: State = State.SN,
        probe_outcomes=(True, True),
        block_branches: int = PAPER_BLOCK_BRANCHES,
        calibration_seed_start: int = 0,
        scheduler: Optional[AttackScheduler] = None,
    ) -> None:
        self.core = core
        self.spy = spy
        self.address = int(victim_branch_address)
        self.prime_state = prime_state
        self.probe_outcomes = tuple(probe_outcomes)
        # Unlike the free-running covert-channel victim, this attack
        # *triggers* each victim execution (threat-model assumption 3),
        # so there is no slowdown-precision jitter: one trigger, one
        # branch.  Noise injection still follows the setting.
        self.scheduler = scheduler or AttackScheduler(
            core, setting, victim_jitter=0.0
        )
        self.block_branches = block_branches
        self._calibration_seed_start = calibration_seed_start
        self._compiled: Optional[CompiledBlock] = None
        fsm = core.predictor.bimodal.pht.fsm
        # taken_bit=1: dictionary maps patterns to 1 = taken.
        self._dictionary = build_dictionary(
            fsm, prime_state, self.probe_outcomes, taken_bit=1
        )

    # -- pre-attack stage ---------------------------------------------------

    def calibrate(self, max_candidates: int = 64) -> CompiledBlock:
        """One-time §6.2 search for a block priming the working state."""
        self._compiled = find_block(
            self.core,
            self.spy,
            self.address,
            DecodedState.from_state(self.prime_state),
            block_branches=self.block_branches,
            noise=self.scheduler.noise_model,
            max_candidates=max_candidates,
            seed_start=self._calibration_seed_start,
        )
        return self._compiled

    @property
    def compiled_block(self) -> CompiledBlock:
        """The calibrated block, calibrating lazily on first use."""
        if self._compiled is None:
            self.calibrate()
        return self._compiled

    # -- the attack loop ------------------------------------------------------

    def spy_on_branch(self, trigger: Callable[[], None]) -> SpiedBit:
        """Recover the direction of one victim branch execution.

        ``trigger`` makes the victim execute the monitored branch once
        (e.g. sending a request to a server, §3).  Implements the
        prime → victim → probe loop of §4.
        """
        self.compiled_block.apply(self.core, self.spy)  # stage 1
        self.scheduler.stage_gap()
        self.scheduler.victim_turn(trigger)  # stage 2
        self.scheduler.stage_gap()
        pattern = probe_pair(  # stage 3
            self.core, self.spy, self.address, self.probe_outcomes
        ).pattern
        taken = bool(self._dictionary[pattern])
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "probe",
                "classified",
                cycle=self.core.clock.now,
                pid=self.spy.pid,
                address=self.address,
                pattern=pattern,
                taken=taken,
            )
        return SpiedBit(taken=taken, pattern=pattern)

    def spy_on_bits(
        self, trigger: Callable[[], None], n_bits: int
    ) -> List[bool]:
        """Recover ``n_bits`` successive directions of the victim branch.

        Each call to ``trigger`` must advance the victim by exactly one
        secret-dependent branch (the victim-slowdown assumption).
        """
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        return [self.spy_on_branch(trigger).taken for _ in range(n_bits)]
