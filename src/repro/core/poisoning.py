"""Branch poisoning: the write-side of the channel (paper §1).

"The attacker may also change the predictor state, changing its behavior
in the victim. ... The branch poisoning attack presented in Spectre is
based on the same basic principle as BranchScope — exploiting collisions
between different branch instructions in the branch predictor data
structures."

BranchScope's collision machinery runs in both directions: instead of
*reading* the victim's branch direction out of a shared PHT entry, the
attacker *writes* a chosen direction into it, forcing the victim's next
execution to be (mis)predicted the attacker's way.  In a Spectre-v1
setting that misprediction opens the speculative window over the
victim's bounds check; here we model and measure the microarchitectural
half — the attacker's control over the victim's prediction outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.system.scheduler import AttackScheduler, NoiseSetting

__all__ = ["PoisoningResult", "poison_branch", "poisoning_experiment"]


def poison_branch(
    core: PhysicalCore,
    attacker: Process,
    victim_branch_address: int,
    predict_taken: bool,
    *,
    strength: int = 5,
    force_one_level: bool = True,
) -> None:
    """Drive the victim branch's PHT entry to a chosen strong state.

    The attacker executes its own colliding branch ``strength`` times in
    the desired direction — plain BranchScope stage-1 machinery pointed
    the other way.  ``strength >= n_levels`` saturates the counter from
    any starting state.

    With ``force_one_level`` (the default) the attacker also executes a
    branch that conflicts with the victim's identification-table set,
    evicting the victim's branch so its next execution runs in 1-level
    mode (§5.2).  Without this, a repeatedly poisoned victim is rescued
    by the 2-level predictor, which learns the poison/execute rhythm —
    the same effect that motivates the randomisation block in the read
    attack.
    """
    for _ in range(strength):
        core.execute_branch(attacker, victim_branch_address, predict_taken)
    if force_one_level:
        conflict = victim_branch_address + core.predictor.bit.n_sets
        core.execute_branch(attacker, conflict, bool(strength % 2))


@dataclass(frozen=True)
class PoisoningResult:
    """Victim misprediction rates with and without poisoning."""

    baseline_misprediction_rate: float
    poisoned_misprediction_rate: float

    @property
    def amplification(self) -> float:
        """How much poisoning inflated the victim's misprediction rate."""
        if self.baseline_misprediction_rate == 0:
            return float("inf") if self.poisoned_misprediction_rate else 1.0
        return (
            self.poisoned_misprediction_rate
            / self.baseline_misprediction_rate
        )


def poisoning_experiment(
    core: PhysicalCore,
    attacker: Process,
    victim: Process,
    victim_branch_address: int,
    victim_direction: bool,
    *,
    rounds: int = 200,
    scheduler: Optional[AttackScheduler] = None,
) -> PoisoningResult:
    """Measure the attacker's control over a victim branch's predictions.

    The victim repeatedly executes a branch that *always* goes
    ``victim_direction`` (think: a bounds check that always passes).
    Baseline: the predictor learns it and the victim enjoys ~0
    mispredictions.  Poisoned: before each victim execution the attacker
    re-primes the shared entry to the opposite direction, forcing a
    misprediction — the Spectre-style speculative window — every round.
    """
    scheduler = scheduler or AttackScheduler(
        core, NoiseSetting.ISOLATED, victim_jitter=0.0
    )
    address = int(victim_branch_address)

    def measure(poison: bool) -> float:
        # Warm the victim's branch so the baseline is trained.
        for _ in range(4):
            core.execute_branch(victim, address, victim_direction)
        missed = 0
        for _ in range(rounds):
            if poison:
                poison_branch(
                    core, attacker, address, not victim_direction
                )
            scheduler.stage_gap()
            record = core.execute_branch(victim, address, victim_direction)
            if record.mispredicted:
                missed += 1
        return missed / rounds

    baseline = measure(poison=False)
    poisoned = measure(poison=True)
    return PoisoningResult(
        baseline_misprediction_rate=baseline,
        poisoned_misprediction_rate=poisoned,
    )
