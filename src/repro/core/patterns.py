"""Probe outcome patterns and the Table 1 state dictionary (paper §6.1).

The spy's stage-3 probe executes the colliding branch twice with chosen
outcomes and records, for each execution, whether it was predicted
correctly (H) or mispredicted (M).  The two-letter pattern — ``MM``,
``MH``, ``HM`` or ``HH`` — combined across a taken-taken (``TT``) probe
and a not-taken-not-taken (``NN``) probe uniquely identifies the FSM
state the entry was in (Table 1), with two special cases:

* ``dirty``: both probe variants fully hit (``HH``/``HH``) — the
  randomisation code had no effect and the 2-level predictor is covering
  the branch (paper §6.2).
* ``unknown``: any signature not in the dictionary, treated as noise.

On Skylake the sticky-taken FSM makes ST and WT produce the same
signature; :func:`decode_state` reports ST for it (see
:func:`repro.bpu.fsm.skylake_fsm`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.bpu.fsm import FSMSpec, State

__all__ = [
    "ProbeResult",
    "DecodedState",
    "expected_probe_pattern",
    "state_signatures",
    "decode_state",
]


@dataclass(frozen=True)
class ProbeResult:
    """Hit/miss observations of one two-branch probe."""

    first_hit: bool
    second_hit: bool

    @property
    def pattern(self) -> str:
        """Two-letter pattern in the paper's notation (M=miss, H=hit)."""
        return ("H" if self.first_hit else "M") + (
            "H" if self.second_hit else "M"
        )

    @staticmethod
    def from_pattern(pattern: str) -> "ProbeResult":
        """Parse a two-letter pattern string."""
        if len(pattern) != 2 or any(c not in "MH" for c in pattern):
            raise ValueError(f"bad probe pattern {pattern!r}")
        return ProbeResult(pattern[0] == "H", pattern[1] == "H")


class DecodedState(enum.Enum):
    """What the two-variant probe dictionary can say about a PHT entry."""

    SN = "SN"
    WN = "WN"
    WT = "WT"
    ST = "ST"
    #: Probes always predicted correctly: the 2-level predictor covers the
    #: branch and the PHT randomisation had no effect (paper §6.2).
    DIRTY = "dirty"
    #: Signature not in the dictionary (system noise).
    UNKNOWN = "unknown"

    @staticmethod
    def from_state(state: State) -> "DecodedState":
        """The decoded value corresponding to an architectural state."""
        return DecodedState(state.name)


def expected_probe_pattern(
    fsm: FSMSpec, start_level: int, outcomes: Sequence[bool]
) -> Tuple[str, int]:
    """Predict the H/M pattern of executing a lone branch through an FSM.

    Starting from ``start_level``, executes one branch per entry of
    ``outcomes`` (True = taken), assuming the FSM alone decides the
    prediction (the 1-level mode the attack forces).  Returns the pattern
    string and the final level.  This is the analytical model behind
    every row of Table 1.
    """
    level = start_level
    letters = []
    for taken in outcomes:
        hit = fsm.predicts(level) == bool(taken)
        letters.append("H" if hit else "M")
        level = fsm.step(level, taken)
    return "".join(letters), level


def state_signatures(fsm: FSMSpec) -> Dict[Tuple[str, str], DecodedState]:
    """The (TT-pattern, NN-pattern) → state dictionary for an FSM.

    Computed from the FSM's own transition tables rather than hardcoded,
    so the textbook and Skylake variants each get their correct
    dictionary (this is how the paper's Table 1 footnote falls out
    naturally).  When two architectural states share a signature (ST/WT
    on Skylake) the stronger state wins, matching the paper's observation
    that they are indistinguishable.
    """
    signatures: Dict[Tuple[str, str], DecodedState] = {}
    # Weaker states first so stronger states override shared signatures.
    for state in (State.WN, State.WT, State.SN, State.ST):
        level = fsm.level_for(state)
        tt, _ = expected_probe_pattern(fsm, level, (True, True))
        nn, _ = expected_probe_pattern(fsm, level, (False, False))
        signatures[(tt, nn)] = DecodedState.from_state(state)
    # The dirty case is not an FSM state: both variants fully predicted.
    signatures.setdefault(("HH", "HH"), DecodedState.DIRTY)
    return signatures


def decode_state(
    fsm: FSMSpec, tt_pattern: str, nn_pattern: str
) -> DecodedState:
    """Decode a (TT, NN) probe signature into a PHT entry state."""
    return state_signatures(fsm).get(
        (tt_pattern, nn_pattern), DecodedState.UNKNOWN
    )
