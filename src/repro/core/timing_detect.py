"""Detecting branch predictor events with the timestamp counter (paper §8).

Without access to performance counters, the spy times its probe branches
with ``rdtscp``: a mispredicted branch costs a pipeline restart, so its
latency distribution sits visibly above the correctly-predicted one
(Figure 7).  Complications the paper measures and we reproduce:

* the **first** execution of a branch is polluted by instruction-fetch
  effects — 20-30% detection error (Figure 8, upper curve);
* the **second** (warm) execution detects reliably: ~10% error from a
  single measurement, approaching zero as ~10 measurements are averaged
  (Figure 8, lower curve);
* each PHT state leaves a distinct latency signature on the two probe
  executions (Figure 9), so the whole attack works timer-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.bpu.fsm import State
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.cpu.timing import TimingModel

__all__ = [
    "LatencySamples",
    "TimingCalibration",
    "latency_experiment",
    "timing_error_rate",
    "probe_state_latencies",
    "calibrate_timing",
]


@dataclass(frozen=True)
class LatencySamples:
    """Latencies from the §8 double-execution protocol.

    ``first``/``second`` are per-trial latencies of the first (cold) and
    second (warm) executions of the branch instance.
    """

    first: np.ndarray
    second: np.ndarray


def _state_for(taken: bool, correct: bool) -> State:
    """PHT state that makes a ``taken`` branch (in)correctly predicted."""
    if correct:
        return State.ST if taken else State.SN
    return State.SN if taken else State.ST


def latency_experiment(
    core: PhysicalCore,
    process: Process,
    address: int,
    *,
    n: int = 10_000,
    taken: bool,
    correct: bool,
) -> LatencySamples:
    """Collect Figure 7 latency samples through the full core model.

    Each trial mimics the paper's protocol: the branch line is flushed
    from the i-cache, the colliding PHT entry is driven to a state that
    makes the prediction hit or miss, and the branch executes twice with
    the same outcome — latencies of both executions are recorded.  The
    branch is evicted from the identification table before each execution
    so the 1-level predictor is in effect, as in the attack.
    """
    pht = core.predictor.bimodal.pht
    index = core.predictor.bimodal.index(address)
    state = _state_for(taken, correct)
    first = np.empty(n, dtype=np.int64)
    second = np.empty(n, dtype=np.int64)
    for i in range(n):
        core.icache.evict(address)
        pht.set_state(index, state)
        core.predictor.bit.evict(address)
        first[i] = core.execute_branch(process, address, taken).latency
        # Keep the second execution's correctness identical: a saturating
        # counter stays on the same prediction side after one same-side
        # miss (ST -N-> WT still predicts taken), but re-arming makes the
        # protocol explicit and FSM-agnostic.
        pht.set_state(index, state)
        core.predictor.bit.evict(address)
        second[i] = core.execute_branch(process, address, taken).latency
    return LatencySamples(first=first, second=second)


def timing_error_rate(
    timing: TimingModel,
    rng: np.random.Generator,
    *,
    n_measurements: int,
    measurement: int,
    trials: int = 2_000,
    taken: bool = True,
) -> float:
    """Figure 8: detection error vs. number of averaged measurements.

    Per the paper: collect hit latencies ``H`` and miss latencies ``M``
    for the chosen execution (1st = cold, 2nd = warm); a detection error
    occurs when the averaged hit latency is not below the averaged miss
    latency.  This operates directly on the latency channel (the
    :class:`TimingModel`), which is exactly what the measurement
    instrument sees; :func:`latency_experiment` validates that the full
    core path produces the same distributions.
    """
    if measurement not in (1, 2):
        raise ValueError("measurement is 1 (first/cold) or 2 (second/warm)")
    cold = measurement == 1
    hits = timing.sample_many(
        rng, trials * n_measurements, mispredicted=False, cold=cold, taken=taken
    ).reshape(trials, n_measurements)
    misses = timing.sample_many(
        rng, trials * n_measurements, mispredicted=True, cold=cold, taken=taken
    ).reshape(trials, n_measurements)
    errors = hits.mean(axis=1) >= misses.mean(axis=1)
    return float(errors.mean())


def probe_state_latencies(
    core: PhysicalCore,
    process: Process,
    address: int,
    *,
    n: int = 2_000,
) -> Dict[str, Dict[State, Tuple[float, float, float, float]]]:
    """Figure 9: probe latencies as a function of the primed PHT state.

    For each architectural state and each probe variant (two not-taken
    branches / two taken branches), returns
    ``(mean_first, std_first, mean_second, std_second)`` of the two probe
    executions' latencies.  Keys of the outer dict: ``"NN"`` and ``"TT"``.
    """
    pht = core.predictor.bimodal.pht
    index = core.predictor.bimodal.index(address)
    results: Dict[str, Dict[State, Tuple[float, float, float, float]]] = {}
    for label, outcome in (("NN", False), ("TT", True)):
        per_state: Dict[State, Tuple[float, float, float, float]] = {}
        for state in State:
            first = np.empty(n, dtype=np.int64)
            second = np.empty(n, dtype=np.int64)
            for i in range(n):
                pht.set_state(index, state)
                core.predictor.bit.evict(address)
                # Warm probes: the attack always measures warm branches
                # (the spy's probe code ran moments earlier).
                core.icache.fetch(address)
                first[i] = core.execute_branch(process, address, outcome).latency
                core.predictor.bit.evict(address)
                second[i] = core.execute_branch(process, address, outcome).latency
            per_state[state] = (
                float(first.mean()),
                float(first.std()),
                float(second.mean()),
                float(second.std()),
            )
        results[label] = per_state
    return results


@dataclass(frozen=True)
class TimingCalibration:
    """Hit/miss latency decision threshold for timer-based probing."""

    hit_mean: float
    miss_mean: float
    threshold: float

    def is_miss(self, latency: int) -> bool:
        """Classify one warm probe latency as a misprediction."""
        return latency >= self.threshold


def calibrate_timing(
    core: PhysicalCore,
    process: Process,
    *,
    scratch_address: int = 0x7_0000_0001,
    n: int = 3_000,
) -> TimingCalibration:
    """Learn the hit/miss decision threshold on a scratch branch.

    The spy calibrates on its *own* branch (whose outcome it controls) —
    an entirely attacker-legal pre-attack step.  Uses warm (second)
    executions, the only ones the attack relies on (§8).
    """
    hit = latency_experiment(
        core, process, scratch_address, n=n, taken=True, correct=True
    ).second
    miss = latency_experiment(
        core, process, scratch_address, n=n, taken=True, correct=False
    ).second
    hit_mean = float(hit.mean())
    miss_mean = float(miss.mean())
    return TimingCalibration(
        hit_mean=hit_mean,
        miss_mean=miss_mean,
        threshold=(hit_mean + miss_mean) / 2.0,
    )
