"""Spying on several victim branches per episode (paper §6.3).

"Knowing the states of PHT entries associated with different memory
addresses potentially allows the attacker to spy on multiple branch
instructions in victim process in a single episode of execution."

One randomisation block sets *every* PHT entry, so a block that pins all
k target entries primes all of them at once; after the victim's episode
(one execution of each monitored branch) the spy probes the k entries
one by one — distinct entries, so probing one does not disturb the
others.  Two wrinkles relative to the single-branch attack:

* each entry is pinned to whatever state the block happens to leave
  there, so each address gets its *own* decode dictionary, derived from
  its pinned level (:func:`repro.core.covert.build_dictionary_for_level`);
* a pinned level is only usable if some probe variant distinguishes a
  taken from a not-taken victim execution — on the Skylake FSM the
  ST-side levels are not (the §6.1 ambiguity), so calibration rejects
  blocks that pin any target to an undecodable level.

Calibration searches candidate blocks with the cheap analytical
entry-fold filter; requiring k simultaneous pins-with-usable-levels
makes usable blocks rarer (the cost of the aggressive attack the paper
anticipates), which ``tests/test_multi.py`` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.calibration import CalibrationError
from repro.core.covert import build_dictionary_for_level
from repro.core.prime_probe import probe_pair
from repro.core.randomizer import (
    PAPER_BLOCK_BRANCHES,
    CompiledBlock,
    RandomizationBlock,
)
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.parallel import TrialPool
from repro.system.scheduler import AttackScheduler, NoiseSetting

__all__ = ["BranchPlan", "MultiBranchScope"]

#: Probe variants tried, in order, when deriving a per-address dictionary.
PROBE_VARIANTS: Tuple[Tuple[bool, bool], ...] = (
    (True, True),
    (False, False),
)


@dataclass(frozen=True)
class BranchPlan:
    """How one monitored address will be probed and decoded."""

    address: int
    pinned_level: int
    probe_outcomes: Tuple[bool, bool]
    dictionary: Dict[str, int]


class MultiBranchScope:
    """Monitor the directions of several victim branches per episode."""

    def __init__(
        self,
        core: PhysicalCore,
        spy: Process,
        addresses: Sequence[int],
        *,
        setting: NoiseSetting = NoiseSetting.ISOLATED,
        block_branches: int = PAPER_BLOCK_BRANCHES,
        scheduler: Optional[AttackScheduler] = None,
    ) -> None:
        if not addresses:
            raise ValueError("need at least one address to monitor")
        pht_size = core.predictor.bimodal.pht.n_entries
        entries = {int(a) % pht_size for a in addresses}
        if len(entries) != len(addresses):
            raise ValueError(
                "monitored addresses must map to distinct PHT entries"
            )
        self.core = core
        self.spy = spy
        self.addresses = [int(a) for a in addresses]
        self.block_branches = block_branches
        self.scheduler = scheduler or AttackScheduler(
            core, setting, victim_jitter=0.0
        )
        self._compiled: Optional[CompiledBlock] = None
        self._plans: Dict[int, BranchPlan] = {}

    # -- calibration -------------------------------------------------------

    def _plan_for_level(self, address: int, level: int) -> Optional[BranchPlan]:
        """A decodable probe plan for an entry pinned at ``level``."""
        fsm = self.core.predictor.bimodal.pht.fsm
        for probe_outcomes in PROBE_VARIANTS:
            try:
                dictionary = build_dictionary_for_level(
                    fsm, level, probe_outcomes
                )
            except ValueError:
                continue
            return BranchPlan(
                address=address,
                pinned_level=level,
                probe_outcomes=probe_outcomes,
                dictionary=dictionary,
            )
        return None

    def calibrate(
        self,
        max_candidates: int = 4000,
        *,
        workers: Optional[object] = None,
    ) -> CompiledBlock:
        """Find one block that pins every target entry to a usable level.

        The analytical entry-fold filter makes scanning thousands of
        candidates cheap; only the winning block is compiled.  Candidate
        scanning fans across a :class:`~repro.parallel.TrialPool` when
        ``workers`` asks for it — trials only read shared state and
        return picklable plans, and the winner is always the lowest
        candidate seed regardless of worker count; the winning block is
        compiled in the calling process.
        """

        def trial(seed: int) -> Optional[Tuple[int, Dict[int, BranchPlan]]]:
            block = RandomizationBlock.generate(
                seed, n_branches=self.block_branches
            )
            plans: Dict[int, BranchPlan] = {}
            for address in self.addresses:
                row = block.entry_fold(self.core, self.spy, address)
                if not (row == row[0]).all():
                    return None  # not pinned
                plan = self._plan_for_level(address, int(row[0]))
                if plan is None:
                    return None  # pinned to an undecodable level
                plans[address] = plan
            return seed, plans

        found = TrialPool(workers).find_first(trial, range(max_candidates))
        if found is None:
            raise CalibrationError(
                f"no block pins all {len(self.addresses)} targets usably "
                f"within {max_candidates} candidates"
            )
        winning_seed, plans = found
        block = RandomizationBlock.generate(
            winning_seed, n_branches=self.block_branches
        )
        self._compiled = block.compile(self.core, self.spy)
        self._plans = plans
        return self._compiled

    @property
    def plans(self) -> List[BranchPlan]:
        """The per-address probe plans (calibrating lazily)."""
        if not self._plans:
            self.calibrate()
        return [self._plans[a] for a in self.addresses]

    # -- the episode loop ------------------------------------------------------

    def spy_episode(self, trigger: Callable[[], None]) -> Dict[int, bool]:
        """Recover every monitored branch's direction from one episode.

        ``trigger`` runs the victim through one episode in which each
        monitored branch executes exactly once (in any order).  Returns
        ``{address: taken}``.
        """
        if not self._plans:
            self.calibrate()
        self._compiled.apply(self.core, self.spy)  # stage 1, all entries
        self.scheduler.stage_gap()
        trigger()  # stage 2, the whole episode
        self.scheduler.stage_gap()
        results: Dict[int, bool] = {}
        for plan in self.plans:  # stage 3, entry by entry
            pattern = probe_pair(
                self.core, self.spy, plan.address, plan.probe_outcomes
            ).pattern
            results[plan.address] = bool(plan.dictionary[pattern])
        return results

    def spy_episodes(
        self, trigger: Callable[[], None], n_episodes: int
    ) -> List[Dict[int, bool]]:
        """Run :meth:`spy_episode` ``n_episodes`` times."""
        return [self.spy_episode(trigger) for _ in range(n_episodes)]
