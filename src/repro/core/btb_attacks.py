"""Prior-work BTB attacks (paper §11), for comparison with BranchScope.

The earlier branch-predictor side channels all target the *branch target
buffer*: a taken branch installs its target into a direct-mapped,
tagged BTB set, evicting whatever lived there, and a branch whose BTB
entry was evicted pays a late front-end redirect on its next taken
execution.  Two classic primitives built on that:

* **direction inference** (Acıiçmez et al.'s eviction attack, refined by
  Lee et al.'s branch shadowing): the spy installs its own entry in the
  BTB set the victim's branch maps to and times its own branch after the
  victim runs — slow means the victim's branch executed *taken* (it
  allocated, evicting the spy), fast means not-taken.
* **Jump over ASLR** (Evtyushkin et al.): scanning candidate sets for
  such evictions reveals *where* the victim's taken branches live,
  modulo the number of BTB sets.

These are implemented here so the repository can demonstrate the paper's
first contribution claim: flushing/partitioning the BTB (see
:class:`repro.mitigations.btb_defense.BtbFlushOnContextSwitch`) defeats
both primitives while BranchScope — which never reads the BTB — keeps
working (`bench_btb_vs_branchscope`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.system.scheduler import AttackScheduler, NoiseSetting

__all__ = [
    "BtbTimingCalibration",
    "calibrate_btb_threshold",
    "btb_direction_spy",
    "btb_locate_branch",
]


@dataclass(frozen=True)
class BtbTimingCalibration:
    """Latency threshold separating BTB-hit from BTB-miss executions."""

    hit_mean: float
    miss_mean: float
    threshold: float

    def is_btb_miss(self, latency: float) -> bool:
        """Classify a (possibly averaged) taken-branch latency."""
        return latency >= self.threshold


def _train_direction(
    core: PhysicalCore, spy: Process, address: int, repeats: int = 4
) -> None:
    """Saturate the direction predictor so probe latency isolates the BTB."""
    for _ in range(repeats):
        core.execute_branch(spy, address, True)


def calibrate_btb_threshold(
    core: PhysicalCore,
    spy: Process,
    *,
    scratch_address: int = 0x7_2000_0001,
    samples: int = 400,
) -> BtbTimingCalibration:
    """Attacker-side calibration of the BTB-miss latency signature.

    The spy times its own taken branch in two self-made conditions: BTB
    entry present (it just executed) and BTB entry evicted (the spy ran
    a conflicting taken branch in the same set).  Entirely attacker-
    legal, like :func:`repro.core.timing_detect.calibrate_timing`.
    """
    n_sets = core.predictor.btb.n_sets
    conflict = scratch_address + n_sets  # same set, different tag
    _train_direction(core, spy, scratch_address)
    _train_direction(core, spy, conflict)

    hits = np.empty(samples, dtype=np.int64)
    misses = np.empty(samples, dtype=np.int64)
    for i in range(samples):
        core.execute_branch(spy, scratch_address, True)  # install
        hits[i] = core.execute_branch(spy, scratch_address, True).latency
        core.execute_branch(spy, conflict, True)  # evict via conflict
        misses[i] = core.execute_branch(spy, scratch_address, True).latency
    hit_mean = float(hits.mean())
    miss_mean = float(misses.mean())
    return BtbTimingCalibration(
        hit_mean=hit_mean,
        miss_mean=miss_mean,
        threshold=(hit_mean + miss_mean) / 2.0,
    )


def btb_direction_spy(
    core: PhysicalCore,
    spy: Process,
    victim_branch_address: int,
    trigger: Callable[[], None],
    calibration: BtbTimingCalibration,
    *,
    trials: int = 8,
    scheduler: Optional[AttackScheduler] = None,
) -> bool:
    """Infer one victim branch direction through BTB evictions.

    The spy's probe branch lives at ``victim_address + n_sets``: same
    BTB set, different tag, and (because the directional PHT is larger
    than the BTB) a different PHT entry, so the measurement is purely a
    target-buffer effect.  Each trial installs the spy's entry, lets the
    victim execute once, and times the spy's next taken execution; the
    averaged first-probe latency is classified against the calibration.

    Returns True when the victim's branch is inferred *taken*.  Each
    trial consumes one ``trigger`` invocation, so ``trials`` consecutive
    victim executions must take the same direction (the same requirement
    the prior work has).
    """
    scheduler = scheduler or AttackScheduler(core, NoiseSetting.ISOLATED)
    probe_address = victim_branch_address + core.predictor.btb.n_sets
    _train_direction(core, spy, probe_address)
    latencies = np.empty(trials, dtype=np.int64)
    for i in range(trials):
        core.execute_branch(spy, probe_address, True)  # install entry
        scheduler.stage_gap()
        scheduler.victim_turn(trigger)
        scheduler.stage_gap()
        latencies[i] = core.execute_branch(spy, probe_address, True).latency
    return calibration.is_btb_miss(float(latencies.mean()))


@dataclass(frozen=True)
class BtbCandidateScore:
    """Eviction evidence for one candidate BTB set."""

    candidate_address: int
    mean_latency: float
    evicted: bool


def btb_locate_branch(
    core: PhysicalCore,
    spy: Process,
    trigger: Callable[[], None],
    candidate_addresses: Sequence[int],
    calibration: BtbTimingCalibration,
    *,
    trials: int = 6,
    scheduler: Optional[AttackScheduler] = None,
) -> List[BtbCandidateScore]:
    """Jump-over-ASLR: find which BTB set the victim's taken branch hits.

    For each candidate congruence class (mod BTB sets), measure eviction
    evidence as in :func:`btb_direction_spy`.  Returns scores sorted by
    mean latency descending — the victim's class should top the list.
    """
    scheduler = scheduler or AttackScheduler(core, NoiseSetting.ISOLATED)
    n_sets = core.predictor.btb.n_sets
    seen = set()
    scores: List[BtbCandidateScore] = []
    for candidate in candidate_addresses:
        congruence = int(candidate) % n_sets
        if congruence in seen:
            continue
        seen.add(congruence)
        probe_address = int(candidate) + n_sets
        _train_direction(core, spy, probe_address)
        latencies = np.empty(trials, dtype=np.int64)
        for i in range(trials):
            core.execute_branch(spy, probe_address, True)
            scheduler.stage_gap()
            scheduler.victim_turn(trigger)
            scheduler.stage_gap()
            latencies[i] = core.execute_branch(
                spy, probe_address, True
            ).latency
        mean_latency = float(latencies.mean())
        scores.append(
            BtbCandidateScore(
                candidate_address=int(candidate),
                mean_latency=mean_latency,
                evicted=calibration.is_btb_miss(mean_latency),
            )
        )
    return sorted(scores, key=lambda s: s.mean_latency, reverse=True)
