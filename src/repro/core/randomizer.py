"""PHT randomisation block — Listing 1 and paper §5.2/§6.2.

The attacker's stage-1 tool is a long, one-time-generated block of
conditional branches with randomly chosen directions and NOP-jittered
addresses.  Executing it:

* drives most PHT entries to a block-specific state (priming),
* evicts the victim's branch from the BPU's recent-branch state, forcing
  it back into 1-level mode (§5.2), and
* destroys any useful 2-level history (random pattern, random GHR).

The paper found 100 000 branches sufficient; the block-size ablation
bench sweeps this (smaller blocks rarely *pin* the target entry — their
effect on it depends on its prior level — which is exactly why the paper
needs so many branches).  Directions and placements are randomised
**once** at generation time ("the outcome patterns are randomized only
once (when the block is generated) and are not re-randomized during
execution"), which is what makes a block's effect on a given PHT entry
reproducible — the property the §6.2 calibration search exploits.

Fast path
---------
A covert-channel run executes the block once per transmitted bit; at
100k simulated branches per bit that is infeasible in pure Python, so
:meth:`RandomizationBlock.compile` precomputes the block's effect
analytically.  No simulation is required because every block branch sits
at a unique, fresh address and therefore executes *cold* (it always
misses the branch identification table):

* **bimodal PHT** (the attack's observable): an exact per-entry
  *transition map* ``final_level = map[entry, initial_level]`` — folding
  the block's per-entry outcome subsequence through the FSM is exact for
  any starting PHT contents;
* **gshare PHT**: the same fold, using the block's GHR trajectory, which
  is fully determined by the block's own outcomes after the first
  ``ghr_bits`` branches (the fold assumes an all-zero initial history,
  so at most ``ghr_bits`` of the 100k updates land on a different entry
  than an exact run — quantified in ``tests/test_randomizer.py``);
* **selector**: every touched entry is *reset* to the initial bias
  (cold-branch allocation semantics — see
  :meth:`repro.bpu.selector.SelectorTable.reset_entry`);
* **identification table**: block tags are inserted in program order
  (last write per set wins);
* **GHR**: the block's final ``ghr_bits`` outcomes;
* **clock / spy counters**: charged a deterministic per-branch estimate
  (cold fetch + ~50% mispredictions); only counter *deltas* around probe
  branches are ever read, so absolute drift is unobservable.

The folds themselves run vectorised: each outcome is a transition *map*
on FSM levels, maps compose through the FSM's precomputed
:class:`~repro.bpu.fsm.TransitionMonoid` table, and a segmented scan
reduces each entry's map sequence in ``O(N log N)`` array ops instead
of a pure-Python loop over 100k branches (bit-exact with the reference
loop, see ``tests/test_fold_vectorized.py``).  Compiled blocks are
additionally memoised in a bounded LRU keyed on ``(block fingerprint,
core config, key, partition, timing model)`` so calibration searches
and covert-channel benches never recompile an identical block.
"""

from __future__ import annotations

import functools
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.bpu.hashes import apply_hash, fold_history
from repro.cpu.core import BranchExecution, PhysicalCore
from repro.cpu.counters import CounterKind
from repro.cpu.process import Process
from repro.obs import trace as obs

__all__ = [
    "RandomizationBlock",
    "CompiledBlock",
    "PAPER_BLOCK_BRANCHES",
    "COMPILE_CACHE_MAXSIZE",
    "clear_compile_cache",
    "compile_cache_info",
]

#: Default virtual address the generated block is "linked" at — an
#: otherwise unused region of the spy's address space.
DEFAULT_BLOCK_BASE = 0x10000000

#: Paper §5.2: "executing 100,000 branch instructions is sufficient".
PAPER_BLOCK_BRANCHES = 100_000

#: Bound on the compiled-block cache below.  Each compiled 16k-entry
#: block holds a few MB of transition maps, so the cache is LRU-bounded
#: rather than unbounded.
COMPILE_CACHE_MAXSIZE = 64

# (block fingerprint, core geometry, key, partition, timing) -> CompiledBlock.
_compile_cache: "OrderedDict[Tuple, CompiledBlock]" = OrderedDict()
_compile_cache_stats: Dict[str, int] = {
    "memory_hits": 0,
    "disk_hits": 0,
    "misses": 0,
}


def clear_compile_cache() -> None:
    """Empty the process-wide compiled-block cache and its statistics.

    Only the in-process tier is dropped: the persistent
    :mod:`repro.store` tier (when one is configured) deliberately
    survives, since its artifacts are content-addressed and shared
    across processes.
    """
    _compile_cache.clear()
    for stat in _compile_cache_stats:
        _compile_cache_stats[stat] = 0


@functools.lru_cache(maxsize=32)
def _entry_indices(n_entries: int) -> np.ndarray:
    """Read-only ``arange(n_entries)`` shared by every
    :meth:`CompiledBlock.apply` gather (one allocation per table size
    instead of two per application)."""
    indices = np.arange(n_entries, dtype=np.int64)
    indices.setflags(write=False)
    return indices


def compile_cache_info() -> Dict[str, int]:
    """Hit/miss/size statistics of the compiled-block cache.

    ``hits`` stays the historical total for existing callers;
    ``memory_hits`` / ``disk_hits`` attribute each one to the tier that
    served it (disk hits only occur with a :mod:`repro.store` default
    store configured).
    """
    return {
        "hits": (
            _compile_cache_stats["memory_hits"]
            + _compile_cache_stats["disk_hits"]
        ),
        "memory_hits": _compile_cache_stats["memory_hits"],
        "disk_hits": _compile_cache_stats["disk_hits"],
        "misses": _compile_cache_stats["misses"],
        "size": len(_compile_cache),
        "maxsize": COMPILE_CACHE_MAXSIZE,
    }


def _record_compile_lookup(tier: str) -> None:
    """Mirror a compile-cache lookup onto the metrics registry."""
    tracer = obs.TRACER
    if tracer is not None and tracer.metrics is not None:
        tracer.metrics.counter(
            "repro_compile_cache_total",
            "compiled-block cache lookups by serving tier",
            labels=("tier",),
        ).inc(tier=tier)
    _compile_cache_stats[
        "misses" if tier == "miss" else f"{tier}_hits"
    ] += 1


def _store_key(block_fingerprint: str, core, key, partition) -> str:
    """Persistent-store key for one compiled block.

    Built from explicitly stable parts — ``repr(core.config)`` would
    embed the ``fsm_factory`` function object's memory address, so the
    geometry fields and the FSM *spec* (value-stable repr) stand in for
    the config.  Two processes compiling the same block against the same
    preset therefore derive the same key.
    """
    from repro import store as repro_store

    config = core.config
    return repro_store.store_key(
        "compiled_block",
        # Index-semantics schema: bumped when the gshare index function
        # itself changes meaning (v2 = folded long history), so a store
        # populated before the change can never serve a stale gshare_map.
        schema="gshare-index-v2",
        block=block_fingerprint,
        config=(
            config.name,
            config.bimodal_entries,
            config.gshare_entries,
            config.ghr_bits,
            config.selector_entries,
            config.selector_initial,
            config.bit_sets,
            config.btb_sets,
            config.selector_bits,
            repr(config.fsm),
            repr(config.initial_state),
            config.index_hash,
        ),
        key=key,
        partition=repr(partition),
        timing=repr(core.timing),
        backend=kernels.active_backend(),
    )


@dataclass(frozen=True)
class RandomizationBlock:
    """An immutable, reproducible block of randomised branches."""

    #: Seed that generated this block (the attacker's "block identity"
    #: during the §6.2 calibration search).
    seed: int
    #: Virtual addresses of the branch instructions, in program order.
    addresses: np.ndarray
    #: Branch directions, in program order (True = taken).
    outcomes: np.ndarray

    @staticmethod
    def generate(
        seed: int,
        n_branches: int = PAPER_BLOCK_BRANCHES,
        base_address: int = DEFAULT_BLOCK_BASE,
    ) -> "RandomizationBlock":
        """Generate a block per Listing 1.

        Each ``je``/``jne`` is two bytes; a NOP is inserted (or not)
        between consecutive branches at random, so the address step is 2
        or 3 bytes ("randomizing memory locations of these instructions
        by either placing or not placing a NOP instruction between
        them").  Directions are uniform random with no inter-branch
        dependencies.
        """
        if n_branches <= 0:
            raise ValueError("block needs at least one branch")
        rng = np.random.default_rng(seed)
        steps = rng.integers(2, 4, size=n_branches)
        steps[0] = 0
        addresses = base_address + np.cumsum(steps)
        outcomes = rng.integers(0, 2, size=n_branches).astype(bool)
        return RandomizationBlock(
            seed=seed, addresses=addresses, outcomes=outcomes
        )

    def __len__(self) -> int:
        return len(self.addresses)

    def fingerprint(self) -> str:
        """Content hash of the block (cached); the compile-cache identity.

        Covers addresses and outcomes, so two blocks share compiled
        artifacts only when their effect is genuinely identical —
        ``seed`` alone would not protect directly constructed blocks.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.ascontiguousarray(self.addresses).tobytes())
            digest.update(np.ascontiguousarray(self.outcomes).tobytes())
            cached = f"{self.seed}:{len(self)}:{digest.hexdigest()}"
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- exact path -----------------------------------------------------------

    def execute(
        self, core: PhysicalCore, process: Process
    ) -> List[BranchExecution]:
        """Execute every branch through the full core model (exact, slow)."""
        return [
            core.execute_branch(process, int(address), bool(taken))
            for address, taken in zip(self.addresses, self.outcomes)
        ]

    # -- fast path ------------------------------------------------------------

    def ghr_trajectory(self, ghr_bits: int) -> np.ndarray:
        """GHR value seen by each branch, assuming all-zero initial history.

        ``trajectory[i]`` is the register contents when branch ``i``
        predicts — i.e. the outcomes of branches ``i-ghr_bits .. i-1``
        (the shift register is a sliding window, so the value is a
        weighted sum of the last ``ghr_bits`` outcomes with the most
        recent in the least-significant bit).
        """
        n = len(self.outcomes)
        # Branch i sees outcomes[i-ghr_bits .. i-1]; left-padding with
        # ghr_bits zeros makes every window full-width, so the whole
        # trajectory is one sliding-window matmul against the bit weights
        # (most recent outcome in the least-significant bit).
        padded = np.zeros(n - 1 + ghr_bits, dtype=np.int64)
        if n > 1:
            padded[ghr_bits:] = self.outcomes[:-1]
        windows = np.lib.stride_tricks.sliding_window_view(padded, ghr_bits)
        weights = np.left_shift(
            np.int64(1), np.arange(ghr_bits - 1, -1, -1, dtype=np.int64)
        )
        return windows[:n] @ weights

    def _mapped_indices(
        self,
        key: int,
        partition,
        n_entries: int,
        xor: int = 0,
        index_hash: str = "mod",
    ) -> np.ndarray:
        """Vectorised PHT indices for every block branch."""
        mixed = self.addresses ^ xor ^ key
        if partition is not None:
            return (partition.offset + (mixed % partition.size)).astype(
                np.int64
            )
        return apply_hash(index_hash, mixed, n_entries).astype(np.int64)

    def entry_fold(
        self, core: PhysicalCore, process: Process, address: int
    ) -> np.ndarray:
        """Fast per-entry fold: the transition-map row for one address.

        Element ``i`` of the result is the bimodal entry's final level if
        it entered the block at level ``i``.  Used by the calibration
        search to discard non-pinning candidate blocks without paying for
        a full :meth:`compile`.
        """
        key = core.mitigations.pht_key(process)
        partition = core.mitigations.partition(process)
        predictor = core.predictor
        monoid = predictor.bimodal.pht.fsm.transition_monoid()
        n_entries = predictor.bimodal.pht.n_entries
        target = predictor.bimodal.index(address, key, partition)
        indices = self._mapped_indices(
            key, partition, n_entries, index_hash=predictor.bimodal.index_hash
        )
        ids = monoid.outcome_id_sequence(self.outcomes[indices == target])
        return monoid.maps[monoid.reduce(ids)].copy()

    def compile(self, core: PhysicalCore, process: Process) -> "CompiledBlock":
        """Precompute this block's effect on ``core`` for ``process``.

        The result is bound to the core's geometry and the process's
        mitigation view (index key / partition); see the module docstring
        for what is exact and what is approximate.

        Results are memoised in a process-wide LRU cache keyed on
        ``(block fingerprint, core config, key, partition, timing
        model, kernel backend)`` — everything the compiled artifact
        depends on — so the §6.2 calibration search and the
        covert-channel benches stop recompiling identical blocks.
        Backends are bit-identical, but keying on the active one keeps a
        ``set_backend`` switch mid-process honest: a cached artifact is
        always attributable to the backend that built it, which is what
        the per-backend differential suite pins.  Cached
        :class:`CompiledBlock` instances are immutable and safe to share
        across cores of the same configuration.
        """
        key = core.mitigations.pht_key(process)
        partition = core.mitigations.partition(process)
        cache_key = (
            self.fingerprint(),
            core.config,
            key,
            partition,
            core.timing,
            kernels.active_backend(),
        )
        cached = _compile_cache.get(cache_key)
        if cached is not None:
            _compile_cache.move_to_end(cache_key)
            _record_compile_lookup("memory")
            return cached

        # Memory miss: consult the persistent tier when one is
        # configured (repro.store default store).  The store's own
        # memory tier is bypassed — the LRU above *is* the memory tier
        # for compiled blocks.
        from repro import store as repro_store

        store = repro_store.get_store()
        disk_key = None
        if store is not None:
            disk_key = _store_key(self.fingerprint(), core, key, partition)
            found, value = store.get(disk_key, memory=False)
            if found and isinstance(value, CompiledBlock):
                _record_compile_lookup("disk")
                _compile_cache[cache_key] = value
                while len(_compile_cache) > COMPILE_CACHE_MAXSIZE:
                    _compile_cache.popitem(last=False)
                return value
        _record_compile_lookup("miss")

        predictor = core.predictor
        monoid = predictor.bimodal.pht.fsm.transition_monoid()

        bimodal_indices = self._mapped_indices(
            key,
            partition,
            predictor.bimodal.pht.n_entries,
            index_hash=predictor.bimodal.index_hash,
        )
        bimodal_map = monoid.fold_table(
            bimodal_indices, self.outcomes, predictor.bimodal.pht.n_entries
        )

        ghr_bits = predictor.ghr.length
        gshare_n = predictor.gshare.pht.n_entries
        # Long history folds down to index width before mixing — must
        # match the scalar predictor's gshare.index() bit for bit.
        trajectory = fold_history(
            self.ghr_trajectory(ghr_bits), ghr_bits, gshare_n
        )
        mixed = self.addresses ^ trajectory ^ key
        if partition is None:
            gshare_indices = apply_hash(
                predictor.gshare.index_hash, mixed, gshare_n
            ).astype(np.int64)
        else:
            gshare_indices = (
                partition.offset + (mixed % partition.size)
            ).astype(np.int64)
        gshare_map = monoid.fold_table(gshare_indices, self.outcomes, gshare_n)

        # Final GHR = the block's last ghr_bits outcomes (newest in the
        # LSB); at most ghr_bits bits enter, so no mask is needed.
        tail = self.outcomes[-ghr_bits:].astype(np.int64)
        final_ghr = int(
            tail
            @ np.left_shift(
                np.int64(1), np.arange(len(tail) - 1, -1, -1, dtype=np.int64)
            )
        )

        selector = predictor.selector
        selector_touched = np.unique(self.addresses % selector.n_entries)

        bit_table = predictor.bit
        bit_sets = (self.addresses % bit_table.n_sets).astype(np.int64)
        bit_tags = (
            (self.addresses // bit_table.n_sets) & bit_table._tag_mask
        ).astype(np.int64)

        # Deterministic cost estimate: every block branch fetches cold
        # and ~half mispredict (random outcomes vs. randomised PHT).
        timing = core.timing
        per_branch = (
            timing.base_latency
            + timing.cold_penalty
            + 0.5 * timing.miss_penalty
            + 0.5 * timing.taken_extra
        )
        n = len(self)
        for arr in (bimodal_map, gshare_map, selector_touched, bit_sets, bit_tags):
            arr.setflags(write=False)
        compiled = CompiledBlock(
            block=self,
            config_name=core.config.name,
            key=key,
            partition=partition,
            bimodal_map=bimodal_map,
            gshare_map=gshare_map,
            selector_touched=selector_touched,
            bit_sets=bit_sets,
            bit_tags=bit_tags,
            ghr_end=final_ghr,
            cycles=int(n * per_branch),
            mispredictions=n // 2,
        )
        _compile_cache[cache_key] = compiled
        while len(_compile_cache) > COMPILE_CACHE_MAXSIZE:
            _compile_cache.popitem(last=False)
        if store is not None and disk_key is not None:
            store.put(disk_key, compiled, memory=False)
        return compiled

    def fold_map_reference(
        self,
        indices: np.ndarray,
        n_entries: int,
        n_levels: int,
        step_table: np.ndarray,
    ) -> np.ndarray:
        """Fold the block into ``map[entry, initial] -> final`` levels.

        Reference implementation: steps the FSM once per branch in
        program order, exactly as the hardware would.  The production
        fold is :meth:`repro.bpu.fsm.TransitionMonoid.fold_table`; the
        differential tests in ``tests/test_fold_vectorized.py`` assert
        entry-for-entry equality between the two.
        """
        fold = np.tile(
            np.arange(n_levels, dtype=step_table.dtype), (n_entries, 1)
        )
        outcomes = self.outcomes.astype(np.int64)
        for idx, out in zip(indices, outcomes):
            fold[idx, :] = step_table[out, fold[idx, :]]
        return fold


@dataclass(frozen=True)
class CompiledBlock:
    """A block's precomputed effect, bound to one core geometry."""

    block: RandomizationBlock
    config_name: str
    key: int
    partition: Optional[object]
    bimodal_map: np.ndarray
    gshare_map: np.ndarray
    selector_touched: np.ndarray
    bit_sets: np.ndarray
    bit_tags: np.ndarray
    ghr_end: int
    cycles: int
    mispredictions: int

    def apply(self, core: PhysicalCore, process: Process) -> None:
        """Apply the block's effect to ``core`` as if ``process`` ran it."""
        if core.config.name != self.config_name:
            raise ValueError(
                "compiled block bound to config "
                f"{self.config_name!r}, core is {core.config.name!r}"
            )
        predictor = core.predictor
        bimodal = predictor.bimodal.pht
        gshare = predictor.gshare.pht
        bimodal.levels = self.bimodal_map[
            _entry_indices(bimodal.n_entries), bimodal.levels
        ]
        gshare.levels = self.gshare_map[
            _entry_indices(gshare.n_entries), gshare.levels
        ]
        selector = predictor.selector
        selector.record_touch(self.selector_touched)
        selector.counters[self.selector_touched] = selector._initial
        bit_table = predictor.bit
        bit_table.record_touch(self.bit_sets)
        bit_table.valid[self.bit_sets] = True
        bit_table.tags[self.bit_sets] = self.bit_tags
        predictor.ghr.restore(self.ghr_end)
        core.clock.advance(self.cycles)
        counters = core.counters_for(process)
        counters.increment(CounterKind.BRANCHES, len(self.block))
        counters.increment(CounterKind.BRANCH_MISSES, self.mispredictions)
        counters.increment(CounterKind.CYCLES, self.cycles)

    def target_entry_map(
        self, core: PhysicalCore, address: int
    ) -> np.ndarray:
        """Transition-map row for the bimodal entry ``address`` maps to.

        Introspection helper for tests/calibration diagnostics: element
        ``i`` gives the final level if the entry started at level ``i``.
        A constant row means the block *pins* the entry — its post-block
        state is independent of history, the property the §6.2
        calibration search selects for.
        """
        index = core.predictor.bimodal.index(address, self.key, self.partition)
        return self.bimodal_map[index].copy()

    def pins_entry(self, core: PhysicalCore, address: int) -> bool:
        """Whether the block pins the bimodal entry behind ``address``."""
        row = self.target_entry_map(core, address)
        return bool((row == row[0]).all())
