"""The paper's contribution: the BranchScope attack.

Built entirely on attacker-legal operations against the substrate —
executing branches of the spy process, reading the spy's own performance
counters or timestamps, and (re)running victim triggers — exactly the
capabilities of the paper's threat model (§3).

Modules map to the paper's structure:

* :mod:`repro.core.patterns` — probe outcome patterns and the Table 1
  state dictionary (§6.1).
* :mod:`repro.core.randomizer` — the PHT randomisation block (Listing 1,
  §5.2) that forces the 1-level predictor and primes the PHT.
* :mod:`repro.core.prime_probe` — stage 1/3 primitives (§4, §6).
* :mod:`repro.core.calibration` — the pre-attack search for a block that
  leaves the target entry in a desired stable state (§6.2, Figure 4).
* :mod:`repro.core.covert` — the covert channel (§7, Listings 2-3,
  Figure 6, Tables 2-3).
* :mod:`repro.core.timing_detect` — counter-free detection via the
  timestamp counter (§8, Figures 7-9).
* :mod:`repro.core.pht_map` — PHT reverse engineering (§6.3, Figure 5).
* :mod:`repro.core.attack` — the high-level side-channel facade.
* :mod:`repro.core.aslr_attack` — ASLR derandomisation (§9.2).
"""

from repro.core.attack import BranchScope, SpiedBit
from repro.core.batch_probe import (
    batch_decode_states,
    batch_probe_signatures,
    batch_scan_supported,
)
from repro.core.btb_attacks import (
    btb_direction_spy,
    btb_locate_branch,
    calibrate_btb_threshold,
)
from repro.core.calibration import (
    BlockAssessment,
    CalibrationError,
    TrialPlan,
    assess_block,
    assess_block_batch,
    draw_trial_plan,
    find_block,
    stability_experiment,
)
from repro.core.covert import CovertChannel, CovertConfig, build_dictionary
from repro.core.covert_smt import SMTCovertChannel
from repro.core.multi import BranchPlan, MultiBranchScope
from repro.core.patterns import (
    DecodedState,
    ProbeResult,
    decode_state,
    expected_probe_pattern,
)
from repro.core.pht_map import (
    estimate_pht_size,
    hamming_ratio_curve,
    scan_states,
    scan_states_reference,
)
from repro.core.poisoning import poison_branch, poisoning_experiment
from repro.core.prime_probe import prime_direct, prime_sequence_for, probe_pair
from repro.core.randomizer import CompiledBlock, RandomizationBlock
from repro.core.support import (
    batch_assess_fallback_reason,
    batch_assess_supported,
    batch_scan_fallback_reason,
    manycore_fallback_reason,
)
from repro.core.timing_detect import (
    TimingCalibration,
    latency_experiment,
    probe_state_latencies,
    timing_error_rate,
)

__all__ = [
    "BlockAssessment",
    "BranchPlan",
    "BranchScope",
    "MultiBranchScope",
    "CalibrationError",
    "CompiledBlock",
    "CovertChannel",
    "CovertConfig",
    "DecodedState",
    "ProbeResult",
    "RandomizationBlock",
    "SMTCovertChannel",
    "SpiedBit",
    "TimingCalibration",
    "TrialPlan",
    "assess_block",
    "assess_block_batch",
    "batch_assess_fallback_reason",
    "batch_assess_supported",
    "batch_decode_states",
    "batch_probe_signatures",
    "batch_scan_fallback_reason",
    "batch_scan_supported",
    "manycore_fallback_reason",
    "btb_direction_spy",
    "btb_locate_branch",
    "build_dictionary",
    "calibrate_btb_threshold",
    "decode_state",
    "draw_trial_plan",
    "estimate_pht_size",
    "expected_probe_pattern",
    "find_block",
    "hamming_ratio_curve",
    "latency_experiment",
    "poison_branch",
    "poisoning_experiment",
    "prime_direct",
    "prime_sequence_for",
    "probe_pair",
    "probe_state_latencies",
    "scan_states",
    "scan_states_reference",
    "stability_experiment",
    "timing_error_rate",
]
