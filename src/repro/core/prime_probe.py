"""Prime and probe primitives (paper §4 stages 1 and 3, §6).

* *Prime*: put the target PHT entry into a chosen state by executing the
  spy's colliding branch with chosen outcomes (three same-direction
  executions saturate a strong state; one more opposite execution reaches
  a weak state).  In the full attack the randomisation block does the
  priming; :func:`prime_direct` is the in-process variant used by the
  Table 1 experiment.
* *Probe*: execute the colliding branch twice with chosen outcomes,
  bracketing each execution with reads of the spy's own
  branch-misprediction counter — Listing 3's ``spy_function`` — and
  report the H/M pattern.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.bpu.fsm import FSMSpec, State
from repro.core.patterns import DecodedState, ProbeResult, decode_state
from repro.cpu.core import PhysicalCore
from repro.cpu.counters import CounterKind
from repro.cpu.process import Process

__all__ = [
    "prime_sequence_for",
    "prime_direct",
    "probe_pair",
    "probe_timed",
    "read_entry_state",
]


def prime_sequence_for(fsm: FSMSpec, state: State) -> Tuple[bool, ...]:
    """Branch outcomes that drive any FSM level to ``state``.

    Three same-direction executions saturate a 2-bit counter from any
    starting level (the paper primes with ``TTT``/``NNN``); weak states
    take one additional opposite-direction execution.  For the Skylake
    FSM the weak-taken state reached this way is the canonical (lower)
    one.
    """
    if state is State.ST:
        return (True,) * fsm.n_levels
    if state is State.SN:
        return (False,) * fsm.n_levels
    if state is State.WN:
        return (False,) * fsm.n_levels + (True,)
    # State.WT — saturate not-taken then take twice: SN -> WN -> WT.
    return (False,) * fsm.n_levels + (True, True)


def prime_direct(
    core: PhysicalCore,
    process: Process,
    address: int,
    state: State,
) -> List[bool]:
    """Stage 1, in-process variant: prime via the branch itself.

    Executes the branch at ``address`` with the outcome sequence from
    :func:`prime_sequence_for`; returns the per-execution hit flags (the
    Table 1 experiment records these too).
    """
    fsm = core.predictor.bimodal.pht.fsm
    outcomes = prime_sequence_for(fsm, state)
    return [
        core.execute_branch(process, address, taken).hit for taken in outcomes
    ]


def probe_pair(
    core: PhysicalCore,
    process: Process,
    address: int,
    outcomes: Sequence[bool] = (True, True),
) -> ProbeResult:
    """Stage 3: two probing branches, misprediction counter around each.

    This is Listing 3's ``spy_function``: for each probe branch, read the
    spy's branch-misprediction counter, execute the branch with the
    chosen outcome, read the counter again, and classify the execution
    as M (counter advanced) or H.  Counter reads go through
    :meth:`PhysicalCore.read_counter`, so noisy-counter mitigations
    corrupt exactly this observation.
    """
    if len(outcomes) != 2:
        raise ValueError("a probe is exactly two branch executions")
    hits = []
    for taken in outcomes:
        before = core.read_counter(process, CounterKind.BRANCH_MISSES)
        core.execute_branch(process, address, taken)
        after = core.read_counter(process, CounterKind.BRANCH_MISSES)
        hits.append(after - before <= 0)
    return ProbeResult(first_hit=hits[0], second_hit=hits[1])


def probe_timed(
    core: PhysicalCore,
    process: Process,
    address: int,
    outcomes: Sequence[bool] = (True, True),
) -> Tuple[int, int]:
    """Stage 3 without counters: rdtscp-timed probe (paper §8).

    Returns the observable latencies of the two probe executions; the
    caller classifies them against a timing calibration
    (:mod:`repro.core.timing_detect`).
    """
    if len(outcomes) != 2:
        raise ValueError("a probe is exactly two branch executions")
    latencies = [
        core.execute_branch(process, address, taken).latency
        for taken in outcomes
    ]
    return latencies[0], latencies[1]


def read_entry_state(
    core: PhysicalCore,
    process: Process,
    address: int,
    prepare: Callable[[], None],
) -> DecodedState:
    """Measure a PHT entry's state via the two-variant probe dictionary.

    ``prepare`` must recreate the state under measurement (e.g. re-apply
    a randomisation block); it is invoked once before each probe variant
    because probing is destructive.  Microarchitectural state is
    checkpointed/restored around the whole measurement so the caller's
    context is undisturbed.
    """
    fsm = core.predictor.bimodal.pht.fsm
    checkpoint = core.checkpoint()
    prepare()
    tt = probe_pair(core, process, address, (True, True)).pattern
    core.restore(checkpoint)
    prepare()
    nn = probe_pair(core, process, address, (False, False)).pattern
    core.restore(checkpoint)
    return decode_state(fsm, tt, nn)
