"""Covert channel across hyperthreads (paper §1).

"We show that BranchScope can be performed across hyperthreaded cores,
advancing previously demonstrated BTB-based attacks which leaked
information only between processes scheduled on the same virtual core.
This capability relaxes the attacker's process scheduling constraints."

Running on the *sibling hardware thread* means the victim is not
descheduled while the spy primes and probes: victim branch executions
interleave with the spy's own instructions at fine grain, including in
the middle of a probe.  Two properties keep the channel alive:

* the working point is *absorbing* for repeated victim executions — from
  an SN prime, any number of taken victim branches leaves the entry on
  the taken side, and any number of not-taken ones leaves it in SN, so
  the spy does not need exactly-one victim execution per sample;
* the sender dwells on each bit for many executions and the spy majority-
  votes several prime/probe samples per bit, absorbing the samples that
  an inopportune interleaving corrupts.

:class:`SMTCovertChannel` implements that protocol over a probabilistic
instruction-interleaving model: between any two spy operations, the
free-running victim executes a geometrically distributed number of
branch instances of the current bit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bpu.fsm import State
from repro.core.calibration import find_block
from repro.core.covert import build_dictionary
from repro.core.patterns import DecodedState
from repro.core.prime_probe import probe_pair
from repro.core.randomizer import CompiledBlock
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.system.noise import NoiseModel, inject_noise

__all__ = ["SMTCovertChannel"]


@dataclass(frozen=True)
class SMTConfig:
    """Hyperthreaded-channel parameters."""

    #: Mean number of victim branch executions slipping in between two
    #: spy operations (the SMT interleaving rate).
    victim_rate: float = 0.8
    #: Prime/probe samples taken (and majority-voted) per transmitted bit.
    samples_per_bit: int = 5
    #: Expected victim executions the spy waits for between prime and
    #: probe.  At low interleave rates the spy dwells longer (idles more
    #: instruction slots) so the victim's branch almost surely fires at
    #: least once per sample; without this, a slow sender reads as a
    #: stream of not-taken.
    min_expected_victim_ops: float = 3.0
    #: Working point: prime state and probe outcomes.  SN/TT is
    #: absorbing in both directions, see module docstring.
    prime_state: State = State.SN
    probe_outcomes: tuple = (True, True)


class SMTCovertChannel:
    """Covert channel with a free-running sender on the sibling thread."""

    def __init__(
        self,
        core: PhysicalCore,
        spy: Process,
        victim: Process,
        branch_address: int,
        compiled_block: CompiledBlock,
        *,
        config: Optional[SMTConfig] = None,
        noise: Optional[NoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.core = core
        self.spy = spy
        self.victim = victim
        self.branch_address = int(branch_address)
        self.block = compiled_block
        self.config = config or SMTConfig()
        self.noise = noise if noise is not None else NoiseModel.isolated()
        self.rng = rng if rng is not None else core.rng
        fsm = core.predictor.bimodal.pht.fsm
        self.dictionary = build_dictionary(
            fsm, self.config.prime_state, self.config.probe_outcomes
        )
        self._current_bit: Optional[int] = None

    @classmethod
    def establish(
        cls,
        core: PhysicalCore,
        victim: Process,
        spy: Process,
        branch_link_address: int = 0x30_0006D,
        **kwargs,
    ) -> "SMTCovertChannel":
        """Calibrate a block and build the channel (cf. §6.2)."""
        config = kwargs.get("config") or SMTConfig()
        address = victim.branch_address(branch_link_address)
        compiled = find_block(
            core,
            spy,
            address,
            DecodedState(config.prime_state.name),
        )
        return cls(core, spy, victim, address, compiled, **kwargs)

    # -- SMT interleaving ------------------------------------------------------

    def _victim_interleave(self) -> None:
        """Victim executions slipping in between two spy operations."""
        if self._current_bit is None:
            return
        taken = self._current_bit == 1
        count = self.rng.poisson(self.config.victim_rate)
        for _ in range(count):
            self.core.execute_branch(self.victim, self.branch_address, taken)

    def _sample_bit(self) -> int:
        """One prime → (concurrent victim) → probe sample."""
        self.block.apply(self.core, self.spy)
        # Dwell: idle enough spy instruction slots that the free-running
        # victim executes ~min_expected_victim_ops branches.
        slots = max(
            1,
            int(np.ceil(
                self.config.min_expected_victim_ops
                / max(self.config.victim_rate, 1e-9)
            )),
        )
        for _ in range(slots):
            self._victim_interleave()
        inject_noise(
            self.core, self.noise.gap_branches(self.rng) // 4, self.rng
        )
        self._victim_interleave()
        # The probe's two branches with victim activity in between.
        first, second = self.config.probe_outcomes
        from repro.cpu.counters import CounterKind

        hits = []
        for outcome in (first, second):
            before = self.core.read_counter(
                self.spy, CounterKind.BRANCH_MISSES
            )
            self.core.execute_branch(self.spy, self.branch_address, outcome)
            after = self.core.read_counter(
                self.spy, CounterKind.BRANCH_MISSES
            )
            hits.append(after - before <= 0)
            self._victim_interleave()
        pattern = ("H" if hits[0] else "M") + ("H" if hits[1] else "M")
        return self.dictionary[pattern]

    # -- transmission -----------------------------------------------------------

    def transmit_bit(self, bit: int) -> int:
        """Send one bit: sender dwells on it while the spy samples."""
        self._current_bit = int(bit)
        votes = Counter(
            self._sample_bit() for _ in range(self.config.samples_per_bit)
        )
        self._current_bit = None
        return votes.most_common(1)[0][0]

    def transmit(self, bits: Sequence[int]) -> List[int]:
        """Send a bit sequence; returns the received sequence."""
        return [self.transmit_bit(int(b)) for b in bits]
