"""Vectorised engine behind :func:`~repro.core.calibration.assess_block_batch`.

The scalar :func:`~repro.core.calibration.assess_block` spends its time
in ``execute_branch`` — a full predict/train pipeline per scramble and
probe branch, plus a whole-table block application and noise injection
per repetition — even though every branch it executes sits at the *same*
address.  All 2R repetitions therefore touch a tiny, statically-known
slice of predictor state: one bimodal entry per live index key, a
handful of gshare entries (the GHR walks a short deterministic
trajectory each repetition), one selector entry and one identification
set.  This engine exploits that: instead of simulating the core it
*replays* the scalar engine's externally-visible effects and evolves
only the tracked entries.

Three phases:

1. **Observation assembly** — one of three front-ends produces the same
   flat description of all repetitions (per-slot static flags, branch
   outcomes, PHT indices, and the bulk noise stream):

   * *Stream replay* (default, ``plan=None``): a per-repetition Python
     loop draws scramble outcomes, noise gaps and noise contents from
     the observation generator in the scalar's exact call order, makes
     the scalar's mitigation hook calls (``suppresses_prediction``,
     ``pht_key``, ``partition``, ``perturb_timing``) so stateful
     mitigations (rekeying) evolve identically, and replays the timing
     model's draws on the core RNG.  The latter is possible because
     :meth:`~repro.cpu.timing.TimingModel.sample`'s *draw pattern*
     depends only on the cold-fetch flag and its own outlier uniform —
     never on the prediction — so the loop can consume the identical
     core-RNG stream without knowing hit/miss.  This makes the engine a
     true drop-in: after a call, every generator sits exactly where the
     scalar engine would have left it.
   * *Plan, mitigated*: the same loop minus every generator draw —
     randomness comes from the pre-drawn
     :class:`~repro.core.calibration.TrialPlan`, hooks are still called
     live.
   * *Plan, unmitigated*: no loop at all.  The GHR trajectory after each
     block application is independent of the pre-scramble history (the
     block pins it to ``ghr_end``, noise overwrites it), so every PHT
     index of every repetition is a closed-form numpy expression of the
     plan.  This is the >=10x trial fast path.

2. **Tracked-entry table evolution**: for each PHT, the entries the
   probes and scrambles actually read evolve lazily.  Every read and
   noise hit happens at a statically known time, so each becomes a
   *node* whose transition (binary-lifted map powers composed with its
   FSM step) is a precomputed lookup row; per-entry chains collapse
   under a segmented parallel-prefix scan with no Python loop.  Work is
   proportional to reads plus observable noise hits, not
   ``repetitions x tracked-entries``.

3. **Prediction chain** (per repetition, Python scalars): evolve the one
   selector counter and identification-table set the target address
   maps to — scramble updates, the block's reset/overwrite, noise drift
   and eviction, probe updates — and combine them with the phase-2
   entry levels into per-probe predictions, hit/miss patterns and the
   final :class:`~repro.core.calibration.BlockAssessment`.

Because the engine never writes any core state, its end state equals the
scalar engine's post-``restore`` state by construction; in replay mode
the streams and hook calls are replayed so the *rest* of the scalar's
footprint matches too.  ``tests/test_calibration_batch.py`` pins
assessment, core-state and stream-position equality across presets and
mitigation stacks, and plan-mode assessment equality against the scalar
plan engine.

Exactness boundary (enforced by the caller's predicate): mitigations
overriding ``perturb_counter`` or ``update_outcome`` make the
observation itself stochastic and always fall back to the scalar
engine.  In replay mode a :class:`TimingModel` *subclass* could change
the draw pattern and falls back too; plan mode replays no timing draws,
so custom timing models are fine there.  ``perturb_timing`` overrides
are safe either way: every shipped implementation draws a fixed pattern
independent of the latency argument.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

import numpy as np

from repro import kernels
from repro.bpu.hashes import fold_history
from repro.core.calibration import BlockAssessment, TrialPlan, _dominant_counts
from repro.core.randomizer import CompiledBlock
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.obs import trace as obs
from repro.system.noise import NoiseDraw, NoiseModel, draw_noise

__all__ = ["batch_assess"]


def _read_levels(
    initial_levels: np.ndarray,
    step_exec: np.ndarray,
    step_noise: np.ndarray,
    transition_map: np.ndarray,
    idx: np.ndarray,
    executed: np.ndarray,
    outcomes: np.ndarray,
    noise_idx: np.ndarray,
    noise_out: np.ndarray,
    noise_epoch: np.ndarray,
    d: int,
) -> List[List[int]]:
    """Phase 2: read-before-write levels of every executed branch.

    Entries evolve lazily.  An entry's timeline is measured in *applied
    block maps*: a scramble branch of repetition ``r`` reads at time
    ``r``, the block map of repetition ``r`` ticks time to ``r + 1``,
    and that repetition's noise steps and probe branches sit at
    ``r + 1`` (noise before probes).  Between two reads of the same
    entry only whole maps and its own noise hits occur, and all those
    times are static — so each read/hit *node* compiles to a level
    lookup row (binary-lifted map powers composed with its FSM step),
    the per-entry chains collapse under a segmented parallel-prefix
    scan, and the read values fall out of two gathers.  No Python-level
    loop over nodes remains.
    """
    R2, n_slots = idx.shape
    if not executed.any():
        row = [0] * n_slots
        return [row] * R2

    tracked = np.unique(idx[executed])
    n_tracked = len(tracked)
    pos_table = np.full(transition_map.shape[0], -1, dtype=np.int64)
    pos_table[tracked] = np.arange(n_tracked)
    positions = pos_table[idx]

    # Read nodes, in chronological (row-major) order.
    exec_flat = executed.ravel()
    slot_flat = np.nonzero(exec_flat)[0]
    read_pos = positions.ravel()[slot_flat]
    read_r = slot_flat // n_slots
    read_time = read_r + ((slot_flat - read_r * n_slots) >= d)
    read_out = outcomes.ravel()[slot_flat].astype(np.int64)
    n_reads = len(slot_flat)

    # Noise-hit nodes on tracked entries, pruned to each entry's last
    # read — a later hit can never be observed, and for a well-mixed
    # noise stream the pruning halves the event volume.
    last_read = np.zeros(n_tracked, dtype=np.int64)
    np.maximum.at(last_read, read_pos, read_time)
    if len(noise_idx):
        npos = pos_table[noise_idx]
        hit = npos >= 0
        hit_pos = npos[hit]
        hit_time = noise_epoch[hit] + 1
        observable = hit_time <= last_read[hit_pos]
        hit_pos = hit_pos[observable]
        hit_time = hit_time[observable]
        hit_out = noise_out[hit][observable].astype(np.int64)
    else:
        hit_pos = hit_time = hit_out = np.empty(0, dtype=np.int64)
    n_hits = len(hit_pos)

    # One node per read or hit, ordered per entry by (time, hits-first,
    # stream order).  Hits at time t sit between the block map that
    # ticked t and any probe read at t, hence before same-time reads.
    node_p = np.concatenate([read_pos, hit_pos])
    node_t = np.concatenate([read_time, hit_time])
    node_read = np.concatenate(
        [np.ones(n_reads, dtype=np.int64), np.zeros(n_hits, dtype=np.int64)]
    )
    node_out = np.concatenate([read_out, hit_out])
    node_seq = np.concatenate([np.arange(n_reads), np.arange(n_hits)])
    node_slot = np.concatenate([slot_flat, np.zeros(n_hits, dtype=np.int64)])
    order = np.lexsort((node_seq, node_read, node_t, node_p))
    p_sorted = node_p[order]
    t_sorted = node_t[order]

    # Every node's map-jump distance from the previous node of the same
    # entry is static, so each node compiles to a jump row (identity
    # when no map ticked); the lifting, the per-node transfer (jump
    # followed by the node's own FSM step — noise nudge or
    # read-then-execute update) and the segmented prefix scan all live
    # in :func:`repro.kernels.read_levels_maps` (binary lifting +
    # Hillis-Steele on the numpy backend, one sequential walk per entry
    # segment on the compiled ones — identical level chains either way).
    n_nodes = len(order)
    first = np.ones(n_nodes, dtype=bool)
    first[1:] = p_sorted[1:] != p_sorted[:-1]
    prev_t = np.empty_like(t_sorted)
    prev_t[0] = 0
    prev_t[1:] = t_sorted[:-1]
    prev_t[first] = 0
    remaining = t_sorted - prev_t
    n_levels = transition_map.shape[1]
    is_read = node_read[order]
    node_sel = node_out[order] + 2 * is_read
    out_slot = np.where(is_read.astype(bool), node_slot[order], -1)
    step4 = np.ascontiguousarray(
        np.concatenate([step_noise, step_exec]).astype(np.int64)
    )
    v0 = initial_levels[tracked].astype(np.int64)[p_sorted]
    read_flat = kernels.read_levels_maps(
        np.ascontiguousarray(transition_map[tracked].astype(np.int64)),
        p_sorted,
        remaining,
        node_sel,
        first,
        v0,
        out_slot,
        step4.ravel(),
        n_levels,
        R2 * n_slots,
    )
    return read_flat.reshape(R2, n_slots).tolist()


def batch_assess(
    core: PhysicalCore,
    spy: Process,
    compiled: CompiledBlock,
    target_address: int,
    *,
    repetitions: int = 100,
    noise: Optional[NoiseModel] = None,
    rng: Optional[np.random.Generator] = None,
    plan: Optional[TrialPlan] = None,
) -> BlockAssessment:
    """Vectorised-engine implementation of the block assessment.

    Callers should use :func:`repro.core.calibration.assess_block_batch`,
    which applies the supported-configuration predicate before
    dispatching here.
    """
    if core.config.name != compiled.config_name:
        raise ValueError(
            "compiled block bound to config "
            f"{compiled.config_name!r}, core is {core.config.name!r}"
        )

    predictor = core.predictor
    bimodal = predictor.bimodal.pht
    gshare = predictor.gshare.pht
    fsm_b = bimodal.fsm
    fsm_g = gshare.fsm
    n_b = bimodal.n_entries
    n_g = gshare.n_entries
    d = fsm_b.n_levels
    n_slots = d + 2
    ghr_len = predictor.ghr.length
    ghr_mask = (1 << ghr_len) - 1
    sel = predictor.selector
    bit = predictor.bit
    T = int(target_address)
    R = int(repetitions) if plan is None else plan.repetitions
    R2 = 2 * R

    mitigations = core.mitigations
    hooked = len(mitigations) > 0
    ghr_start = int(predictor.ghr.value)
    ghr_end = int(compiled.ghr_end)

    # -- phase 1: observation assembly --------------------------------------
    if plan is None:
        front_end = "replay"
    elif hooked:
        front_end = "plan_hooked"
    else:
        front_end = "closed_form"
    tracer = obs.TRACER
    if tracer is not None:
        tracer.emit(
            "calibration",
            "batch_engine",
            level="debug",
            front_end=front_end,
            address=T,
            repetitions=R,
        )
    if plan is None or hooked:
        static, outcomes, b_idx, g_idx, offsets, bulk = _stream_loop(
            core, spy, T, R, plan, noise, rng, ghr_end
        )
    else:
        static, outcomes, b_idx, g_idx, offsets, bulk = _closed_form(
            plan, T, R, n_b, n_g, ghr_start, ghr_end, ghr_len
        )

    # Per-repetition aggregates of the bulk noise stream.
    gaps = offsets[1:] - offsets[:-1]
    has_noise = (gaps > 0).tolist()
    total = int(offsets[-1])
    drift_tsel = [0] * R2
    noise_tag: List[Optional[int]] = [None] * R2
    tsel = T % sel.n_entries
    tset = T % bit.n_sets
    ttag = (T // bit.n_sets) & bit._tag_mask
    if total:
        epoch_of = np.repeat(np.arange(R2), gaps)
        on_tsel = bulk.addresses % sel.n_entries == tsel
        if on_tsel.any():
            drift = np.zeros(R2, dtype=np.int64)
            np.add.at(drift, epoch_of[on_tsel], bulk.nudges[on_tsel])
            drift_tsel = drift.tolist()
        on_tset = bulk.addresses % bit.n_sets == tset
        if on_tset.any():
            last = np.full(R2, -1, dtype=np.int64)
            np.maximum.at(last, epoch_of[on_tset], np.nonzero(on_tset)[0])
            for r in np.nonzero(last >= 0)[0].tolist():
                address = int(bulk.addresses[last[r]])
                noise_tag[r] = (address // bit.n_sets) & bit._tag_mask
        noise_epoch = epoch_of
    else:
        noise_epoch = np.empty(0, dtype=np.int64)

    # -- phase 2: tracked-entry table evolution -----------------------------
    executed = ~static
    step_noise = fsm_b.step_table  # noise steps both PHTs with this table
    read_b = _read_levels(
        bimodal.levels,
        fsm_b.step_table,
        step_noise,
        compiled.bimodal_map,
        b_idx,
        executed,
        outcomes,
        bulk.addresses % n_b if total else np.empty(0, dtype=np.int64),
        bulk.outcomes,
        noise_epoch,
        d,
    )
    read_g = _read_levels(
        gshare.levels,
        fsm_g.step_table,
        step_noise,
        compiled.gshare_map,
        g_idx,
        executed,
        outcomes,
        bulk.gshare_indices,
        bulk.outcomes,
        noise_epoch,
        d,
    )

    # -- phase 3: prediction chain ------------------------------------------
    predicts_b = [bool(fsm_b.predicts(lv)) for lv in range(fsm_b.n_levels)]
    predicts_g = [bool(fsm_g.predicts(lv)) for lv in range(fsm_g.n_levels)]
    sel_val = int(sel.counters[tsel])
    sel_initial = sel._initial
    sel_max = sel.max_counter
    sel_threshold = sel.gshare_threshold
    touched = compiled.selector_touched
    tsel_touched = bool((touched == tsel).any()) if len(touched) else False
    bit_valid = bool(bit.valid[tset])
    bit_tag = int(bit.tags[tset])
    covering = np.nonzero(compiled.bit_sets == tset)[0]
    block_tag = int(compiled.bit_tags[covering[-1]]) if len(covering) else None

    static_rows = static.tolist()
    out_rows = outcomes.tolist()
    probe_slots = (d, d + 1)
    patterns: List[str] = []
    for r in range(R2):
        row_static = static_rows[r]
        row_out = out_rows[r]
        row_b = read_b[r]
        row_g = read_g[r]
        for j in range(d):
            if row_static[j]:
                continue
            # The block resets any selector entry it touches, erasing
            # scramble-phase chooser history — skip tracking it then.
            if not tsel_touched:
                if not (bit_valid and bit_tag == ttag):
                    sel_val = sel_initial
                else:
                    taken = bool(row_out[j])
                    bimodal_ok = predicts_b[row_b[j]] == taken
                    gshare_ok = predicts_g[row_g[j]] == taken
                    if bimodal_ok != gshare_ok:
                        sel_val = (
                            min(sel_max, sel_val + 1)
                            if gshare_ok
                            else max(0, sel_val - 1)
                        )
            bit_valid = True
            bit_tag = ttag
        if tsel_touched:
            sel_val = sel_initial
        if block_tag is not None:
            bit_valid = True
            bit_tag = block_tag
        if has_noise[r]:
            # Noise squeezes every selector counter into [0, 3] (see
            # apply_noise_draw), drift or no drift on this entry.
            value = sel_val + drift_tsel[r]
            sel_val = 0 if value < 0 else (3 if value > 3 else value)
            if noise_tag[r] is not None:
                bit_valid = True
                bit_tag = noise_tag[r]
        first = second = "M"
        for slot, j in enumerate(probe_slots):
            taken = bool(row_out[j])
            if row_static[j]:
                # Static suppression predicts not-taken, trains nothing.
                char = "M" if taken else "H"
            else:
                known = bit_valid and bit_tag == ttag
                bimodal_taken = predicts_b[row_b[j]]
                gshare_taken = predicts_g[row_g[j]]
                predicted = (
                    gshare_taken
                    if known and sel_val >= sel_threshold
                    else bimodal_taken
                )
                char = "H" if predicted == taken else "M"
                if not known:
                    sel_val = sel_initial
                else:
                    bimodal_ok = bimodal_taken == taken
                    gshare_ok = gshare_taken == taken
                    if bimodal_ok != gshare_ok:
                        sel_val = (
                            min(sel_max, sel_val + 1)
                            if gshare_ok
                            else max(0, sel_val - 1)
                        )
                bit_valid = True
                bit_tag = ttag
            if slot == 0:
                first = char
            else:
                second = char
        patterns.append(first + second)

    tt_pattern, tt_freq = _dominant_counts(Counter(patterns[:R]), R)
    nn_pattern, nn_freq = _dominant_counts(Counter(patterns[R:]), R)
    return BlockAssessment(
        seed=compiled.block.seed,
        tt_pattern=tt_pattern,
        tt_frequency=tt_freq,
        nn_pattern=nn_pattern,
        nn_frequency=nn_freq,
    )


def _stream_loop(core, spy, T, R, plan, noise, rng, ghr_end):
    """Looping phase-1 front-end: stream replay, or a plan under hooks.

    With ``plan=None`` this draws from ``rng`` in the scalar engine's
    exact call order and replays the timing model's draws on the core
    RNG; with a plan it consumes the plan and draws nothing.  Mitigation
    hooks are called per branch either way.
    """
    predictor = core.predictor
    bimodal = predictor.bimodal.pht
    gshare = predictor.gshare.pht
    fsm_b = bimodal.fsm
    n_b = bimodal.n_entries
    n_g = gshare.n_entries
    d = fsm_b.n_levels
    n_slots = d + 2
    ghr_len = predictor.ghr.length
    ghr_mask = (1 << ghr_len) - 1
    R2 = 2 * R

    replay = plan is None
    if replay:
        rng = rng if rng is not None else core.rng
        noise = noise if noise is not None else NoiseModel.isolated()
        timing = core.timing
        timing_rng = core.rng
        normal = timing_rng.normal
        uniform = timing_rng.random
        exponential = timing_rng.exponential
        cold_sigma = timing.cold_jitter_sigma
        jitter_sigma = timing.jitter_sigma
        outlier_prob = timing.outlier_prob
        outlier_scale = timing.outlier_scale
        # perturb_timing's latency argument never influences a hook's
        # draw pattern (see module docstring), so any representative
        # value keeps the stream aligned.
        latency_stub = int(timing.base_latency)
        warm = core.icache.contains(T)

    mitigations = core.mitigations
    hooked = len(mitigations) > 0
    suppresses = mitigations.suppresses_prediction
    pht_key = mitigations.pht_key
    get_partition = mitigations.partition
    perturb_timing = mitigations.perturb_timing

    ghr_val = int(predictor.ghr.value)
    static = np.zeros((R2, n_slots), dtype=bool)
    outcomes = np.zeros((R2, n_slots), dtype=np.int8)
    b_idx = np.zeros((R2, n_slots), dtype=np.int64)
    g_idx = np.zeros((R2, n_slots), dtype=np.int64)
    draws: List = [None] * R2

    for r in range(R2):
        if replay:
            scramble = rng.integers(0, 2, size=d)
        else:
            scramble = plan.scrambles[r]
        outcomes[r, :d] = scramble
        outcomes[r, d:] = 1 if r < R else 0
        row_static = static[r]
        row_b = b_idx[r]
        row_g = g_idx[r]
        for j in range(n_slots):
            if j == d:
                # Scramble done; the block applies (no draws), then the
                # noise gap draws, then the two probe branches run.
                ghr_val = ghr_end
                if replay:
                    gap = noise.gap_branches(rng)
                    draw = draw_noise(rng, gap, n_g)
                else:
                    draw = plan.noise_draw(r)
                if draw.n > 0:
                    draws[r] = draw
                    value = 0
                    for outcome in draw.outcomes[-ghr_len:].tolist():
                        value = (value << 1) | int(outcome)
                    ghr_val = value
            if hooked and suppresses(spy, T):
                row_static[j] = True
            else:
                if hooked:
                    key = pht_key(spy)
                    partition = get_partition(spy)
                else:
                    key = 0
                    partition = None
                mixed = T ^ key
                ghr_folded = fold_history(ghr_val, ghr_len, n_g)
                if partition is not None:
                    row_b[j] = partition.confine(mixed)
                    row_g[j] = partition.confine(T ^ ghr_folded ^ key)
                else:
                    row_b[j] = mixed % n_b
                    row_g[j] = (T ^ ghr_folded ^ key) % n_g
                ghr_val = ((ghr_val << 1) | int(outcomes[r, j])) & ghr_mask
            if replay:
                cold = not warm
                warm = True
                if cold:
                    normal(0.0, cold_sigma)
                normal(0.0, jitter_sigma)
                if uniform() < outlier_prob:
                    exponential(outlier_scale)
                if hooked:
                    perturb_timing(timing_rng, latency_stub)

    if replay:
        gaps = [draw.n if draw is not None else 0 for draw in draws]
        offsets = np.zeros(R2 + 1, dtype=np.int64)
        np.cumsum(gaps, out=offsets[1:])
        live = [draw for draw in draws if draw is not None]
        if live:
            bulk = NoiseDraw(
                int(offsets[-1]),
                np.concatenate([draw.addresses for draw in live]),
                np.concatenate([draw.outcomes for draw in live]),
                np.concatenate([draw.gshare_indices for draw in live]),
                np.concatenate([draw.nudges for draw in live]),
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            bulk = NoiseDraw(0, empty, np.empty(0, dtype=bool), empty, empty)
    else:
        offsets = plan.offsets
        bulk = plan.bulk
    return static, outcomes, b_idx, g_idx, offsets, bulk


def _closed_form(plan, T, R, n_b, n_g, ghr_start, ghr_end, ghr_len):
    """Loop-free phase-1 front-end for the unmitigated plan path.

    Without mitigations every bimodal index is ``T % n_b`` and the GHR
    value entering each slot is a closed-form function of the plan: the
    block application pins it to ``ghr_end``, the repetition's noise
    tail (if any) overwrites it, the probes shift in their outcomes, and
    the next repetition's scrambles shift in on top — the pre-scramble
    history never survives a repetition boundary.
    """
    R2 = 2 * R
    scrambles = plan.scrambles
    d = scrambles.shape[1]
    n_slots = d + 2
    mask = (1 << ghr_len) - 1

    outcomes = np.zeros((R2, n_slots), dtype=np.int8)
    outcomes[:, :d] = scrambles
    outcomes[:R, d:] = 1
    static = np.zeros((R2, n_slots), dtype=bool)
    b_idx = np.full((R2, n_slots), T % n_b, dtype=np.int64)

    offsets = plan.offsets
    gaps = offsets[1:] - offsets[:-1]
    # GHR after each repetition's noise gap: the gap's outcome tail
    # (folded MSB-first into an integer), or the block's ghr_end when
    # the gap is empty.  Gather each gap's last ``ghr_len`` outcomes as
    # one right-aligned window; short gaps zero their (high-bit) pad
    # columns, matching the fold of just the gap's own outcomes.
    after_noise = np.full(R2, ghr_end, dtype=np.int64)
    total = int(offsets[-1])
    if total:
        out_bulk = plan.bulk.outcomes
        cols = np.arange(ghr_len)
        window_lo = offsets[1:] - np.minimum(gaps, ghr_len)
        gather = (offsets[1:] - ghr_len)[:, None] + cols
        valid = gather >= window_lo[:, None]
        bits = (out_bulk[np.clip(gather, 0, total - 1)] & valid).astype(np.int64)
        tails = bits @ (1 << cols[::-1])
        noisy = gaps > 0
        after_noise[noisy] = tails[noisy]

    # GHR entering each repetition's first scramble slot.
    probe_bits = np.where(np.arange(R2) < R, 3, 0)
    starts = np.empty(R2, dtype=np.int64)
    starts[0] = ghr_start
    starts[1:] = ((after_noise[:-1] << 2) | probe_bits[:-1]) & mask

    # Scramble slots: start shifted left j times with the scramble
    # prefix folded in (masking only at the end is equivalent).
    prefix = np.zeros((R2, d), dtype=np.int64)
    for j in range(1, d):
        prefix[:, j] = (prefix[:, j - 1] << 1) | scrambles[:, j - 1]
    ghr_scramble = ((starts[:, None] << np.arange(d)) | prefix) & mask

    g_idx = np.zeros((R2, n_slots), dtype=np.int64)
    g_idx[:, :d] = (T ^ fold_history(ghr_scramble, ghr_len, n_g)) % n_g
    g_idx[:, d] = (T ^ fold_history(after_noise, ghr_len, n_g)) % n_g
    second = ((after_noise << 1) | outcomes[:, d]) & mask
    g_idx[:, d + 1] = (T ^ fold_history(second, ghr_len, n_g)) % n_g
    return static, outcomes, b_idx, g_idx, offsets, plan.bulk
