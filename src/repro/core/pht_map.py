"""PHT reverse engineering (paper §6.3, Figure 5, Equations 1-4).

Knowing PHT entry states for a *range* of addresses lets the attacker spy
on several victim branches per episode and reverse-engineer the table
itself.  The paper's method:

1. Execute the randomisation code to set the PHTs to a block-specific
   pattern.
2. Place a branch at each virtual address in a range and execute it.
3. Decode the PHT state behind each address with the two-variant probe
   dictionary, producing a state vector ``V`` (Equation 1).
4. Exploit the fact that a modulo index makes the state pattern repeat
   with period equal to the table size: for each window size ``w``,
   split ``V`` into ``w``-sized subvectors (Equation 2) and compute the
   mean pairwise Hamming distance (Equation 3, sampled over random pairs
   for speed, as the paper does with "100 random permutations").  The
   window minimising the distance/size ratio is the PHT size
   (Equation 4); on the paper's machine the minimum lands at
   ``w = 2^14 = 16384`` entries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.batch_probe import (
    batch_decode_states,
    batch_probe_signatures,
    batch_scan_supported,
)
from repro.core.patterns import DecodedState, decode_state
from repro.core.support import batch_scan_fallback_reason
from repro.core.prime_probe import probe_pair
from repro.core.randomizer import CompiledBlock
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.obs import trace as obs

__all__ = [
    "ScanResult",
    "scan_states",
    "scan_states_reference",
    "hamming_ratio_curve",
    "estimate_pht_size",
]


class ScanResult(List[DecodedState]):
    """A scan's state vector, annotated with how it was computed.

    Behaves exactly like the plain list the seed API returned (equality,
    slicing — slices are plain lists — iteration), with two extra
    attributes: ``engine`` (``"batch"`` or ``"reference"``) and
    ``scalar_fallbacks`` — how many times this call routed an intended
    batch scan to the scalar reference (0 or 1; non-zero only when
    ``method="auto"`` hit an unsupported mitigation stack).
    """

    engine: str = "batch"
    scalar_fallbacks: int = 0

    def __init__(self, states, *, engine: str, scalar_fallbacks: int = 0):
        super().__init__(states)
        self.engine = engine
        self.scalar_fallbacks = scalar_fallbacks


def scan_states(
    core: PhysicalCore,
    spy: Process,
    addresses: Sequence[int],
    compiled_block: CompiledBlock,
    *,
    exercise_outcome: Optional[bool] = None,
    method: str = "auto",
) -> List[DecodedState]:
    """Decode the PHT state behind every address in ``addresses``.

    Implements §6.3's scan: apply the randomisation block, optionally
    place-and-execute a branch at every address (the paper's step 2),
    then decode each address's PHT entry with the two-variant probe
    dictionary.

    ``method`` selects the engine: ``"batch"`` computes every address's
    probe signatures at once from the prepared predictor arrays
    (:mod:`repro.core.batch_probe`), ``"reference"`` runs the scalar
    probe/restore loop, and ``"auto"`` (default) uses the batch engine
    whenever it is exact for the installed mitigations
    (:func:`~repro.core.batch_probe.batch_scan_supported`) and falls
    back to the reference otherwise.  The two engines return identical
    state vectors — pinned differentially in
    ``tests/test_batch_probe.py``.

    The returned :class:`ScanResult` is a plain list of states that
    additionally records which engine ran (``.engine``) and whether an
    ``"auto"`` call was forced off the batch engine by a mitigation
    (``.scalar_fallbacks``).
    """
    if method not in ("auto", "batch", "reference"):
        raise ValueError(f"unknown scan method {method!r}")
    supported = batch_scan_supported(core)
    if method == "batch" and not supported:
        raise ValueError(
            "batch scan is not exact for this core "
            f"({batch_scan_fallback_reason(core)}: an installed mitigation's "
            "noisy counters / stochastic FSM, or a non-modulo index hash); "
            "use method='auto'"
        )
    if method == "reference" or not supported:
        fallbacks = 0
        if method == "auto":
            obs.record_scalar_fallback(
                "batch_probe", batch_scan_fallback_reason(core) or "mitigation"
            )
            fallbacks = 1
        return ScanResult(
            scan_states_reference(
                core,
                spy,
                addresses,
                compiled_block,
                exercise_outcome=exercise_outcome,
            ),
            engine="reference",
            scalar_fallbacks=fallbacks,
        )

    checkpoint = core.checkpoint()
    compiled_block.apply(core, spy)
    if exercise_outcome is not None:
        # Kept scalar: the paper's step 2 is a genuine state preparation
        # (its training effects feed the probes), not an observation.
        for address in addresses:
            core.execute_branch(spy, int(address), bool(exercise_outcome))
    fsm = core.predictor.bimodal.pht.fsm
    signatures = batch_probe_signatures(core, spy, addresses)
    core.restore(checkpoint)
    tracer = obs.TRACER
    if tracer is not None:
        tracer.emit(
            "probe",
            "scan",
            cycle=core.clock.now,
            pid=spy.pid,
            addresses=len(addresses),
            engine="batch",
        )
    return ScanResult(batch_decode_states(fsm, *signatures), engine="batch")


def scan_states_reference(
    core: PhysicalCore,
    spy: Process,
    addresses: Sequence[int],
    compiled_block: CompiledBlock,
    *,
    exercise_outcome: Optional[bool] = None,
    full_restore: bool = False,
) -> List[DecodedState]:
    """Scalar §6.3 scan: simulate every probe, restore between them.

    Because probing is destructive, each address's TT and NN probe
    variants run against a restored copy of the prepared state.  This is
    the batch engine's differential reference; ``full_restore=True``
    additionally forces plain full-copy checkpoints, disabling the
    delta-restore fast path (the performance baseline the scan benchmark
    gates against).
    """
    checkpoint = core.checkpoint(full=full_restore)
    compiled_block.apply(core, spy)
    if exercise_outcome is not None:
        for address in addresses:
            core.execute_branch(spy, int(address), bool(exercise_outcome))
    prepared = core.checkpoint(full=full_restore)
    fsm = core.predictor.bimodal.pht.fsm

    states: List[DecodedState] = []
    for address in addresses:
        tt = probe_pair(core, spy, int(address), (True, True)).pattern
        core.restore(prepared)
        nn = probe_pair(core, spy, int(address), (False, False)).pattern
        core.restore(prepared)
        states.append(decode_state(fsm, tt, nn))
    core.restore(checkpoint)
    return states


def _encode(states: Sequence[DecodedState]) -> np.ndarray:
    codes = {state: i for i, state in enumerate(DecodedState)}
    return np.array([codes[s] for s in states], dtype=np.int8)


def hamming_ratio_curve(
    states: Sequence[DecodedState],
    windows: Iterable[int],
    *,
    rng: Optional[np.random.Generator] = None,
    max_pairs: int = 100,
) -> Dict[int, float]:
    """Mean pairwise Hamming distance / window size, per window size.

    Equation 3's ``H(w)`` computed over at most ``max_pairs`` random
    subvector pairs (all pairs when fewer exist), divided by ``w`` so
    window sizes are comparable (the ratio the paper plots in Figure 5b).
    Windows that do not fit at least two subvectors are skipped.

    Pair enumeration and Hamming distances are vectorised:
    ``np.triu_indices`` lists (a, b) pairs in the same row-major order as
    ``itertools.combinations``, so the sampled-pair RNG draw — and hence
    the curve — is unchanged from the scalar implementation.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    encoded = _encode(states)
    curve: Dict[int, float] = {}
    for w in windows:
        w = int(w)
        n_sub = len(encoded) // w
        if w < 1 or n_sub < 2:
            continue
        subvectors = encoded[: n_sub * w].reshape(n_sub, w)
        first, second = np.triu_indices(n_sub, k=1)
        if len(first) > max_pairs:
            chosen = rng.choice(len(first), size=max_pairs, replace=False)
            first = first[chosen]
            second = second[chosen]
        distances = (subvectors[first] != subvectors[second]).sum(axis=1)
        curve[w] = float(distances.mean()) / w
    return curve


def estimate_pht_size(
    states: Sequence[DecodedState],
    *,
    windows: Optional[Iterable[int]] = None,
    rng: Optional[np.random.Generator] = None,
    max_pairs: int = 100,
) -> int:
    """Equation 4: the window size minimising the Hamming ratio.

    Defaults to testing every window from 2 to half the scan length.  On
    ties or multiple local minima the smallest window wins, per the
    paper ("the value with lowest value of w is selected").
    """
    if windows is None:
        windows = range(2, len(states) // 2 + 1)
    curve = hamming_ratio_curve(
        states, windows, rng=rng, max_pairs=max_pairs
    )
    if not curve:
        raise ValueError("scan too short for any window size")
    best_ratio = min(curve.values())
    return min(w for w, ratio in curve.items() if ratio == best_ratio)
