"""Many-core struct-of-arrays backend for Monte Carlo campaigns.

The Figure 4 stability experiment assesses thousands of *independent*
candidate blocks, each against a fresh, identically-seeded core.  The
per-trial engines (:func:`~repro.core.calibration.assess_block_batch`)
already vectorise *within* one trial; this module vectorises *across*
trials by stacking N cores' state and per-trial quantities into
``(N, ...)`` numpy arrays — a struct-of-arrays ("manycore") layout — and
advancing the whole campaign with single array operations.

Two layers:

* :class:`ManycoreState` — the general SoA container: PHT levels,
  selector counters, GHR values, identification/BTB tags, per-instance
  clocks and mispredict counters stacked into ``(N, table_size)``
  arrays, with per-instance RNG streams spawned via
  ``np.random.SeedSequence`` exactly like
  :func:`repro.parallel.spawn_seeds`.  :meth:`ManycoreState.
  apply_compiled` is the vectorised counterpart of
  :meth:`~repro.core.randomizer.CompiledBlock.apply`, pinned
  element-for-element against the scalar path in
  ``tests/test_manycore.py``.

* :class:`ManycoreCampaignPool` — the stability-experiment fast path.
  Because every trial builds its core from the same deterministic
  factory, draws its :class:`~repro.core.calibration.TrialPlan` from
  that fresh core's own generator, and runs the unmitigated closed-form
  front-end, *everything except the candidate block itself is identical
  across trials*: the plan, the per-repetition noise aggregates, the
  PHT indices of every slot, the tracked-entry set, and the entire
  node schedule of the batch engine's phase 2.  The pool therefore
  computes that structure once and reduces each trial to a small
  *block summary* — per-tracked-entry ids in the FSM's
  :class:`~repro.bpu.fsm.TransitionMonoid` — evolved for a whole chunk
  of instances at a time as ``(chunk, n_nodes)`` table lookups.  The
  result is bit-identical to running the scalar/batch trial per block
  (same :class:`~repro.core.calibration.BlockAssessment` list, same
  factory-RNG stream position), which the differential suite pins.

Exactness boundary (mirrors the batch engine's, plus the shared-plan
requirement): a campaign-wide mitigation or value-*unequal* FSM specs
route every trial to the caller-supplied scalar trial function.  A
nondeterministic core factory or distinct-but-equal FSM instances no
longer force that: the pool partitions payloads by *structure
signature* (initial predictor state, plan bytes, post-draw RNG
position, FSM spec) and runs one :class:`_SharedStructure` per
multi-member group, falling back per payload only for
singleton-degenerate groups, per-payload mitigations, or empty noise
gaps.  Every fallback is counted via
:func:`repro.obs.trace.record_scalar_fallback` under engine
``"manycore"`` — graceful and exact, never silent — and the dispatch
split is observable through :func:`group_batch_stats`.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bpu.hashes import apply_hash
from repro.core.calibration import (
    BlockAssessment,
    TrialPlan,
    assess_block_batch,
    draw_trial_plan,
)
from repro.core.calibration_batch import _closed_form
from repro.core.randomizer import CompiledBlock, RandomizationBlock
from repro.core.support import manycore_fallback_reason
from repro.cpu.core import PhysicalCore
from repro import kernels
from repro import store as repro_store
from repro.cpu.process import Process
from repro.obs import trace as obs
from repro.parallel import spawn_rngs
from repro.resilience.checkpoint import rng_state_digest
from repro.system.noise import NoiseModel

__all__ = [
    "ManycoreState",
    "ManycoreCampaignPool",
    "ManycoreFindPool",
    "group_batch_stats",
    "manycore_supported",
    "reset_group_batch_stats",
]

#: Probe-pattern strings by code ``miss_first * 2 + miss_second``; the
#: order is lexicographic, which is what lets the dominant-pattern
#: tie-break (max over ``(count, pattern)``) reduce to an argmax over
#: ``count * 4 + code``.
_PATTERNS = ("HH", "HM", "MH", "MM")

#: Instances assessed per vectorised chunk.  Bounds peak memory (the
#: phase-2 id arrays are ``(chunk, n_nodes)`` int64) while amortising
#: the per-chunk gather setup.
DEFAULT_CHUNK = 64

#: Always-on counters for the heterogeneous-group dispatcher, mirrored
#: into run manifests by ``benchmarks/_common.py``.
_GROUP_STATS: Dict[str, int] = {
    "campaigns": 0,
    "map_calls": 0,
    "payloads": 0,
    "shared": 0,
    "grouped": 0,
    "scalar": 0,
    "groups": 0,
    "singleton_groups": 0,
    "workspace_reuses": 0,
}


def group_batch_stats() -> Dict[str, int]:
    """Snapshot of the campaign-pool dispatch counters.

    ``shared``/``grouped``/``scalar`` partition every payload that went
    through a :class:`ManycoreCampaignPool` by how it executed: the
    single-structure fast path, a multi-member heterogeneous group, or a
    per-payload replica/delegated trial.  ``groups`` counts multi-member
    groups built, ``singleton_groups`` the degenerate ones that fell
    back, and ``workspace_reuses`` chunk-buffer reuses across groups.
    """
    return dict(_GROUP_STATS)


def reset_group_batch_stats() -> None:
    for key in _GROUP_STATS:
        _GROUP_STATS[key] = 0


def _fast_mod(values: np.ndarray, n: int) -> np.ndarray:
    """``values % n``, as a mask when ``n`` is a power of two.

    The per-block summary reduces ~1e5 addresses per table; for the
    power-of-two table sizes every preset uses, the bitwise AND is
    several times cheaper than the integer modulo and exact for the
    non-negative addresses the generator produces.
    """
    if n & (n - 1) == 0:
        return values & (n - 1)
    return values % n


# ---------------------------------------------------------------------------
# ManycoreState: the general struct-of-arrays container
# ---------------------------------------------------------------------------


class ManycoreState:
    """N independent cores' microarchitectural state, stacked.

    Row ``i`` of every array is instance ``i``'s state; the scalar
    equivalents live on :class:`~repro.cpu.core.PhysicalCore` and its
    components.  Only the state the randomisation/assessment pipeline
    touches is stacked (PHT levels, selector, GHR, identification and
    target buffers, clock, one process's counters) — instances needing
    full core semantics should materialise a :class:`PhysicalCore`.
    """

    def __init__(
        self,
        config,
        n: int,
        *,
        bimodal_levels: np.ndarray,
        gshare_levels: np.ndarray,
        selector_counters: np.ndarray,
        ghr_values: np.ndarray,
        bit_valid: np.ndarray,
        bit_tags: np.ndarray,
        btb_valid: np.ndarray,
        btb_tags: np.ndarray,
        btb_targets: np.ndarray,
        clock: np.ndarray,
        branches: np.ndarray,
        mispredictions: np.ndarray,
        cycles: np.ndarray,
        rngs: List[np.random.Generator],
    ) -> None:
        self.config = config
        self.n = int(n)
        self.bimodal_levels = bimodal_levels
        self.gshare_levels = gshare_levels
        self.selector_counters = selector_counters
        self.ghr_values = ghr_values
        self.bit_valid = bit_valid
        self.bit_tags = bit_tags
        self.btb_valid = btb_valid
        self.btb_tags = btb_tags
        self.btb_targets = btb_targets
        self.clock = clock
        self.branches = branches
        self.mispredictions = mispredictions
        self.cycles = cycles
        self.rngs = rngs

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_factory(
        cls,
        core_factory: Callable[[], PhysicalCore],
        n: int,
        *,
        seed: Optional[int] = None,
    ) -> "ManycoreState":
        """Broadcast one factory-built core into ``n`` stacked instances.

        Per-instance RNG streams are spawned from ``seed`` with the same
        ``SeedSequence.spawn`` discipline as
        :func:`repro.parallel.spawn_seeds`, so a manycore campaign and a
        pooled per-trial campaign derive identical independent streams
        from the same experiment seed.
        """
        template = core_factory()
        predictor = template.predictor

        def stack(arr: np.ndarray) -> np.ndarray:
            return np.repeat(np.asarray(arr)[None, ...], n, axis=0).copy()

        return cls(
            template.config,
            n,
            bimodal_levels=stack(predictor.bimodal.pht.levels),
            gshare_levels=stack(predictor.gshare.pht.levels),
            selector_counters=stack(predictor.selector.counters),
            ghr_values=np.full(n, int(predictor.ghr.value), dtype=np.int64),
            bit_valid=stack(predictor.bit.valid),
            bit_tags=stack(predictor.bit.tags),
            btb_valid=stack(predictor.btb.valid),
            btb_tags=stack(predictor.btb.tags),
            btb_targets=stack(predictor.btb.targets),
            clock=np.full(n, int(template.clock.now), dtype=np.int64),
            branches=np.zeros(n, dtype=np.int64),
            mispredictions=np.zeros(n, dtype=np.int64),
            cycles=np.zeros(n, dtype=np.int64),
            rngs=spawn_rngs(seed, n),
        )

    @classmethod
    def from_cores(
        cls,
        cores: Sequence[PhysicalCore],
        *,
        process: Optional[Process] = None,
    ) -> "ManycoreState":
        """Stack existing cores (all of one configuration) row by row.

        ``process`` selects whose counter file the per-instance counter
        columns mirror (zeros when omitted).  The cores' own generators
        are carried by reference — the stacked state and the cores share
        streams, exactly as a scalar campaign over those cores would.
        """
        if not cores:
            raise ValueError("from_cores needs at least one core")
        name = cores[0].config.name
        for core in cores:
            if core.config.name != name:
                raise ValueError(
                    f"mixed configurations: {core.config.name!r} vs {name!r}"
                )
        from repro.cpu.counters import CounterKind

        def counter(core: PhysicalCore, kind) -> int:
            if process is None:
                return 0
            return int(core.counters_for(process).read(kind))

        predictors = [core.predictor for core in cores]
        return cls(
            cores[0].config,
            len(cores),
            bimodal_levels=np.stack(
                [p.bimodal.pht.levels.copy() for p in predictors]
            ),
            gshare_levels=np.stack(
                [p.gshare.pht.levels.copy() for p in predictors]
            ),
            selector_counters=np.stack(
                [p.selector.counters.copy() for p in predictors]
            ),
            ghr_values=np.array(
                [int(p.ghr.value) for p in predictors], dtype=np.int64
            ),
            bit_valid=np.stack([p.bit.valid.copy() for p in predictors]),
            bit_tags=np.stack([p.bit.tags.copy() for p in predictors]),
            btb_valid=np.stack([p.btb.valid.copy() for p in predictors]),
            btb_tags=np.stack([p.btb.tags.copy() for p in predictors]),
            btb_targets=np.stack([p.btb.targets.copy() for p in predictors]),
            clock=np.array(
                [int(core.clock.now) for core in cores], dtype=np.int64
            ),
            branches=np.array(
                [counter(core, CounterKind.BRANCHES) for core in cores],
                dtype=np.int64,
            ),
            mispredictions=np.array(
                [counter(core, CounterKind.BRANCH_MISSES) for core in cores],
                dtype=np.int64,
            ),
            cycles=np.array(
                [counter(core, CounterKind.CYCLES) for core in cores],
                dtype=np.int64,
            ),
            rngs=[core.rng for core in cores],
        )

    # -- vectorised operations ---------------------------------------------

    def apply_compiled(self, compiled) -> None:
        """Apply compiled block(s) to every instance — the SoA
        counterpart of :meth:`~repro.core.randomizer.CompiledBlock.apply`.

        ``compiled`` is either one :class:`CompiledBlock` (broadcast to
        all instances) or a sequence of ``n`` per-instance blocks.  The
        dense PHT rewrites run as whole-stack gathers; the ragged
        per-block writes (selector resets, identification-table
        insertions) loop per instance — they are tiny next to the PHT
        work and their in-order fancy assignment reproduces the scalar
        last-write-wins semantics exactly.
        """
        if isinstance(compiled, CompiledBlock):
            blocks: List[CompiledBlock] = [compiled] * self.n
        else:
            blocks = list(compiled)
            if len(blocks) != self.n:
                raise ValueError(
                    f"{len(blocks)} compiled blocks for {self.n} instances"
                )
        for cb in blocks:
            if cb.config_name != self.config.name:
                raise ValueError(
                    "compiled block bound to config "
                    f"{cb.config_name!r}, state is {self.config.name!r}"
                )

        rows = np.arange(self.n)
        n_b = self.bimodal_levels.shape[1]
        n_g = self.gshare_levels.shape[1]
        if all(cb is blocks[0] for cb in blocks):
            self.bimodal_levels = blocks[0].bimodal_map[
                np.arange(n_b)[None, :], self.bimodal_levels
            ]
            self.gshare_levels = blocks[0].gshare_map[
                np.arange(n_g)[None, :], self.gshare_levels
            ]
        else:
            bimodal_maps = np.stack([cb.bimodal_map for cb in blocks])
            gshare_maps = np.stack([cb.gshare_map for cb in blocks])
            self.bimodal_levels = bimodal_maps[
                rows[:, None], np.arange(n_b)[None, :], self.bimodal_levels
            ]
            self.gshare_levels = gshare_maps[
                rows[:, None], np.arange(n_g)[None, :], self.gshare_levels
            ]

        ghr_mask = (1 << self.config.ghr_bits) - 1
        sel_initial = self.config.selector_initial
        for i, cb in enumerate(blocks):
            self.selector_counters[i, cb.selector_touched] = sel_initial
            self.bit_valid[i, cb.bit_sets] = True
            self.bit_tags[i, cb.bit_sets] = cb.bit_tags
            self.ghr_values[i] = cb.ghr_end & ghr_mask
            self.clock[i] += cb.cycles
            self.branches[i] += len(cb.block)
            self.mispredictions[i] += cb.mispredictions
            self.cycles[i] += cb.cycles

    def rng_digests(self) -> List[str]:
        """Canonical stream-position digest of every instance's RNG."""
        return [rng_state_digest(rng) for rng in self.rngs]


# ---------------------------------------------------------------------------
# Shared-structure campaign engine
# ---------------------------------------------------------------------------


def _fold_tracked_ids(
    monoid,
    positions: np.ndarray,
    outcomes: np.ndarray,
    n_tracked: int,
) -> np.ndarray:
    """Per-tracked-entry monoid id of one block's outcome fold.

    ``positions[i]`` is the tracked-entry position branch ``i`` hits in
    program order (``-1`` to skip a branch); the result maps each
    tracked position to the id of its composed transition map (identity
    for untouched positions).  Dispatches through
    :func:`repro.kernels.fold_ids` — the same fold as
    :meth:`~repro.bpu.fsm.TransitionMonoid.fold_table`, segmented scan
    or compiled accumulator depending on the active backend.
    """
    return kernels.fold_ids(
        np.asarray(positions, dtype=np.int64),
        monoid.outcome_id_sequence(outcomes).astype(np.int64),
        monoid.compose_table,
        int(n_tracked),
        monoid.IDENTITY,
    )


class _NodePlan:
    """The instance-independent half of phase 2, for one PHT.

    Mirrors :func:`repro.core.calibration_batch._read_levels` up to the
    point where the per-entry transition maps enter, then stores the
    node schedule so :meth:`read_levels` can replay the binary lifting,
    step transfer and segmented scan for a whole chunk of instances in
    monoid *id space*: each ``(node, instance)`` cell is a small integer
    id and every composition is one flat ``compose_table`` gather.  The
    id-space run is exactly the level-space run with the per-node level
    row replaced by its id — composition orders are identical, which the
    differential suite pins end to end.

    Preconditions (checked by the caller): no mitigations (every slot
    executes) and a single FSM shared by both PHTs (noise and execute
    steps then use the same transition table, so a node's step id
    depends only on its outcome).
    """

    def __init__(
        self,
        monoid,
        initial_levels: np.ndarray,
        idx: np.ndarray,
        outcomes: np.ndarray,
        noise_idx: np.ndarray,
        noise_out: np.ndarray,
        noise_epoch: np.ndarray,
        d: int,
        n_entries: int,
    ) -> None:
        R2, n_slots = idx.shape
        self.shape = (R2, n_slots)
        self.monoid = monoid
        size = len(monoid.maps)
        self._ct_flat = monoid.compose_table.astype(np.int64).ravel()
        self._ct_size = size
        self._maps_flat = monoid.maps.astype(np.int64).ravel()
        self._n_levels = monoid.n_levels

        tracked = np.unique(idx)
        self.n_tracked = len(tracked)
        pos_table = np.full(n_entries, -1, dtype=np.int64)
        pos_table[tracked] = np.arange(self.n_tracked)
        self.pos_table = pos_table
        positions = pos_table[idx]

        # Read nodes: every slot of every repetition executes.
        slot_flat = np.arange(R2 * n_slots)
        read_pos = positions.ravel()
        read_r = slot_flat // n_slots
        read_time = read_r + ((slot_flat - read_r * n_slots) >= d)
        read_out = outcomes.ravel().astype(np.int64)
        n_reads = R2 * n_slots

        # Noise-hit nodes, pruned to each entry's last read.
        last_read = np.zeros(self.n_tracked, dtype=np.int64)
        np.maximum.at(last_read, read_pos, read_time)
        if len(noise_idx):
            npos = pos_table[noise_idx]
            hit = npos >= 0
            hit_pos = npos[hit]
            hit_time = noise_epoch[hit] + 1
            observable = hit_time <= last_read[hit_pos]
            hit_pos = hit_pos[observable]
            hit_time = hit_time[observable]
            hit_out = noise_out[hit][observable].astype(np.int64)
        else:
            hit_pos = hit_time = hit_out = np.empty(0, dtype=np.int64)
        n_hits = len(hit_pos)

        node_p = np.concatenate([read_pos, hit_pos])
        node_t = np.concatenate([read_time, hit_time])
        node_read = np.concatenate(
            [np.ones(n_reads, dtype=np.int64), np.zeros(n_hits, dtype=np.int64)]
        )
        node_out = np.concatenate([read_out, hit_out])
        node_seq = np.concatenate([np.arange(n_reads), np.arange(n_hits)])
        node_slot = np.concatenate(
            [slot_flat, np.zeros(n_hits, dtype=np.int64)]
        )
        order = np.lexsort((node_seq, node_read, node_t, node_p))
        p_sorted = node_p[order]
        t_sorted = node_t[order]
        self.n_nodes = len(order)

        first = np.ones(self.n_nodes, dtype=bool)
        first[1:] = p_sorted[1:] != p_sorted[:-1]
        prev_t = np.empty_like(t_sorted)
        prev_t[0] = 0
        prev_t[1:] = t_sorted[:-1]
        prev_t[first] = 0
        remaining = t_sorted - prev_t

        # Between consecutive nodes at one entry the block fold applies
        # once per crossed epoch, so each node's jump is (block fold)^k
        # with k = remaining[node].  The batch engine binary-lifts this
        # per trial; here the monoid is tiny, so a dense power table
        # ``POW[element, k]`` turns the whole lifting pass into one flat
        # gather per chunk.
        k_max = int(remaining.max()) if self.n_nodes else 0
        pow_table = np.empty((size, k_max + 1), dtype=np.int64)
        pow_table[:, 0] = monoid.IDENTITY
        elements = np.arange(size)
        for k in range(1, k_max + 1):
            pow_table[:, k] = monoid.compose_table[pow_table[:, k - 1], elements]
        self._pow_flat = pow_table.ravel()
        self._pow_k = k_max + 1
        self.p_sorted = p_sorted
        self.remaining = remaining

        self.step_ids = monoid.outcome_ids[node_out[order]].astype(np.int64)
        self.v0_nodes = initial_levels[tracked].astype(np.int64)[p_sorted]
        self.first = first
        # Flat output slot per node, -1 for non-read (noise) nodes; the
        # kernel layer derives its scatter/schedule from this and
        # memoises per-plan state in ``_kcache``.
        reads = node_read[order] == 1
        out_slot = np.full(self.n_nodes, -1, dtype=np.int64)
        out_slot[reads] = node_slot[order][reads]
        self.out_slot = out_slot
        self._kcache: dict = {}

    def read_levels(self, lift0: np.ndarray) -> np.ndarray:
        """Read-before-write levels for a chunk of instances.

        ``lift0`` is ``(chunk, n_tracked)`` monoid ids — each instance's
        block fold per tracked entry; the result is
        ``(chunk, R2, n_slots)`` levels, matching ``_read_levels`` row
        for row (dispatched through :func:`repro.kernels.read_levels_ids`).
        """
        chunk = lift0.shape[0]
        R2, n_slots = self.shape
        read_flat = kernels.read_levels_ids(
            np.ascontiguousarray(lift0, dtype=np.int64),
            self.p_sorted,
            self.remaining,
            self.step_ids,
            self.first,
            self.v0_nodes,
            self.out_slot,
            self._pow_flat,
            self._pow_k,
            self._ct_flat,
            self._ct_size,
            self._maps_flat,
            self._n_levels,
            R2 * n_slots,
            cache=self._kcache,
        )
        return read_flat.reshape(chunk, R2, n_slots)


class _SharedStructure:
    """Everything a stability campaign shares across its trials."""

    def __init__(
        self,
        template: PhysicalCore,
        target_address: int,
        plan: TrialPlan,
        rng_digest: str,
        block_branches: int,
    ) -> None:
        predictor = template.predictor
        bimodal = predictor.bimodal.pht
        gshare = predictor.gshare.pht
        fsm = bimodal.fsm
        sel = predictor.selector
        bit = predictor.bit
        T = int(target_address)
        R = plan.repetitions
        R2 = 2 * R

        self.plan = plan
        self.rng_digest = rng_digest
        self.block_branches = int(block_branches)
        self.fsm = fsm
        self.monoid = fsm.transition_monoid()
        self.d = fsm.n_levels
        self.R = R
        self.R2 = R2
        self.n_b = bimodal.n_entries
        self.n_g = gshare.n_entries
        self.ghr_len = predictor.ghr.length
        self.target = T
        self.tb = predictor.bimodal.index(T, 0, None)
        self.n_sel = sel.n_entries
        self.tsel = T % sel.n_entries
        self.n_sets = bit.n_sets
        self.tag_mask = bit._tag_mask
        self.tset = T % bit.n_sets
        self.ttag = (T // bit.n_sets) & bit._tag_mask
        self.sel_initial = sel._initial
        self.sel_max = sel.max_counter
        self.sel_threshold = sel.gshare_threshold
        self.sel_val0 = int(sel.counters[self.tsel])
        self.bit_valid0 = bool(bit.valid[self.tset])
        self.bit_tag0 = int(bit.tags[self.tset])

        # Phase 1 (closed form) — identical for every trial.  ghr_end is
        # only consumed by repetitions with an empty noise gap, which the
        # support predicate excludes, so a placeholder is exact here.
        static, outcomes, b_idx, g_idx, offsets, bulk = _closed_form(
            self.plan, T, R, self.n_b, self.n_g,
            int(predictor.ghr.value), 0, self.ghr_len,
        )
        self.outcomes = outcomes
        gaps = offsets[1:] - offsets[:-1]
        total = int(offsets[-1])
        epoch_of = np.repeat(np.arange(R2), gaps)

        # Per-repetition noise aggregates (mirrors batch_assess).
        drift = np.zeros(R2, dtype=np.int64)
        on_tsel = bulk.addresses % self.n_sel == self.tsel
        if on_tsel.any():
            np.add.at(drift, epoch_of[on_tsel], bulk.nudges[on_tsel])
        self.drift_tsel = drift
        noise_tag = np.full(R2, -1, dtype=np.int64)
        on_tset = bulk.addresses % self.n_sets == self.tset
        if on_tset.any():
            last = np.full(R2, -1, dtype=np.int64)
            np.maximum.at(last, epoch_of[on_tset], np.nonzero(on_tset)[0])
            rows = last >= 0
            noise_tag[rows] = (
                bulk.addresses[last[rows]] // self.n_sets
            ) & self.tag_mask
        self.noise_tag = noise_tag

        # Phase-2 node plans (one per PHT).
        noise_epoch = epoch_of if total else np.empty(0, dtype=np.int64)
        self.plan_b = _NodePlan(
            self.monoid,
            bimodal.levels,
            b_idx,
            outcomes,
            bulk.addresses % self.n_b if total else np.empty(0, dtype=np.int64),
            bulk.outcomes,
            noise_epoch,
            self.d,
            self.n_b,
        )
        self.plan_g = _NodePlan(
            self.monoid,
            gshare.levels,
            g_idx,
            outcomes,
            bulk.gshare_indices,
            bulk.outcomes,
            noise_epoch,
            self.d,
            self.n_g,
        )

        # Phase-3 shared precomputation.
        self.predicts = fsm._predict_arr
        self.predicts_list = [bool(fsm.predicts(lv)) for lv in range(self.d)]
        self.taken_probe = np.arange(R2) < R  # outcome of both probe slots
        sel1 = np.clip(self.sel_initial + drift, 0, 3)
        self.sel1 = sel1
        self.sel1_up = np.minimum(sel1 + 1, self.sel_max)
        self.sel1_down = np.maximum(sel1 - 1, 0)
        self.out_rows = outcomes.tolist()
        # Invariants of the scalar replay chain, hoisted once per
        # campaign: plain-int lists beat per-repetition numpy scalar
        # indexing by an order of magnitude in the untouched-selector
        # loop.
        self.drift_list = [int(v) for v in drift]
        self.noise_list = [int(v) for v in noise_tag]
        self._oid = self.monoid.outcome_ids.astype(np.int64)

        # Content digest of the summary computation: everything
        # ``summarize`` reads besides the block seed.  The persistent
        # store hook in ``assess_chunk`` caches per-chunk block
        # summaries under it, so a warm service process skips the
        # summarize kernel entirely for repeated campaigns.
        sh = hashlib.blake2b(digest_size=16)
        for arr in (
            self._oid,
            self.monoid.compose_table,
            self.plan_g.pos_table,
        ):
            a = np.ascontiguousarray(arr)
            sh.update(str(a.shape).encode())
            sh.update(a.tobytes())
        sh.update(
            str(
                (
                    self.n_b, self.tb, self.n_g, self.ghr_len,
                    self.n_sel, self.tsel, self.n_sets, self.tset,
                    int(self.tag_mask), self.plan_g.n_tracked,
                    int(self.monoid.IDENTITY), self.block_branches,
                    kernels.active_backend(),
                )
            ).encode()
        )
        self.summary_digest = sh.hexdigest()

    # -- per-trial summary --------------------------------------------------

    def summarize(self, seed: int) -> Tuple[int, np.ndarray, bool, int]:
        """One block's campaign-relevant footprint.

        Returns ``(bimodal_id, gshare_ids, tsel_touched, block_tag)``:
        the target bimodal entry's fold id, the fold id per tracked
        gshare entry, whether the block touches the target's selector
        entry, and the last identification tag it writes to the target's
        set (-1 when it never touches that set).
        """
        block = RandomizationBlock.generate(
            seed, n_branches=self.block_branches
        )
        # Fused kernel: one pass walks the GHR shift register, folds the
        # target bimodal entry and every tracked gshare entry in monoid
        # id space, and spots the selector/BIT touches (the numpy
        # backend runs the same reductions as separate vectorised
        # passes — bit-identical either way).
        return kernels.summarize_block(
            block.addresses,
            block.outcomes,
            self._oid,
            self.monoid.compose_table,
            self.n_b,
            self.tb,
            self.n_g,
            self.plan_g.pos_table,
            self.ghr_len,
            self.n_sel,
            self.tsel,
            self.n_sets,
            self.tset,
            self.tag_mask,
            self.plan_g.n_tracked,
            self.monoid.IDENTITY,
        )

    # -- phase 3 ------------------------------------------------------------

    def _codes_scalar(
        self, row_b: np.ndarray, row_g: np.ndarray, block_tag: int
    ) -> np.ndarray:
        """Sequential prediction chain for one *untouched-selector*
        instance — the rare case where chooser state carries across
        repetitions, replayed exactly as the batch engine's phase 3.

        All campaign-invariant state (predict booleans, drift and noise
        tags as plain-int lists) is hoisted into ``__init__``; this loop
        only touches python ints and pre-listed rows.
        """
        predicts = self.predicts_list
        d = self.d
        sel_initial = self.sel_initial
        sel_max = self.sel_max
        threshold = self.sel_threshold
        ttag = self.ttag
        sel_val = self.sel_val0
        bit_valid = self.bit_valid0
        bit_tag = self.bit_tag0
        drift_list = self.drift_list
        noise_list = self.noise_list
        out_rows = self.out_rows
        codes = np.empty(self.R2, dtype=np.int64)
        b_rows = row_b.tolist()
        g_rows = row_g.tolist()
        for r in range(self.R2):
            row_out = out_rows[r]
            rb = b_rows[r]
            rg = g_rows[r]
            for j in range(d):
                if not (bit_valid and bit_tag == ttag):
                    sel_val = sel_initial
                else:
                    taken = bool(row_out[j])
                    bimodal_ok = predicts[rb[j]] == taken
                    gshare_ok = predicts[rg[j]] == taken
                    if bimodal_ok != gshare_ok:
                        sel_val = (
                            min(sel_max, sel_val + 1)
                            if gshare_ok
                            else max(0, sel_val - 1)
                        )
                bit_valid = True
                bit_tag = ttag
            if block_tag >= 0:
                bit_valid = True
                bit_tag = block_tag
            value = sel_val + drift_list[r]
            sel_val = 0 if value < 0 else (3 if value > 3 else value)
            if noise_list[r] >= 0:
                bit_valid = True
                bit_tag = noise_list[r]
            code = 0
            for slot, j in enumerate((d, d + 1)):
                taken = bool(row_out[j])
                known = bit_valid and bit_tag == ttag
                bimodal_taken = predicts[rb[j]]
                gshare_taken = predicts[rg[j]]
                predicted = (
                    gshare_taken
                    if known and sel_val >= threshold
                    else bimodal_taken
                )
                if predicted != taken:
                    code |= 2 >> slot
                if not known:
                    sel_val = sel_initial
                else:
                    bimodal_ok = bimodal_taken == taken
                    gshare_ok = gshare_taken == taken
                    if bimodal_ok != gshare_ok:
                        sel_val = (
                            min(sel_max, sel_val + 1)
                            if gshare_ok
                            else max(0, sel_val - 1)
                        )
                bit_valid = True
                bit_tag = ttag
            codes[r] = code
        return codes

    def assess_chunk(
        self,
        seeds: Sequence[int],
        pre_trial: Optional[Callable[[int], None]],
        workspace: Optional[dict] = None,
    ) -> List[BlockAssessment]:
        """Assess one chunk of block seeds through the stacked pipeline.

        ``workspace`` is an optional caller-held dict of scratch buffers
        reused across chunks *and across structures* whenever the
        geometry ``(chunk, n_tracked, R2)`` matches — every buffer is
        fully overwritten before it is read, so reuse is exact.  The
        grouped dispatcher passes one workspace across all its groups.
        """
        chunk = len(seeds)
        geometry = (chunk, self.plan_g.n_tracked, self.R2)
        if workspace is not None and workspace.get("geometry") == geometry:
            lift_b = workspace["lift_b"]
            lift_g = workspace["lift_g"]
            touched = workspace["touched"]
            block_tags = workspace["block_tags"]
            codes = workspace["codes"]
            _GROUP_STATS["workspace_reuses"] += 1
        else:
            lift_b = np.empty((chunk, 1), dtype=np.int64)
            lift_g = np.empty((chunk, self.plan_g.n_tracked), dtype=np.int64)
            touched = np.empty(chunk, dtype=bool)
            block_tags = np.empty(chunk, dtype=np.int64)
            codes = np.empty((chunk, self.R2), dtype=np.int64)
            if workspace is not None:
                workspace.update(
                    geometry=geometry,
                    lift_b=lift_b,
                    lift_g=lift_g,
                    touched=touched,
                    block_tags=block_tags,
                    codes=codes,
                )
        # Persistent-store hook: the per-seed summaries are a pure
        # function of (structure digest, seed), so a whole chunk's worth
        # is content-addressed and cached.  ``pre_trial`` still runs per
        # seed on a hit — it is a chaos/observability hook, not part of
        # the summary.
        store = repro_store.get_store()
        cache_key = None
        cached = None
        if store is not None:
            cache_key = repro_store.store_key(
                "manycore_summary",
                structure=self.summary_digest,
                seeds=tuple(int(s) for s in seeds),
            )
            found, value = store.get(cache_key)
            if (
                found
                and isinstance(value, dict)
                and value.get("lift_g") is not None
                and value["lift_g"].shape == lift_g.shape
            ):
                cached = value
        if cached is not None:
            if pre_trial is not None:
                for seed in seeds:
                    pre_trial(seed)
            lift_b[:] = cached["lift_b"]
            lift_g[:] = cached["lift_g"]
            touched[:] = cached["touched"]
            block_tags[:] = cached["block_tags"]
        else:
            for i, seed in enumerate(seeds):
                if pre_trial is not None:
                    pre_trial(seed)
                bim_id, g_ids, tsel_touched, block_tag = self.summarize(seed)
                lift_b[i, 0] = bim_id
                lift_g[i] = g_ids
                touched[i] = tsel_touched
                block_tags[i] = block_tag
            if cache_key is not None:
                # Copies: the workspace buffers are reused across chunks
                # and the memory tier holds values by reference.
                store.put(
                    cache_key,
                    {
                        "lift_b": lift_b.copy(),
                        "lift_g": lift_g.copy(),
                        "touched": touched.copy(),
                        "block_tags": block_tags.copy(),
                    },
                )

        read_b = self.plan_b.read_levels(lift_b)
        read_g = self.plan_g.read_levels(lift_g)
        d = self.d

        fast = np.nonzero(touched)[0]
        if len(fast):
            # The block resets the target's chooser entry every
            # repetition, so nothing carries between repetitions and the
            # whole chain vectorises: chooser after noise drift is a
            # shared (R2,) vector, and the per-instance part is just the
            # identification tag entering the first probe.
            pred_b1 = self.predicts[read_b[fast, :, d]]
            pred_g1 = self.predicts[read_g[fast, :, d]]
            pred_b2 = self.predicts[read_b[fast, :, d + 1]]
            pred_g2 = self.predicts[read_g[fast, :, d + 1]]
            taken = self.taken_probe[None, :]
            tag1 = np.where(
                self.noise_tag[None, :] >= 0,
                self.noise_tag[None, :],
                np.where(
                    block_tags[fast, None] >= 0,
                    block_tags[fast, None],
                    self.ttag,
                ),
            )
            known1 = tag1 == self.ttag
            use_gshare1 = known1 & (self.sel1[None, :] >= self.sel_threshold)
            miss1 = np.where(use_gshare1, pred_g1, pred_b1) != taken
            b_ok = pred_b1 == taken
            g_ok = pred_g1 == taken
            sel2 = np.where(
                known1,
                np.where(
                    b_ok != g_ok,
                    np.where(
                        g_ok, self.sel1_up[None, :], self.sel1_down[None, :]
                    ),
                    self.sel1[None, :],
                ),
                self.sel_initial,
            )
            # Probe 1 re-identifies the branch, so probe 2 always knows it.
            miss2 = np.where(
                sel2 >= self.sel_threshold, pred_g2, pred_b2
            ) != taken
            codes[fast] = miss1 * 2 + miss2

        for i in np.nonzero(~touched)[0]:
            codes[i] = self._codes_scalar(
                read_b[i], read_g[i], int(block_tags[i])
            )

        out: List[BlockAssessment] = []
        counts_tt = np.stack(
            [(codes[:, : self.R] == c).sum(axis=1) for c in range(4)], axis=1
        )
        counts_nn = np.stack(
            [(codes[:, self.R:] == c).sum(axis=1) for c in range(4)], axis=1
        )
        # max over (count, pattern): patterns are in lexicographic order,
        # so scaling counts by 4 and adding the code reproduces the
        # scalar tie-break exactly.
        rank = np.arange(4)[None, :]
        best_tt = np.argmax(counts_tt * 4 + rank, axis=1)
        best_nn = np.argmax(counts_nn * 4 + rank, axis=1)
        for i, seed in enumerate(seeds):
            out.append(
                BlockAssessment(
                    seed=seed,
                    tt_pattern=_PATTERNS[best_tt[i]],
                    tt_frequency=int(counts_tt[i, best_tt[i]]) / self.R,
                    nn_pattern=_PATTERNS[best_nn[i]],
                    nn_frequency=int(counts_nn[i, best_nn[i]]) / self.R,
                )
            )
        return out


def manycore_supported(
    core: PhysicalCore, gaps: Optional[np.ndarray] = None
) -> Optional[str]:
    """Why the manycore closed-form engine is inexact for ``core``.

    Returns ``None`` when supported, else the fallback reason —
    ``"mitigation"``, ``"index_hash"`` or ``"unshared_structure"``; the
    conditions live in the shared predicate home,
    :func:`repro.core.support.manycore_fallback_reason`.
    """
    return manycore_fallback_reason(core, gaps, instance_shared=True)


class ManycoreCampaignPool:
    """A ``TrialPool``-shaped adapter running trials on the SoA engine.

    Drop-in for the ``pool`` seat of
    :func:`~repro.core.calibration.stability_experiment`: ``map(fn,
    seeds)`` returns the bit-identical :class:`BlockAssessment` list the
    scalar trial closure ``fn`` would produce.  Three dispatch modes,
    chosen once per campaign:

    * ``"shared"`` — deterministic factory, one FSM instance, no empty
      noise gap: the classic single-:class:`_SharedStructure` fast path.
    * ``"grouped"`` — a nondeterministic factory or distinct (but
      value-equal) bimodal/gshare FSM instances no longer force a
      per-payload fallback.  Each payload builds its own core, draws its
      own plan, and payloads whose *structure signature* (initial
      predictor state, plan bytes, post-draw RNG position, FSM spec)
      matches share one :class:`_SharedStructure`; groups run
      back-to-back reusing the chunk workspace when geometry matches.
      Only singleton-degenerate groups (and per-payload mitigations /
      empty gaps) replay the reference trial per payload, counted as
      ``"manycore"`` scalar fallbacks.
    * ``"fn"`` — a campaign-wide mitigation, value-unequal FSM specs, or
      a deterministic plan with an empty noise gap: full delegation to
      the caller's trial closure, counted per payload.

    Composes with :class:`~repro.resilience.ResumableCampaign`
    unchanged — assessments are pure functions of the block seed either
    way, so checkpoints written by one backend resume under the other.
    """

    def __init__(
        self,
        core_factory: Callable[[], PhysicalCore],
        target_address: int,
        *,
        block_branches: int,
        repetitions: int,
        noise: Optional[NoiseModel] = None,
        pre_trial: Optional[Callable[[int], None]] = None,
        chunk_size: int = DEFAULT_CHUNK,
        spy: Optional[Process] = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.core_factory = core_factory
        self.target_address = int(target_address)
        self.block_branches = int(block_branches)
        self.repetitions = int(repetitions)
        self.noise = noise
        self.pre_trial = pre_trial
        self.chunk_size = int(chunk_size)
        self._shared: Optional[_SharedStructure] = None
        self._fallback_reason: Optional[str] = None
        self._built = False
        self._mode: Optional[str] = None
        self._banked: List[PhysicalCore] = []
        self._spy = spy

    @property
    def rng_digest(self) -> Optional[str]:
        """Stream-position digest every trial's factory RNG ends at.

        ``None`` outside ``"shared"`` mode — grouped campaigns have one
        stream position per structure group, not one per campaign.
        """
        self._ensure_built()
        return self._shared.rng_digest if self._shared else None

    def _get_spy(self) -> Process:
        if self._spy is None:
            self._spy = Process("manycore-spy")
        return self._spy

    def _ensure_built(self) -> None:
        if self._built:
            return
        self._built = True
        _GROUP_STATS["campaigns"] += 1
        template = self.core_factory()
        reason = manycore_supported(template)
        if reason in ("mitigation", "index_hash"):
            # Mitigation index/observation hooks must run inside the
            # caller's closure (they may be stateful across the whole
            # trial), and a non-modulo preset's probe arithmetic is not
            # this engine's; delegate wholesale either way — the trial
            # closure's compiler is hash-aware.
            self._mode = "fn"
            self._fallback_reason = reason
            return
        if reason == "unshared_structure":
            # Distinct FSM *instances* with equal specs share a monoid,
            # so the grouped engine handles them; unequal specs would
            # give the two PHTs different transition algebra — delegate.
            predictor = template.predictor
            if predictor.bimodal.pht.fsm == predictor.gshare.pht.fsm:
                self._mode = "grouped"
                self._banked = [template]
            else:
                self._mode = "fn"
                self._fallback_reason = reason
            return
        # Template is individually supported; a nondeterministic factory
        # breaks the shared-plan premise but not the grouped one.  One
        # extra factory call per campaign buys the check.
        digest0 = rng_state_digest(template.rng)
        probe = self.core_factory()
        if (
            rng_state_digest(probe.rng) != digest0
            or probe.config.name != template.config.name
        ):
            self._mode = "grouped"
            self._banked = [template, probe]
            return
        plan = draw_trial_plan(
            template.rng,
            template,
            repetitions=self.repetitions,
            noise=self.noise,
        )
        gaps = plan.offsets[1:] - plan.offsets[:-1]
        reason = manycore_supported(template, gaps)
        if reason is None:
            self._mode = "shared"
            self._shared = _SharedStructure(
                template,
                self.target_address,
                plan,
                rng_state_digest(template.rng),
                self.block_branches,
            )
        else:
            self._mode = "fn"
            self._fallback_reason = reason

    # -- grouped mode ------------------------------------------------------

    def _payload_reason(self, core: PhysicalCore) -> Optional[str]:
        """Per-payload inexactness reason inside a grouped campaign.

        Relaxes the FSM condition to spec equality — distinct instances
        are exactly what the grouped engine exists to handle.
        """
        return manycore_fallback_reason(core, instance_shared=False)

    def _replica_trial(self, core: PhysicalCore, seed: int) -> BlockAssessment:
        """The reference trial closure, replayed on an already-built core.

        Exact generate -> compile -> plan-draw order of
        :func:`~repro.core.calibration.stability_experiment`'s closure,
        so a mitigated core's compile-time RNG draws land on the same
        stream positions.
        """
        block = RandomizationBlock.generate(
            seed, n_branches=self.block_branches
        )
        compiled = block.compile(core, self._get_spy())
        plan = draw_trial_plan(
            core.rng, core, repetitions=self.repetitions, noise=self.noise
        )
        return assess_block_batch(
            core, self._get_spy(), compiled, self.target_address, plan=plan
        )

    def _replica_assess(
        self, core: PhysicalCore, seed: int, plan: TrialPlan
    ) -> BlockAssessment:
        """Reference trial with the plan already drawn.

        An unmitigated compile makes no core-RNG draws, so drawing the
        plan before generate/compile (as the grouping pass must, to
        signature payloads) is stream-equivalent to the reference order.
        """
        block = RandomizationBlock.generate(
            seed, n_branches=self.block_branches
        )
        compiled = block.compile(core, self._get_spy())
        return assess_block_batch(
            core, self._get_spy(), compiled, self.target_address, plan=plan
        )

    def _structure_signature(
        self, core: PhysicalCore, plan: TrialPlan
    ) -> Tuple:
        """Hashable key: two payloads share a group iff they would build
        bit-identical :class:`_SharedStructure`\\ s and leave their
        factory RNGs at the same position."""
        predictor = core.predictor
        h = hashlib.blake2b(digest_size=16)
        for arr in (
            predictor.bimodal.pht.levels,
            predictor.gshare.pht.levels,
            predictor.selector.counters,
            predictor.bit.valid,
            predictor.bit.tags,
            plan.scrambles,
            plan.offsets,
            plan.bulk.addresses,
            plan.bulk.outcomes,
            plan.bulk.gshare_indices,
            plan.bulk.nudges,
        ):
            a = np.ascontiguousarray(arr)
            h.update(str(a.shape).encode())
            h.update(a.tobytes())
        h.update(
            str(
                (
                    core.config.name,
                    int(predictor.ghr.value),
                    predictor.ghr.length,
                    predictor.bimodal.pht.n_entries,
                    predictor.gshare.pht.n_entries,
                    predictor.selector.n_entries,
                    predictor.bit.n_sets,
                )
            ).encode()
        )
        h.update(rng_state_digest(core.rng).encode())
        return (predictor.bimodal.pht.fsm, h.hexdigest())

    def _map_grouped(self, payloads: List[int]) -> List[BlockAssessment]:
        results: List[Optional[BlockAssessment]] = [None] * len(payloads)
        groups: Dict[Tuple, dict] = {}
        for idx, seed in enumerate(payloads):
            if self.pre_trial is not None:
                self.pre_trial(seed)
            core = (
                self._banked.pop(0) if self._banked else self.core_factory()
            )
            reason = self._payload_reason(core)
            if reason is not None:
                obs.record_scalar_fallback("manycore", reason)
                _GROUP_STATS["scalar"] += 1
                results[idx] = self._replica_trial(core, seed)
                continue
            plan = draw_trial_plan(
                core.rng, core, repetitions=self.repetitions, noise=self.noise
            )
            gaps = plan.offsets[1:] - plan.offsets[:-1]
            if bool((gaps == 0).any()):
                obs.record_scalar_fallback("manycore", "unshared_structure")
                _GROUP_STATS["scalar"] += 1
                results[idx] = self._replica_assess(core, seed, plan)
                continue
            key = self._structure_signature(core, plan)
            group = groups.setdefault(
                key,
                {"core": core, "plan": plan, "digest": key[1], "members": []},
            )
            group["members"].append((idx, seed))

        workspace: dict = {}
        n_groups = 0
        for group in groups.values():
            members = group["members"]
            if len(members) == 1:
                # Building a full shared structure for one payload costs
                # more than it saves; the replica path is exact.
                idx, seed = members[0]
                obs.record_scalar_fallback("manycore", "singleton_group")
                _GROUP_STATS["scalar"] += 1
                _GROUP_STATS["singleton_groups"] += 1
                results[idx] = self._replica_assess(
                    group["core"], seed, group["plan"]
                )
                continue
            n_groups += 1
            _GROUP_STATS["groups"] += 1
            _GROUP_STATS["grouped"] += len(members)
            shared = _SharedStructure(
                group["core"],
                self.target_address,
                group["plan"],
                group["digest"],
                self.block_branches,
            )
            seeds = [seed for _, seed in members]
            assessed: List[BlockAssessment] = []
            for start in range(0, len(seeds), self.chunk_size):
                assessed.extend(
                    shared.assess_chunk(
                        seeds[start:start + self.chunk_size],
                        None,
                        workspace=workspace,
                    )
                )
            for (idx, _), assessment in zip(members, assessed):
                results[idx] = assessment

        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "calibration",
                "manycore_group_dispatch",
                address=self.target_address,
                trials=len(payloads),
                groups=n_groups,
                singletons=sum(
                    1 for g in groups.values() if len(g["members"]) == 1
                ),
            )
        return results

    def map(self, fn: Callable[[int], BlockAssessment], payloads) -> List:
        """``[fn(seed) for seed in payloads]`` through the SoA engine."""
        payloads = list(payloads)
        if not payloads:
            return []
        self._ensure_built()
        _GROUP_STATS["map_calls"] += 1
        _GROUP_STATS["payloads"] += len(payloads)
        if self._mode == "grouped":
            return self._map_grouped(payloads)
        if self._shared is None:
            obs.record_scalar_fallback(
                "manycore", self._fallback_reason or "unsupported",
                n=len(payloads),
            )
            _GROUP_STATS["scalar"] += len(payloads)
            return [fn(payload) for payload in payloads]
        _GROUP_STATS["shared"] += len(payloads)
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "calibration",
                "manycore_dispatch",
                address=self.target_address,
                trials=len(payloads),
                chunk=self.chunk_size,
                nodes_bimodal=self._shared.plan_b.n_nodes,
                nodes_gshare=self._shared.plan_g.n_nodes,
            )
        results: List[BlockAssessment] = []
        for start in range(0, len(payloads), self.chunk_size):
            results.extend(
                self._shared.assess_chunk(
                    payloads[start:start + self.chunk_size], self.pre_trial
                )
            )
        return results


class ManycoreFindPool:
    """Candidate pre-screen for ``find_block(backend="manycore")``.

    The pooled candidate search deep-copies the core, generates the
    block, and folds the target entry *inside* each trial just to throw
    most candidates away.  Rejected trials touch no shared state, so
    screening them out before the trial closure runs is bit-identical —
    and the screen needs only the block generation plus one monoid
    reduce.  With mitigations installed the index hooks are stateful and
    the screen would desynchronise them, so the pool degrades to plain
    delegation (a counted ``"manycore"`` fallback).
    """

    def __init__(
        self,
        inner,
        core: PhysicalCore,
        target_address: int,
        desired_state,
        *,
        block_branches: int,
    ) -> None:
        self._inner = inner
        self._block_branches = int(block_branches)
        self._enabled = len(core.mitigations) == 0
        if not self._enabled:
            obs.record_scalar_fallback("manycore", "mitigation")
            return
        fsm = core.predictor.bimodal.pht.fsm
        self._fsm = fsm
        self._monoid = fsm.transition_monoid()
        self._n_b = core.predictor.bimodal.pht.n_entries
        # The screen and the in-trial fold must select the same branch
        # subset, so the mask applies the preset's own index hash (the
        # zoo's fold presets pre-screen just as well as the Intel ones).
        self._index_hash = core.predictor.bimodal.index_hash
        self._tb = core.predictor.bimodal.index(target_address, 0, None)
        self._desired_name = desired_state.value

    def _passes(self, payload) -> bool:
        seed, _child = payload
        block = RandomizationBlock.generate(
            seed, n_branches=self._block_branches
        )
        monoid = self._monoid
        indices = apply_hash(self._index_hash, block.addresses, self._n_b)
        ids = monoid.outcome_id_sequence(block.outcomes[indices == self._tb])
        row = monoid.maps[monoid.reduce(ids)]
        if not (row == row[0]).all():
            return False
        return self._fsm.public_state(int(row[0])).name == self._desired_name

    def map(self, fn, payloads) -> List:
        payloads = list(payloads)
        if not self._enabled:
            return self._inner.map(fn, payloads)
        survivors = [i for i, p in enumerate(payloads) if self._passes(p)]
        results: List = [None] * len(payloads)
        if survivors:
            out = self._inner.map(fn, [payloads[i] for i in survivors])
            for i, result in zip(survivors, out):
                results[i] = result
        return results

    def find_first(self, fn, payloads, **kwargs):
        payloads = list(payloads)
        if not self._enabled:
            return self._inner.find_first(fn, payloads, **kwargs)
        survivors = [p for p in payloads if self._passes(p)]
        return self._inner.find_first(fn, survivors, **kwargs)
