"""The opaque preset oracle: probe outcomes in, hit bits out.

The fuzzer's entire measurement channel.  A :class:`PresetOracle` wraps
one :data:`repro.bpu.presets.PRESETS` entry and answers exactly one
question per program: *at each observed step, did the predictor's
direction prediction match the architectural outcome?*  Nothing else —
no table contents, no component attribution, no geometry — crosses the
boundary, mirroring what a real attacker measures through the §6.1
prime+probe channel (a hit/miss bit per probe branch).

Each program runs on a **fresh** predictor (power-up state), matching
the paper's per-experiment PHT randomisation discipline: programs are
independent trials, so the service may shard and reorder them freely.
"""

from __future__ import annotations

from typing import Tuple

from repro.bpu.presets import PRESETS
from repro.fuzz.generate import BranchProgram

__all__ = ["PresetOracle"]


class PresetOracle:
    """Opaque wrapper around one preset's hybrid predictor."""

    def __init__(self, preset: str, scale: int = 1) -> None:
        config = PRESETS[preset]()
        if scale != 1:
            config = config.scaled(scale)
        self._config = config
        self.preset = preset
        self.scale = scale

    def run(self, program: BranchProgram) -> Tuple[bool, ...]:
        """Execute ``program`` on a fresh predictor; return the hit bits.

        ``hits[j]`` is True iff the prediction at step
        ``program.observed[j]`` matched the architectural outcome.
        """
        predictor = self._config.build()
        observed = set(program.observed)
        hits = []
        for step, (address, taken) in enumerate(
            zip(program.addresses, program.outcomes)
        ):
            prediction = predictor.execute(address, taken)
            if step in observed:
                hits.append(prediction.taken == taken)
        return tuple(hits)
