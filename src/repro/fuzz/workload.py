"""The ``"fuzz"`` campaign workload: one trial = one oracle program.

Registered lazily via :data:`repro.service.workload.LAZY_WORKLOADS`, so
the service core never imports the fuzzer unless a spec names it.  The
spec's ``params`` JSON carries the generation's program descriptors;
trial ``index`` runs descriptor ``index`` against the opaque preset
oracle and returns a plain-JSON record.  Determinism contract: the
record depends only on ``(spec, index)`` — the program is decoded from
the descriptor and the oracle starts from power-up state — so shard
layout, worker count and store replays cannot change a bit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.fuzz.generate import program_from_descriptor
from repro.fuzz.oracle import PresetOracle
from repro.service.aggregate import RecordListAggregate
from repro.service.workload import Workload, register_workload

__all__ = ["fuzz_trial"]


def fuzz_trial(
    spec: Any,
    index: int,
    *,
    pre_trial: Optional[Callable[[int], None]] = None,
) -> Dict[str, Any]:
    """Run one generation program against the spec's opaque preset."""
    if pre_trial is not None:
        pre_trial(index)
    params = spec.params_dict()
    descriptors = params["descriptors"]
    if not 0 <= index < len(descriptors):
        raise IndexError(
            f"trial index {index} outside the generation's "
            f"{len(descriptors)} descriptors"
        )
    descriptor = descriptors[index]
    program = program_from_descriptor(descriptor)
    oracle = PresetOracle(spec.preset, scale=spec.scale)
    hits = oracle.run(program)
    return {
        "index": index,
        "descriptor": descriptor,
        "hits": [int(hit) for hit in hits],
    }


register_workload(
    Workload(
        name="fuzz",
        run_trial=fuzz_trial,
        aggregate=RecordListAggregate,
    )
)
