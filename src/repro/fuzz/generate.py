"""Branch-program generation for the reverse-engineering fuzzer.

A fuzz *program* is a straight-line sequence of conditional branches —
``(address, outcome)`` pairs — plus the subset of step indices whose
prediction hit/miss the oracle reports.  Programs are described by
plain-JSON **descriptors** so they travel through
:class:`~repro.service.campaign.CampaignSpec.params` unchanged;
:func:`program_from_descriptor` is the single, pure decoder both the
workload trial and the inference side use, guaranteeing the two sides
run byte-identical programs.

Three families cover the lattice's four dimensions:

``collision`` — train address ``A`` taken three times, then probe a
    single taken branch at ``B`` with only the probe observed.  ``B``
    has never executed, so it misses the identification table and is
    forced onto the 1-level predictor (§5.1); the observed bit is then
    *exactly* "do ``A`` and ``B`` collide in the bimodal PHT" — after
    ``TTT`` every FSM variant predicts taken, while a fresh ``WN``
    entry predicts not-taken.  The bit depends only on (table size,
    index hash): a clean separator for 8 of the lattice's classes.
    Constructions: ``B = A + n`` collides under ``mod`` exactly when
    the table has at most ``n`` entries; ``B = A ^ 2 ^ (2 << s)`` (with
    ``s`` the fold shift for a candidate size) collides under ``fold``
    but not ``mod``; high-bit additive probes split fold sizes.

``fsm`` — one fresh address, ``a`` taken then ``b`` not-taken, every
    step observed.  The hit sequence traces the per-entry FSM through
    saturation and decay, separating the 2-bit textbook, the
    taken-sticky Skylake and the 3-bit deep-hysteresis variants.

``history`` — one fresh address, a repeating period-``p`` pattern
    (``p-1`` taken, one not-taken), every step observed.  gshare can
    learn the pattern only when the global history covers a full
    period (``ghr_bits >= p - 1``); once the selector hands the branch
    over, the not-taken steps start hitting.  Periods chosen one past
    each candidate history length separate the GHR classes.

Program addresses stay below ``2**24``: the fold hash for the largest
candidate table reads address bits up to ~27, and keeping addresses
well inside that range keeps the constructions' collision behaviour
exact (see :mod:`repro.bpu.hashes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.bpu.hashes import _fold_shift

__all__ = [
    "BranchProgram",
    "battery_descriptors",
    "program_from_descriptor",
    "random_descriptor",
    "CANDIDATE_TABLE_SIZES",
    "CANDIDATE_HISTORY_BITS",
    "MAX_ADDRESS",
]

#: Table sizes the lattice considers (and the battery probes).
CANDIDATE_TABLE_SIZES: Tuple[int, ...] = (4096, 8192, 16384, 32768)

#: History lengths the lattice considers.
CANDIDATE_HISTORY_BITS: Tuple[int, ...] = (12, 14, 16, 20, 24)

#: Exclusive upper bound on program addresses (see module docstring).
MAX_ADDRESS: int = 1 << 24

#: Battery base address for the deterministic collision constructions.
_BASE: int = 0x041A35


@dataclass(frozen=True)
class BranchProgram:
    """One straight-line branch sequence plus its observation points."""

    #: Branch address per step.
    addresses: Tuple[int, ...]
    #: Architectural outcome per step (True = taken).
    outcomes: Tuple[bool, ...]
    #: Step indices whose prediction hit/miss the oracle reports,
    #: strictly increasing.
    observed: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.addresses) != len(self.outcomes):
            raise ValueError("addresses and outcomes must align")
        if any(not 0 <= a < MAX_ADDRESS for a in self.addresses):
            raise ValueError(f"addresses must lie in [0, {MAX_ADDRESS})")
        if list(self.observed) != sorted(set(self.observed)):
            raise ValueError("observed indices must be strictly increasing")
        if self.observed and not (
            0 <= self.observed[0] and self.observed[-1] < len(self.addresses)
        ):
            raise ValueError("observed index out of range")

    def __len__(self) -> int:
        return len(self.addresses)


def program_from_descriptor(desc: Dict[str, Any]) -> BranchProgram:
    """Decode a plain-JSON descriptor into its branch program (pure)."""
    family = desc["family"]
    if family == "collision":
        train = int(desc["train"])
        probe = int(desc["probe"])
        return BranchProgram(
            addresses=(train, train, train, probe),
            outcomes=(True, True, True, True),
            observed=(3,),
        )
    if family == "fsm":
        address = int(desc["address"])
        a = int(desc["taken"])
        b = int(desc["not_taken"])
        if not (1 <= a <= 5 and 1 <= b <= 6):
            raise ValueError("fsm family: taken in 1..5, not_taken in 1..6")
        n = a + b
        return BranchProgram(
            addresses=(address,) * n,
            outcomes=(True,) * a + (False,) * b,
            observed=tuple(range(n)),
        )
    if family == "history":
        address = int(desc["address"])
        period = int(desc["period"])
        repeats = int(desc["repeats"])
        if period < 2 or repeats < 1:
            raise ValueError("history family: period >= 2, repeats >= 1")
        pattern = (True,) * (period - 1) + (False,)
        n = period * repeats
        return BranchProgram(
            addresses=(address,) * n,
            outcomes=pattern * repeats,
            observed=tuple(range(n)),
        )
    raise ValueError(f"unknown program family {family!r}")


def _collision(train: int, probe: int) -> Dict[str, Any]:
    return {
        "family": "collision",
        "train": int(train) % MAX_ADDRESS,
        "probe": int(probe) % MAX_ADDRESS,
    }


def battery_descriptors(seed: int = 0) -> List[Dict[str, Any]]:
    """The deterministic generation-0 probe battery.

    Covers every lattice dimension at once: additive and fold-designed
    collision pairs (table size × index hash), a seeded handful of
    random collision pairs for robustness, FSM prime/decay sweeps, and
    history-period sweeps.  Deterministic given ``seed``.
    """
    descs: List[Dict[str, Any]] = []
    # Additive probes: B = A + n collides (mod) iff table <= n entries.
    for n in CANDIDATE_TABLE_SIZES:
        descs.append(_collision(_BASE, _BASE + n))
    # Fold-designed probes: B = A ^ 2 ^ (2 << s) fold-collides at the
    # size whose fold shift is s, while mod always differs (bit 1 flips).
    for n in CANDIDATE_TABLE_SIZES:
        s = _fold_shift(n)
        descs.append(_collision(_BASE, _BASE ^ 2 ^ (2 << s)))
    # High-bit additive probes: invisible to mod for every candidate
    # size, fold-visible only where the fold window still reaches.
    descs.append(_collision(_BASE, _BASE + (1 << 22)))
    descs.append(_collision(_BASE, _BASE + (1 << 23)))
    # Seeded random pairs: belt-and-braces against a construction that
    # happens to degenerate for some (size, hash) pair.
    rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(999,)))
    for _ in range(8):
        descs.append(random_descriptor(rng, family="collision"))
    # FSM prime/decay sweeps (single fresh address each).
    for i, (a, b) in enumerate([(1, 2), (2, 3), (3, 4), (4, 6), (5, 6), (2, 6)]):
        descs.append(
            {
                "family": "fsm",
                "address": 0x051000 + 0x40 * i,
                "taken": a,
                "not_taken": b,
            }
        )
    # History periods: one past each candidate GHR length (and one at
    # the bottom that every candidate can learn).
    for i, period in enumerate([13, 14, 16, 18, 22, 26]):
        descs.append(
            {
                "family": "history",
                "address": 0x062000 + 0x40 * i,
                "period": period,
                "repeats": 12,
            }
        )
    return descs


def random_descriptor(rng: np.random.Generator, family: str = None) -> Dict[str, Any]:
    """Draw one random program descriptor from ``rng``.

    ``family`` restricts the draw; by default the three families are
    drawn with collision weighted highest (it is the cheapest probe and
    the one whose diversity matters most).
    """
    if family is None:
        family = rng.choice(
            ["collision", "fsm", "history"], p=[0.5, 0.25, 0.25]
        )
    if family == "collision":
        train = int(rng.integers(0, MAX_ADDRESS))
        style = int(rng.integers(0, 3))
        if style == 0:
            # Additive at a random power-of-two stride.
            probe = train + (1 << int(rng.integers(10, 24)))
        elif style == 1:
            # XOR of a random low/high bit pair.
            probe = train ^ (1 << int(rng.integers(1, 24)))
        else:
            probe = int(rng.integers(0, MAX_ADDRESS))
        if probe % MAX_ADDRESS == train:
            probe = train ^ 1
        return _collision(train, probe)
    if family == "fsm":
        return {
            "family": "fsm",
            "address": int(rng.integers(0, MAX_ADDRESS)),
            "taken": int(rng.integers(1, 6)),
            "not_taken": int(rng.integers(1, 7)),
        }
    if family == "history":
        return {
            "family": "history",
            "address": int(rng.integers(0, MAX_ADDRESS)),
            "period": int(rng.integers(3, 28)),
            "repeats": int(rng.integers(6, 13)),
        }
    raise ValueError(f"unknown program family {family!r}")
