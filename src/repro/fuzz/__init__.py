"""``repro.fuzz`` — automated reverse engineering of the predictor zoo.

BranchScope's §6.3 reverse engineering was done by hand: craft a branch
pattern, observe probe outcomes, infer the structure.  This package
automates that methodology in the style of hardware fuzzers
(sca-fuzzer / Revizor): treat a :data:`repro.bpu.presets.PRESETS` entry
as an **opaque oracle** that only answers "did each observed branch
predict correctly?", and drive a hypothesis lattice over candidate
geometries until a single candidate explains every observation.

* :mod:`repro.fuzz.generate` — seeded randomized branch-program
  generation plus the deterministic battery of distinguishing probes
  (collision, FSM-depth and history-period families);
* :mod:`repro.fuzz.oracle` — the opaque preset wrapper (probe hit bits
  out, nothing else);
* :mod:`repro.fuzz.infer` — the hypothesis lattice (table size × index
  hash × FSM variant × history length) with an exact scalar simulator
  and a vectorized :class:`~repro.fuzz.infer.HypothesisBank`;
* :mod:`repro.fuzz.workload` — the ``"fuzz"`` campaign workload: each
  generation's programs run as service trials, aggregated into a
  :class:`~repro.service.aggregate.RecordListAggregate`;
* :mod:`repro.fuzz.campaign` — the closed loop: generate → dispatch
  through :class:`~repro.service.CampaignService` → eliminate →
  generate again, checkpointed and store-served like any other tenant.

See ``docs/MODELING.md`` §14 for the design and its soundness argument.
"""

from repro.fuzz.campaign import (
    FuzzVerdict,
    plan_generation,
    run_fuzz,
    true_hypothesis,
)
from repro.fuzz.generate import (
    BranchProgram,
    battery_descriptors,
    program_from_descriptor,
    random_descriptor,
)
from repro.fuzz.infer import (
    FSM_VARIANTS,
    Hypothesis,
    HypothesisBank,
    HypothesisLattice,
    default_lattice,
    simulate_program,
)
from repro.fuzz.oracle import PresetOracle

__all__ = [
    "BranchProgram",
    "FSM_VARIANTS",
    "FuzzVerdict",
    "Hypothesis",
    "HypothesisBank",
    "HypothesisLattice",
    "PresetOracle",
    "battery_descriptors",
    "default_lattice",
    "plan_generation",
    "program_from_descriptor",
    "random_descriptor",
    "run_fuzz",
    "simulate_program",
    "true_hypothesis",
]
