"""The closed fuzzing loop: generate → dispatch → eliminate → repeat.

:func:`run_fuzz` drives the whole reverse-engineering session.  Each
**generation** is one :class:`~repro.service.campaign.CampaignSpec`
(workload ``"fuzz"``) submitted through a
:class:`~repro.service.CampaignService`: generation 0 is the
deterministic probe battery, later generations are seeded random pools
ranked by how finely their agreed-signature partitions split the
current survivors.  Because every piece is deterministic given
``(preset, seed)`` — descriptor planning, oracle trials, aggregation,
elimination — the loop is *stateless-resumable*: re-running the same
invocation over the same service root re-derives each generation's
spec exactly, so completed generations are served from the content
store (zero trials dispatched), a killed generation resumes from its
per-campaign checkpoint, and the final verdict digest is bit-identical
at any worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.bpu.presets import PRESETS
from repro.fuzz.generate import (
    battery_descriptors,
    program_from_descriptor,
    random_descriptor,
)
from repro.fuzz.infer import (
    FSM_VARIANTS,
    Hypothesis,
    HypothesisLattice,
)
from repro.service.campaign import CampaignSpec
from repro.service.scheduler import CampaignService

__all__ = [
    "FuzzVerdict",
    "plan_generation",
    "run_fuzz",
    "true_hypothesis",
]

#: Candidate programs drawn per refinement generation...
_POOL_SIZE = 24
#: ...and the best-ranked subset actually dispatched.
_PICK = 8


def true_hypothesis(preset: str) -> Hypothesis:
    """The lattice point a preset actually occupies (ground truth).

    Derived from the preset's own :class:`~repro.bpu.presets.
    PredictorConfig` — used only to *verify* a verdict (the closed-loop
    self-test and ``repro fuzz --expect-truth``), never by the
    inference itself.
    """
    config = PRESETS[preset]()
    for name, factory in FSM_VARIANTS.items():
        if config.fsm_factory is factory:
            fsm_name = name
            break
    else:
        raise ValueError(
            f"preset {preset!r} uses an FSM outside the fuzz lattice"
        )
    return Hypothesis(
        table_entries=config.bimodal_entries,
        index_hash=config.index_hash,
        fsm_name=fsm_name,
        ghr_bits=config.ghr_bits,
    )


def plan_generation(
    lattice: HypothesisLattice, generation: int, seed: int
) -> List[Dict[str, Any]]:
    """Descriptors for one generation, deterministic given the inputs.

    Generation 0 is the fixed battery; later generations draw a seeded
    random pool and keep the :meth:`~repro.fuzz.infer.HypothesisLattice.
    partition_score` leaders — the programs whose nuisance-agreed bits
    split the surviving hypotheses most finely.
    """
    if generation == 0:
        return battery_descriptors(seed)
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(1000 + generation,))
    )
    pool = [random_descriptor(rng) for _ in range(_POOL_SIZE)]
    scored = [
        (lattice.partition_score(program_from_descriptor(desc)), -i, desc)
        for i, desc in enumerate(pool)
    ]
    scored.sort(key=lambda item: (item[0], item[1]), reverse=True)
    return [desc for _, _, desc in scored[:_PICK]]


@dataclass(frozen=True)
class FuzzVerdict:
    """Outcome of one fuzzing session."""

    preset: str
    seed: int
    scale: int
    generations_run: int
    n_trials: int
    survivors: Tuple[Hypothesis, ...]
    #: Scheduling provenance (excluded from the digest: a resumed or
    #: store-served run must digest identically to a cold one).
    resumed_shards: int
    cached_shards: int

    @property
    def converged(self) -> bool:
        return len(self.survivors) == 1

    def matches_truth(self) -> bool:
        """True iff the session converged to the preset's true geometry."""
        return self.converged and self.survivors[0] == true_hypothesis(
            self.preset
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "scale": self.scale,
            "generations_run": self.generations_run,
            "n_trials": self.n_trials,
            "survivors": [h.to_dict() for h in self.survivors],
            "resumed_shards": self.resumed_shards,
            "cached_shards": self.cached_shards,
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """Canonical SHA-256 of the science (not the scheduling path)."""
        payload = json.dumps(
            {
                "preset": self.preset,
                "seed": self.seed,
                "scale": self.scale,
                "generations_run": self.generations_run,
                "n_trials": self.n_trials,
                "survivors": [h.to_dict() for h in self.survivors],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_fuzz(
    preset: str,
    *,
    seed: int = 0,
    generations: int = 6,
    shards: int = 4,
    scale: int = 1,
    workers: Optional[Any] = None,
    root=None,
    store=None,
    checkpoint_dir=None,
    pre_trial: Optional[Callable[[int], None]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzVerdict:
    """Reverse-engineer ``preset``'s geometry through the service.

    ``root`` wires the standard service layout (``root/store`` content
    store shared with every other tenant, ``root/checkpoints`` for
    per-generation resume); ``store``/``checkpoint_dir`` override the
    pieces individually.  ``scale`` shrinks the oracle's tables by the
    usual divisor for fast smoke runs — the *lattice* always reasons at
    full-size geometry, so only ``scale=1`` verdicts are meaningful
    against :func:`true_hypothesis`.
    """
    PRESETS[preset]  # fail fast, with the registry's KeyError message
    if root is not None:
        from repro import store as repro_store
        from repro.service.server import service_dirs

        dirs = service_dirs(root)
        if store is None:
            store = repro_store.ContentStore(dirs["store"])
            repro_store.configure_store(store)
        if checkpoint_dir is None:
            checkpoint_dir = dirs["checkpoints"]
    service = CampaignService(
        workers=workers,
        store=store,
        checkpoint_dir=checkpoint_dir,
        pre_trial=pre_trial,
    )
    lattice = HypothesisLattice()
    generations_run = 0
    n_trials = 0
    resumed = 0
    cached = 0
    for generation in range(generations):
        descriptors = plan_generation(lattice, generation, seed)
        spec = CampaignSpec(
            name=f"fuzz-{preset}-g{generation}",
            tenant="fuzz",
            preset=preset,
            scale=scale,
            seed=seed,
            n_blocks=len(descriptors),
            shards=min(shards, len(descriptors)),
            workload="fuzz",
            params=json.dumps(
                {"descriptors": descriptors}, sort_keys=True
            ),
        )
        cid = service.submit(spec)
        service.run_until_complete()
        state = service.campaign(cid)
        aggregate = state.aggregate()
        resumed += state.resumed_shards
        cached += state.cached_shards
        n_trials += aggregate.n_trials
        generations_run += 1
        for record in aggregate.records():
            lattice.observe(
                program_from_descriptor(record["descriptor"]),
                record["hits"],
            )
        if log is not None:
            log(
                f"generation {generation}: {len(descriptors)} programs, "
                f"{int(lattice.alive.sum())} hypotheses alive "
                f"(resumed={state.resumed_shards} "
                f"cached={state.cached_shards})"
            )
        if lattice.converged:
            break
    return FuzzVerdict(
        preset=preset,
        seed=seed,
        scale=scale,
        generations_run=generations_run,
        n_trials=n_trials,
        survivors=lattice.survivors(),
        resumed_shards=resumed,
        cached_shards=cached,
    )
