"""Hypothesis lattice and exact simulators for the fuzzer.

A **hypothesis** names one point in the geometry lattice the fuzzer
searches: direction-table size, PHT index hash, per-entry FSM variant
and global-history length — the four dimensions BranchScope's §6.3
methodology (and the Arm follow-up papers) recover by hand.  The
default lattice is the full cross product (120 candidates), which
includes the true geometry of every :data:`repro.bpu.presets.PRESETS`
entry.

Elimination is *exact simulation*: for each hypothesis the fuzzer runs
the candidate hybrid predictor over the program and predicts the
observed hit bits.  One structural parameter is deliberately **not** in
the lattice: the selector's initial bias (1 or 2 across the zoo).  It
is handled as a nuisance by **dual simulation** — every program is
simulated under both plausible initial biases, and only bits on which
the two runs *agree* may eliminate a hypothesis.  Soundness: the true
geometry simulated under the true bias reproduces the oracle exactly
(the simulator models every structure these program families can
excite — see the family notes in :mod:`repro.fuzz.generate`), so on
any agreed bit the predicted value equals the observation and the true
hypothesis survives every observation.  Disagreeing (selector-
sensitive) bits simply carry no evidence.

Two simulator implementations with one contract:

* :func:`simulate_program` — dict-based scalar reference, one
  hypothesis at a time; the readable spec.
* :class:`HypothesisBank` — struct-of-arrays over all K hypotheses at
  once (same layout discipline as :mod:`repro.core.manycore`): the
  outcome-determined GHR trajectory and all PHT indices are
  precomputed, per-hypothesis indices are compressed to dense slots,
  FSM transitions become padded table lookups, and the per-step work is
  a handful of length-K vector ops.  ``tests/test_fuzz.py`` pins the
  two bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bpu.fsm import (
    FSMSpec,
    State,
    skylake_fsm,
    textbook_2bit_fsm,
    three_bit_fsm,
)
from repro.bpu.hashes import apply_hash, fold_history
from repro.fuzz.generate import (
    CANDIDATE_HISTORY_BITS,
    CANDIDATE_TABLE_SIZES,
    BranchProgram,
)

__all__ = [
    "FSM_VARIANTS",
    "Hypothesis",
    "HypothesisBank",
    "HypothesisLattice",
    "SELECTOR_INITIALS",
    "default_lattice",
    "simulate_program",
]

#: FSM variant name -> spec factory.  The fuzzer's third dimension.
FSM_VARIANTS: Dict[str, Callable[[], FSMSpec]] = {
    "textbook": textbook_2bit_fsm,
    "skylake": skylake_fsm,
    "three_bit": three_bit_fsm,
}

#: Selector initial biases the zoo uses; the dual-simulation nuisance set.
SELECTOR_INITIALS: Tuple[int, ...] = (1, 2)

#: Saturation value of the 3-bit choice counters (gshare takeover).
_SELECTOR_MAX = 7


@dataclass(frozen=True)
class Hypothesis:
    """One candidate geometry: the four recoverable dimensions."""

    table_entries: int
    index_hash: str
    fsm_name: str
    ghr_bits: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "table_entries": self.table_entries,
            "index_hash": self.index_hash,
            "fsm_name": self.fsm_name,
            "ghr_bits": self.ghr_bits,
        }


def default_lattice() -> Tuple[Hypothesis, ...]:
    """The full cross product: 4 sizes × 2 hashes × 3 FSMs × 5 histories."""
    return tuple(
        Hypothesis(size, index_hash, fsm_name, ghr_bits)
        for size, index_hash, fsm_name, ghr_bits in product(
            CANDIDATE_TABLE_SIZES,
            ("mod", "fold"),
            sorted(FSM_VARIANTS),
            CANDIDATE_HISTORY_BITS,
        )
    )


def simulate_program(
    program: BranchProgram,
    hypothesis: Hypothesis,
    selector_initial: int,
) -> Tuple[bool, ...]:
    """Scalar reference: the hit bits ``hypothesis`` predicts.

    An exact model of :class:`~repro.bpu.hybrid.HybridPredictor` for
    the fuzzer's program families: bimodal and gshare PHTs (both at the
    hypothesis size, behind the hypothesis index hash), the truncated
    GHR, per-address choice counters with the McFarling update, and
    identity-based cold detection (a program address is "new" until its
    first execution — equivalent to the identification table for these
    families, see :mod:`repro.fuzz.generate`).
    """
    fsm = FSM_VARIANTS[hypothesis.fsm_name]()
    init = fsm.level_for(State.WN)
    n = hypothesis.table_entries
    mask = (1 << hypothesis.ghr_bits) - 1
    bimodal: Dict[int, int] = {}
    gshare: Dict[int, int] = {}
    counters: Dict[int, int] = {}
    seen = set()
    ghr = 0
    observed = set(program.observed)
    hits: List[bool] = []
    for step, (address, taken) in enumerate(
        zip(program.addresses, program.outcomes)
    ):
        bi = int(apply_hash(hypothesis.index_hash, address, n))
        folded = fold_history(ghr & mask, hypothesis.ghr_bits, n)
        gi = int(apply_hash(hypothesis.index_hash, address ^ folded, n))
        b_level = bimodal.get(bi, init)
        g_level = gshare.get(gi, init)
        b_taken = fsm.predicts(b_level)
        g_taken = fsm.predicts(g_level)
        cold = address not in seen
        use_gshare = (
            not cold
            and counters.get(address, selector_initial) >= _SELECTOR_MAX
        )
        predicted = g_taken if use_gshare else b_taken
        if step in observed:
            hits.append(predicted == taken)
        # Resolve: train both PHTs, selector, history, seen-set.
        bimodal[bi] = fsm.step(b_level, taken)
        gshare[gi] = fsm.step(g_level, taken)
        if cold:
            counters[address] = selector_initial
        else:
            b_correct = b_taken == taken
            g_correct = g_taken == taken
            if b_correct != g_correct:
                old = counters.get(address, selector_initial)
                counters[address] = (
                    min(_SELECTOR_MAX, old + 1)
                    if g_correct
                    else max(0, old - 1)
                )
        ghr = ((ghr << 1) | int(taken)) & 0xFFFFFF
        seen.add(address)
    return tuple(hits)


class HypothesisBank:
    """All K hypotheses simulated in lockstep, struct-of-arrays.

    Two facts make the vectorization cheap: the GHR trajectory depends
    only on the program's *architectural* outcomes (known up front), so
    every gshare index is precomputable; and a program touches a
    handful of distinct (hypothesis, table) entries, so per-hypothesis
    PHT state compresses to dense slot arrays via ``np.unique``.
    """

    def __init__(self, hypotheses: Sequence[Hypothesis]) -> None:
        self.hypotheses: Tuple[Hypothesis, ...] = tuple(hypotheses)
        if not self.hypotheses:
            raise ValueError("need at least one hypothesis")
        k = len(self.hypotheses)
        self._masks = np.array(
            [(1 << h.ghr_bits) - 1 for h in self.hypotheses], dtype=np.int64
        )
        # FSM variant tables, padded to the deepest variant.
        names = sorted({h.fsm_name for h in self.hypotheses})
        specs = [FSM_VARIANTS[name]() for name in names]
        depth = max(spec.n_levels for spec in specs)
        self._predict_pad = np.zeros((len(specs), depth), dtype=bool)
        self._step_pad = np.zeros((len(specs), 2, depth), dtype=np.int8)
        init_by_variant = np.zeros(len(specs), dtype=np.int8)
        for v, spec in enumerate(specs):
            for level in range(spec.n_levels):
                self._predict_pad[v, level] = spec.predicts(level)
                self._step_pad[v, 0, level] = spec.step(level, False)
                self._step_pad[v, 1, level] = spec.step(level, True)
            init_by_variant[v] = spec.level_for(State.WN)
        vid = np.array(
            [names.index(h.fsm_name) for h in self.hypotheses], dtype=np.int64
        )
        self._vid = vid
        self._init_levels = init_by_variant[vid]
        self._krange = np.arange(k)

    def __len__(self) -> int:
        return len(self.hypotheses)

    def _indices(self, program: BranchProgram) -> Tuple[np.ndarray, np.ndarray]:
        """Precompute bimodal and gshare PHT indices, shape (T, K) each."""
        t = len(program)
        k = len(self.hypotheses)
        addresses = np.array(program.addresses, dtype=np.int64)
        # Outcome-determined history trajectory, truncated at the widest
        # candidate mask (24 bits) — per-hypothesis masking narrows it.
        history = np.zeros(t, dtype=np.int64)
        value = 0
        for step, taken in enumerate(program.outcomes):
            history[step] = value
            value = ((value << 1) | int(taken)) & 0xFFFFFF
        bidx = np.empty((t, k), dtype=np.int64)
        gidx = np.empty((t, k), dtype=np.int64)
        for j, hyp in enumerate(self.hypotheses):
            bidx[:, j] = apply_hash(
                hyp.index_hash, addresses, hyp.table_entries
            )
            folded = fold_history(
                history & self._masks[j], hyp.ghr_bits, hyp.table_entries
            )
            gidx[:, j] = apply_hash(
                hyp.index_hash, addresses ^ folded, hyp.table_entries
            )
        return bidx, gidx

    @staticmethod
    def _slots(indices: np.ndarray) -> np.ndarray:
        """Compress raw per-column PHT indices to dense slot ids."""
        t, k = indices.shape
        slots = np.empty((t, k), dtype=np.int64)
        for j in range(k):
            _, slots[:, j] = np.unique(indices[:, j], return_inverse=True)
        return slots

    def signatures(
        self, program: BranchProgram, selector_initial: int
    ) -> np.ndarray:
        """Predicted hit bits for every hypothesis, shape (K, observed)."""
        k = len(self.hypotheses)
        bslot, gslot = map(self._slots, self._indices(program))
        levels_b = np.broadcast_to(
            self._init_levels[:, None], (k, int(bslot.max()) + 1)
        ).copy()
        levels_g = np.broadcast_to(
            self._init_levels[:, None], (k, int(gslot.max()) + 1)
        ).copy()
        # Per-address choice counters (addresses shared by hypotheses).
        addresses = np.array(program.addresses, dtype=np.int64)
        unique_addresses, aid = np.unique(addresses, return_inverse=True)
        counters = np.full(
            (k, len(unique_addresses)), selector_initial, dtype=np.int8
        )
        seen = np.zeros(len(unique_addresses), dtype=bool)
        observed = set(program.observed)
        hits = np.empty((k, len(program.observed)), dtype=bool)
        out = 0
        krange = self._krange
        for step, taken in enumerate(program.outcomes):
            bs = bslot[step]
            gs = gslot[step]
            b_level = levels_b[krange, bs]
            g_level = levels_g[krange, gs]
            b_taken = self._predict_pad[self._vid, b_level]
            g_taken = self._predict_pad[self._vid, g_level]
            a = aid[step]
            cold = not seen[a]
            use_gshare = (
                np.zeros(k, dtype=bool)
                if cold
                else counters[:, a] >= _SELECTOR_MAX
            )
            predicted = np.where(use_gshare, g_taken, b_taken)
            if step in observed:
                hits[:, out] = predicted == taken
                out += 1
            o = int(taken)
            levels_b[krange, bs] = self._step_pad[self._vid, o, b_level]
            levels_g[krange, gs] = self._step_pad[self._vid, o, g_level]
            if cold:
                counters[:, a] = selector_initial
            else:
                b_correct = b_taken == taken
                g_correct = g_taken == taken
                move = b_correct != g_correct
                delta = np.where(g_correct, 1, -1).astype(np.int8)
                updated = np.clip(counters[:, a] + delta, 0, _SELECTOR_MAX)
                counters[:, a] = np.where(move, updated, counters[:, a])
            seen[a] = True
        return hits


class HypothesisLattice:
    """Survivor tracking: hypotheses not yet refuted by any observation.

    ``observe`` applies one program's oracle hits with the dual-
    simulation nuisance masking described in the module docstring;
    ``partition_score`` ranks a *candidate* program by how finely its
    agreed bits split the current survivors (the fuzzer's generation
    planner maximises it).
    """

    def __init__(
        self, hypotheses: Optional[Sequence[Hypothesis]] = None
    ) -> None:
        self.bank = HypothesisBank(
            default_lattice() if hypotheses is None else hypotheses
        )
        self.alive = np.ones(len(self.bank), dtype=bool)

    def _masked(
        self, program: BranchProgram
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Signatures under the low nuisance bias, plus the agreed mask."""
        first = self.bank.signatures(program, SELECTOR_INITIALS[0])
        mask = np.ones_like(first)
        for bias in SELECTOR_INITIALS[1:]:
            mask &= first == self.bank.signatures(program, bias)
        return first, mask

    def observe(
        self, program: BranchProgram, hits: Iterable[object]
    ) -> int:
        """Eliminate hypotheses refuted by ``hits``; returns survivors."""
        observed = np.array([bool(int(h)) for h in hits], dtype=bool)
        signatures, mask = self._masked(program)
        if observed.shape[0] != signatures.shape[1]:
            raise ValueError(
                f"got {observed.shape[0]} hit bits for a program with "
                f"{signatures.shape[1]} observed steps"
            )
        refuted = np.any(mask & (signatures != observed[None, :]), axis=1)
        self.alive &= ~refuted
        return int(self.alive.sum())

    def partition_score(self, program: BranchProgram) -> int:
        """Distinct agreed-bit signatures among survivors (higher = more
        discriminating; 1 means the program cannot eliminate anything)."""
        if not self.alive.any():
            return 0
        signatures, mask = self._masked(program)
        keys = np.where(mask, signatures.astype(np.int8), np.int8(2))
        rows = keys[self.alive]
        return len({row.tobytes() for row in rows})

    def survivors(self) -> Tuple[Hypothesis, ...]:
        return tuple(
            h for h, alive in zip(self.bank.hypotheses, self.alive) if alive
        )

    @property
    def converged(self) -> bool:
        return int(self.alive.sum()) == 1
