"""Physical core: shared BPU + execution of branch instructions.

This is the stage on which the whole attack plays out.  One
:class:`PhysicalCore` owns a single :class:`~repro.bpu.hybrid.HybridPredictor`
(the BPU is shared at the physical-core level, paper §3), a cycle clock,
a timing model, an instruction cache and a per-process performance
counter file.  Victim, spy and noise processes all execute their branches
through :meth:`PhysicalCore.execute_branch`; whatever they do to the
shared predictor state is visible to everyone else — that is the channel.

Mitigations from :mod:`repro.mitigations` hook into execution here: index
randomisation and partitioning change which PHT entry a process touches,
static-prediction protection bypasses the BPU entirely for marked
branches, the stochastic-FSM defense corrupts training updates, and the
noisy counter/timer defenses fuzz what the attacker reads back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.bpu.hybrid import HybridPredictor, Prediction
from repro.bpu.presets import PredictorConfig
from repro.cpu.clock import CycleClock
from repro.cpu.counters import CounterKind, PerformanceCounters
from repro.cpu.icache import InstructionCache
from repro.cpu.process import Process
from repro.cpu.timing import TimingModel
from repro.cpu.tsc import TimestampCounter
from repro.mitigations.base import Mitigation, MitigationStack
from repro.obs import trace as obs

__all__ = ["BranchExecution", "PhysicalCore"]


@dataclass(frozen=True)
class BranchExecution:
    """Everything observable (and some things not) about one branch.

    ``latency`` is the *observable* rdtscp-bracketed measurement in cycles
    (already passed through any noisy-timer mitigation); attacker code
    must treat it as its timing channel.  ``mispredicted`` is ground truth
    that an attacker may only learn via its own performance counters.
    """

    pid: int
    address: int
    taken: bool
    #: Final predicted direction.
    predicted_taken: bool
    #: True iff prediction matched the actual outcome.
    hit: bool
    #: The full prediction record, or None for statically handled
    #: (mitigation-protected) branches.
    prediction: Optional[Prediction]
    #: Whether the instruction fetch missed the i-cache (first execution).
    cold_fetch: bool
    #: Observable latency in cycles.
    latency: int
    #: Cycle the branch started executing.
    start_cycle: int
    #: True when the static-prediction mitigation handled this branch.
    static: bool = False
    #: True when a taken branch had no (or a wrong) BTB target — the
    #: front-end redirect the BTB-based prior-work attacks time.
    btb_miss: bool = False

    @property
    def mispredicted(self) -> bool:
        """Convenience inverse of :attr:`hit`."""
        return not self.hit


class PhysicalCore:
    """One physical core with two SMT contexts sharing a BPU."""

    def __init__(
        self,
        config: PredictorConfig,
        *,
        timing: Optional[TimingModel] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Build a core from a microarchitecture preset.

        Exactly one of ``rng``/``seed`` may be given; with neither, a
        fresh nondeterministic generator is used (tests always pass a
        seed).
        """
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        self.config = config
        self.predictor: HybridPredictor = config.build()
        self.timing = timing or TimingModel()
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.clock = CycleClock()
        self.tsc = TimestampCounter(self.clock)
        self.icache = InstructionCache()
        self.mitigations = MitigationStack()
        self._counters: Dict[int, PerformanceCounters] = {}

    # -- process / counter management ---------------------------------------

    def counters_for(self, process: Process) -> PerformanceCounters:
        """The raw (simulator-side) counter file of ``process``."""
        if process.pid not in self._counters:
            self._counters[process.pid] = PerformanceCounters()
        return self._counters[process.pid]

    def read_counter(self, process: Process, kind: CounterKind) -> int:
        """Attacker-side counter read: exact unless a noisy-counter
        mitigation is installed."""
        value = self.counters_for(process).read(kind)
        perturbed = self.mitigations.perturb_counter(self.rng, value)
        tracer = obs.TRACER
        if tracer is not None and perturbed != value:
            tracer.emit(
                "mitigation",
                "counter_perturbed",
                cycle=self.clock.now,
                pid=process.pid,
                kind=kind.name,
                raw=int(value),
                observed=int(perturbed),
            )
        return perturbed

    def install_mitigation(self, mitigation: Mitigation) -> None:
        """Activate a §10 defense on this core."""
        self.mitigations.install(mitigation)

    # -- branch execution -----------------------------------------------------

    #: Taken branches without an explicit target jump here-relative; any
    #: fixed displacement works, the BTB only needs *a* target to cache.
    DEFAULT_TARGET_OFFSET = 0x40

    def execute_branch(
        self,
        process: Process,
        address: int,
        taken: bool,
        target: Optional[int] = None,
    ) -> BranchExecution:
        """Execute one conditional branch of ``process`` at ``address``.

        Runs the full predict → resolve → train pipeline against the
        shared BPU, charges the modelled latency to the clock, and
        updates the process's performance counters.  ``target`` is the
        branch's taken-target; conditional branches have a static target,
        so a deterministic default is supplied when omitted.
        """
        address = int(address)
        taken = bool(taken)
        if target is None:
            target = address + self.DEFAULT_TARGET_OFFSET
        start_cycle = self.clock.now
        cold_fetch = not self.icache.fetch(address)

        btb_miss = False
        train_outcome = taken
        if self.mitigations.suppresses_prediction(process, address):
            # §10.2 "Removing prediction for sensitive branches": static
            # not-taken prediction, no BPU state is read or written.
            predicted = False
            hit = predicted == taken
            prediction: Optional[Prediction] = None
            static = True
            btb_miss = taken  # unpredicted target: always a late redirect
        else:
            key = self.mitigations.pht_key(process)
            partition = self.mitigations.partition(process)
            prediction = self.predictor.predict(address, key, partition)
            predicted = prediction.taken
            hit = predicted == taken
            # A taken branch pays the late-redirect cost when the BTB
            # held no (or the wrong) target for it.
            btb_miss = taken and prediction.target != target
            # The stochastic-FSM defense may train with a corrupted
            # outcome; the *architectural* outcome (and thus hit/miss,
            # GHR ordering, BTB allocation) still uses the true one, so
            # only PHT contents become unreliable for the attacker.
            train_outcome = self.mitigations.update_outcome(self.rng, taken)
            self.predictor.update(
                address,
                taken,
                prediction,
                target=target,
                train_outcome=train_outcome,
            )
            static = False

        latency = self.timing.sample(
            self.rng,
            mispredicted=not hit,
            cold=cold_fetch,
            taken=taken,
            btb_miss=btb_miss,
        )
        self.clock.advance(latency)
        observable_latency = self.mitigations.perturb_timing(self.rng, latency)

        counters = self.counters_for(process)
        counters.increment(CounterKind.BRANCHES)
        if not hit:
            counters.increment(CounterKind.BRANCH_MISSES)
        counters.increment(CounterKind.CYCLES, latency)

        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "branch",
                "execute",
                cycle=start_cycle,
                pid=process.pid,
                address=address,
                taken=taken,
                predicted=predicted,
                mispredicted=not hit,
                static=static,
                cold=cold_fetch,
                btb_miss=btb_miss,
                dur=latency,
            )
            if static:
                tracer.emit(
                    "mitigation",
                    "static_prediction",
                    cycle=start_cycle,
                    pid=process.pid,
                    address=address,
                )
            elif train_outcome != taken:
                tracer.emit(
                    "mitigation",
                    "training_corrupted",
                    cycle=start_cycle,
                    pid=process.pid,
                    address=address,
                    taken=taken,
                    trained=train_outcome,
                )
            metrics = tracer.metrics
            if metrics is not None:
                metrics.counter(
                    "repro_branches_total",
                    "conditional branches executed",
                    labels=("pid",),
                ).inc(pid=process.pid)
                if not hit:
                    metrics.counter(
                        "repro_branch_misses_total",
                        "mispredicted conditional branches",
                        labels=("pid",),
                    ).inc(pid=process.pid)

        return BranchExecution(
            pid=process.pid,
            address=address,
            taken=taken,
            predicted_taken=predicted,
            hit=hit,
            prediction=prediction,
            cold_fetch=cold_fetch,
            latency=observable_latency,
            start_cycle=start_cycle,
            static=static,
            btb_miss=btb_miss,
        )

    def execute_branches(
        self,
        process: Process,
        branches: Iterable,
    ) -> List[BranchExecution]:
        """Execute a sequence of ``(address, taken)`` pairs."""
        return [
            self.execute_branch(process, address, taken)
            for address, taken in branches
        ]

    # -- checkpointing ----------------------------------------------------------

    def checkpoint(self, *, full: bool = False) -> dict:
        """Deep copy of all microarchitectural state.

        Used by experiments that need to probe many addresses from one
        prepared state (the §6.3 PHT scan probes destructively, so each
        probe runs against a restored copy).  Does not capture the RNG:
        noise stays fresh across restores, as it would across repeated
        physical runs.

        Snapshots carry per-component write-journal marks, making
        :meth:`restore` cost O(state touched since the checkpoint); pass
        ``full=True`` to force the seed's plain full-copy snapshots (the
        delta-restore differential reference — both paths restore
        identical state, pinned by ``tests/test_batch_probe.py``).
        """
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "snapshot",
                "checkpoint",
                cycle=self.clock.now,
                full=full,
                processes=len(self._counters),
            )
        return {
            "predictor": self.predictor.snapshot(full=full),
            "icache": self.icache.snapshot(full=full),
            "clock": self.clock.snapshot(),
            "counters": {
                pid: counters.snapshot(full=full)
                for pid, counters in self._counters.items()
            },
        }

    def restore(self, checkpoint: dict) -> None:
        """Restore state captured by :meth:`checkpoint`.

        A true rollback: counter files of processes first seen *after*
        the checkpoint are dropped, so nothing accumulated since leaks
        through (a fresh zeroed file is allocated on next use).
        """
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit("snapshot", "restore", cycle=self.clock.now)
        self.predictor.restore(checkpoint["predictor"])
        self.icache.restore(checkpoint["icache"])
        self.clock.restore(checkpoint["clock"])
        for pid in list(self._counters):
            if pid not in checkpoint["counters"]:
                del self._counters[pid]
        for pid, snapshot in checkpoint["counters"].items():
            if pid not in self._counters:
                self._counters[pid] = PerformanceCounters()
            self._counters[pid].restore(snapshot)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PhysicalCore(config={self.config.name!r}, cycle={self.clock.now})"
