"""Branch performance counters (paper §7).

The spy in the paper's main implementation brackets each probe branch
with reads of the hardware branch-misprediction counter ("the attacker
process relies on hardware performance counters for precise detection of
correct and incorrect prediction events").  We model a per-process
counter file: each simulated process accumulates its own executed-branch
and mispredicted-branch counts, exactly like per-thread PMCs; a process
can read only its own counters.

The §10.2 "add noise to the performance counters" mitigation is a wrapper
(:mod:`repro.mitigations.noisy_counters`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = ["CounterKind", "CounterSample", "PerformanceCounters"]


class CounterKind(enum.Enum):
    """The performance events the simulator exposes."""

    BRANCHES = "branch_instructions_retired"
    BRANCH_MISSES = "branch_mispredictions_retired"
    CYCLES = "cycles"


@dataclass(frozen=True)
class CounterSample:
    """A point-in-time reading of every counter."""

    branches: int
    branch_misses: int
    cycles: int

    def delta(self, earlier: "CounterSample") -> "CounterSample":
        """Difference ``self - earlier`` (the usual PMC usage pattern)."""
        return CounterSample(
            branches=self.branches - earlier.branches,
            branch_misses=self.branch_misses - earlier.branch_misses,
            cycles=self.cycles - earlier.cycles,
        )


class PerformanceCounters:
    """Counter file for one process/hardware context."""

    def __init__(self) -> None:
        self._counts: Dict[CounterKind, int] = {kind: 0 for kind in CounterKind}

    def increment(self, kind: CounterKind, amount: int = 1) -> None:
        """Record ``amount`` occurrences of an event (simulator-side)."""
        if amount < 0:
            raise ValueError("counters only count forward")
        self._counts[kind] += amount

    def read(self, kind: CounterKind) -> int:
        """Read one raw counter (attacker-side)."""
        return self._counts[kind]

    def sample(self) -> CounterSample:
        """Read all counters at once."""
        return CounterSample(
            branches=self._counts[CounterKind.BRANCHES],
            branch_misses=self._counts[CounterKind.BRANCH_MISSES],
            cycles=self._counts[CounterKind.CYCLES],
        )

    def reset(self) -> None:
        """Zero every counter."""
        for kind in self._counts:
            self._counts[kind] = 0

    def snapshot(self) -> Dict[CounterKind, int]:
        """Copy of the raw counts (pair with :meth:`restore`)."""
        return dict(self._counts)

    def restore(self, snapshot: Dict[CounterKind, int]) -> None:
        """Restore counts captured by :meth:`snapshot`."""
        self._counts = dict(snapshot)
