"""Branch performance counters (paper §7).

The spy in the paper's main implementation brackets each probe branch
with reads of the hardware branch-misprediction counter ("the attacker
process relies on hardware performance counters for precise detection of
correct and incorrect prediction events").  We model a per-process
counter file: each simulated process accumulates its own executed-branch
and mispredicted-branch counts, exactly like per-thread PMCs; a process
can read only its own counters.

The §10.2 "add noise to the performance counters" mitigation is a wrapper
(:mod:`repro.mitigations.noisy_counters`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "CounterKind",
    "CounterSample",
    "CounterSnapshot",
    "PerformanceCounters",
]

#: Process-wide monotone clock stamping counter-file versions.  A version
#: value is handed out at most once, so two counter files (or one file at
#: two times) share a version only when one was restored from the other's
#: snapshot — in which case their contents are identical by construction.
#: That makes ``restore`` of an unchanged file a comparison, not a copy.
_VERSION_CLOCK = itertools.count()


class CounterKind(enum.Enum):
    """The performance events the simulator exposes."""

    BRANCHES = "branch_instructions_retired"
    BRANCH_MISSES = "branch_mispredictions_retired"
    CYCLES = "cycles"


@dataclass(frozen=True)
class CounterSample:
    """A point-in-time reading of every counter."""

    branches: int
    branch_misses: int
    cycles: int

    def delta(self, earlier: "CounterSample") -> "CounterSample":
        """Difference ``self - earlier`` (the usual PMC usage pattern)."""
        return CounterSample(
            branches=self.branches - earlier.branches,
            branch_misses=self.branch_misses - earlier.branch_misses,
            cycles=self.cycles - earlier.cycles,
        )


class CounterSnapshot(Dict[CounterKind, int]):
    """A counter snapshot: a plain dict plus the file's version stamp.

    Subclassing ``dict`` keeps the seed API intact (callers index and
    copy snapshots); the stamp lets ``restore`` skip the copy when the
    file provably has not moved since the snapshot was taken.
    """

    version: int

    def __init__(self, counts: Dict[CounterKind, int], version: int) -> None:
        super().__init__(counts)
        self.version = version


class PerformanceCounters:
    """Counter file for one process/hardware context."""

    def __init__(self) -> None:
        self._counts: Dict[CounterKind, int] = {kind: 0 for kind in CounterKind}
        self._version = next(_VERSION_CLOCK)

    def increment(self, kind: CounterKind, amount: int = 1) -> None:
        """Record ``amount`` occurrences of an event (simulator-side)."""
        if amount < 0:
            raise ValueError("counters only count forward")
        self._counts[kind] += amount
        self._version = next(_VERSION_CLOCK)

    def read(self, kind: CounterKind) -> int:
        """Read one raw counter (attacker-side)."""
        return self._counts[kind]

    def sample(self) -> CounterSample:
        """Read all counters at once."""
        return CounterSample(
            branches=self._counts[CounterKind.BRANCHES],
            branch_misses=self._counts[CounterKind.BRANCH_MISSES],
            cycles=self._counts[CounterKind.CYCLES],
        )

    def reset(self) -> None:
        """Zero every counter."""
        for kind in self._counts:
            self._counts[kind] = 0
        self._version = next(_VERSION_CLOCK)

    def snapshot(self, *, full: bool = False) -> Dict[CounterKind, int]:
        """Copy of the raw counts (pair with :meth:`restore`).

        Stamped with the file's version so an unmoved file restores for
        free; ``full=True`` returns an unstamped plain dict (the
        differential reference path).
        """
        if full:
            return dict(self._counts)
        return CounterSnapshot(self._counts, self._version)

    def restore(self, snapshot: Dict[CounterKind, int]) -> None:
        """Restore counts captured by :meth:`snapshot`.

        When the snapshot's version stamp still matches the file's, no
        mutation has happened since the snapshot (versions are handed out
        once) and the restore is a no-op.
        """
        version = getattr(snapshot, "version", None)
        if version is not None and version == self._version:
            return
        self._counts = dict(snapshot)
        self._version = (
            version if version is not None else next(_VERSION_CLOCK)
        )
