"""Instruction-cache presence model.

Paper §8: "to eliminate the impact of caching on these measurements, we
executed each branch instance two times, but only recorded the latency
during the second execution, after the instruction has been placed in
the cache."  The only i-cache property the attack interacts with is
*presence* — whether a branch's cache line has been fetched recently —
so we model a direct-mapped presence cache at 64-byte line granularity
rather than a full memory hierarchy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["InstructionCache"]


class InstructionCache:
    """Direct-mapped, tagged line-presence cache."""

    def __init__(
        self, n_sets: int = 512, line_bytes: int = 64, tag_bits: int = 20
    ) -> None:
        if n_sets <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        self.n_sets = int(n_sets)
        self.line_bytes = int(line_bytes)
        self.tag_bits = int(tag_bits)
        self._tag_mask = (1 << self.tag_bits) - 1
        self.tags = np.zeros(self.n_sets, dtype=np.int64)
        self.valid = np.zeros(self.n_sets, dtype=bool)

    def _split(self, address: int) -> Tuple[int, int]:
        line = int(address) // self.line_bytes
        return line % self.n_sets, (line // self.n_sets) & self._tag_mask

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is cached."""
        index, tag = self._split(address)
        return bool(self.valid[index]) and int(self.tags[index]) == tag

    def fetch(self, address: int) -> bool:
        """Access ``address``: returns True on hit, fills the line on miss."""
        index, tag = self._split(address)
        hit = bool(self.valid[index]) and int(self.tags[index]) == tag
        self.valid[index] = True
        self.tags[index] = tag
        return hit

    def flush(self) -> None:
        """Invalidate every line (``wbinvd``-style; used in experiments)."""
        self.valid.fill(False)

    def evict(self, address: int) -> None:
        """Invalidate the set holding ``address`` (``clflush``-style)."""
        index, _ = self._split(address)
        self.valid[index] = False

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of (tags, valid) — pair with :meth:`restore`."""
        return self.tags.copy(), self.valid.copy()

    def restore(self, snapshot: Tuple[np.ndarray, np.ndarray]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        tags, valid = snapshot
        np.copyto(self.tags, tags)
        np.copyto(self.valid, valid)
