"""Instruction-cache presence model.

Paper §8: "to eliminate the impact of caching on these measurements, we
executed each branch instance two times, but only recorded the latency
during the second execution, after the instruction has been placed in
the cache."  The only i-cache property the attack interacts with is
*presence* — whether a branch's cache line has been fetched recently —
so we model a direct-mapped presence cache at 64-byte line granularity
rather than a full memory hierarchy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.snapshot import SnapshotTuple, WriteJournal

__all__ = ["InstructionCache"]


class InstructionCache:
    """Direct-mapped, tagged line-presence cache."""

    def __init__(
        self, n_sets: int = 512, line_bytes: int = 64, tag_bits: int = 20
    ) -> None:
        if n_sets <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        self.n_sets = int(n_sets)
        self.line_bytes = int(line_bytes)
        self.tag_bits = int(tag_bits)
        self._tag_mask = (1 << self.tag_bits) - 1
        self.tags = np.zeros(self.n_sets, dtype=np.int64)
        self.valid = np.zeros(self.n_sets, dtype=bool)
        self._journal = WriteJournal(cap=max(256, self.n_sets // 8), name="icache")

    def _split(self, address: int) -> Tuple[int, int]:
        line = int(address) // self.line_bytes
        return line % self.n_sets, (line // self.n_sets) & self._tag_mask

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is cached."""
        index, tag = self._split(address)
        return bool(self.valid[index]) and int(self.tags[index]) == tag

    def fetch(self, address: int) -> bool:
        """Access ``address``: returns True on hit, fills the line on miss.

        A hit leaves the line entry bit-identical, so only misses write
        (and journal) — the warm-loop hot path stays read-only.
        """
        index, tag = self._split(address)
        if bool(self.valid[index]) and int(self.tags[index]) == tag:
            return True
        if self._journal.armed:
            self._journal.record(
                (index, int(self.tags[index]), bool(self.valid[index]))
            )
        self.valid[index] = True
        self.tags[index] = tag
        return False

    def flush(self) -> None:
        """Invalidate every line (``wbinvd``-style; used in experiments)."""
        self._journal.invalidate()
        self.valid.fill(False)

    def evict(self, address: int) -> None:
        """Invalidate the set holding ``address`` (``clflush``-style)."""
        index, _ = self._split(address)
        if self._journal.armed:
            self._journal.record(
                (index, int(self.tags[index]), bool(self.valid[index]))
            )
        self.valid[index] = False

    def snapshot(self, *, full: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of (tags, valid) — pair with :meth:`restore`.

        Carries a journal mark enabling O(lines touched) restore;
        ``full=True`` omits it (the differential reference path).
        """
        mark = None if full else self._journal.mark()
        return SnapshotTuple((self.tags.copy(), self.valid.copy()), mark)

    def restore(self, snapshot: Tuple[np.ndarray, np.ndarray]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        mark = getattr(snapshot, "journal_mark", None)
        if mark is not None:
            tail = self._journal.rewind(mark)
            if tail is not None:
                for index, tag, valid in tail:
                    self.tags[index] = tag
                    self.valid[index] = valid
                return
        self._journal.invalidate()
        tags, valid = snapshot
        np.copyto(self.tags, tags)
        np.copyto(self.valid, valid)
