"""Timestamp counter: the unprivileged measurement channel (paper §8).

When the attacker cannot read branch-misprediction performance counters
(which need at least partially elevated privileges), the paper falls back
to ``rdtsc``/``rdtscp``, which "provide user processes with direct access
to timekeeping hardware, bypassing system software layers".  We model a
TSC read as the current cycle clock plus a small serialisation overhead.

The §10.2 "noisy timer" mitigation wraps this class (see
:mod:`repro.mitigations.noisy_timer`).
"""

from __future__ import annotations

import numpy as np

from repro.cpu.clock import CycleClock

__all__ = ["TimestampCounter"]


class TimestampCounter:
    """``rdtscp``-style reads of the core's cycle clock."""

    def __init__(
        self,
        clock: CycleClock,
        read_overhead: int = 0,
    ) -> None:
        """``read_overhead`` cycles are consumed by the read itself.

        The paper's plotted latencies *include* the measurement overhead,
        so the default timing model folds it into ``base_latency`` and
        this defaults to zero; set it explicitly to study overhead
        sensitivity.
        """
        if read_overhead < 0:
            raise ValueError("read_overhead cannot be negative")
        self.clock = clock
        self.read_overhead = int(read_overhead)

    def read(self) -> int:
        """Execute one TSC read; returns the timestamp."""
        value = self.clock.now
        if self.read_overhead:
            self.clock.advance(self.read_overhead)
        return value

    def time(self, fn, *args, **kwargs):
        """Time a callable with two TSC reads; returns (result, cycles).

        Both reads' serialisation overhead is charged to the measured
        interval symmetrically: the opening read's timestamp precedes its
        own overhead, so the closing boundary must be taken *after* the
        closing read's overhead has elapsed — the measured cost of a
        no-op is exactly ``2 * read_overhead``.
        """
        start = self.read()
        result = fn(*args, **kwargs)
        self.read()
        end = self.clock.now
        return result, end - start
