"""CPU execution substrate.

Models the parts of the machine the attack observes through: a cycle
clock, a per-branch latency model, an rdtscp-style timestamp counter
(paper §8), per-process branch performance counters (paper §7), a small
instruction-cache presence model (the warm/cold distinction behind the
double-measurement protocol of §8), a process abstraction and the
physical core that ties a shared :class:`~repro.bpu.hybrid.HybridPredictor`
to two hardware thread contexts.
"""

from repro.cpu.clock import CycleClock
from repro.cpu.core import BranchExecution, PhysicalCore
from repro.cpu.counters import CounterKind, PerformanceCounters
from repro.cpu.icache import InstructionCache
from repro.cpu.process import Process
from repro.cpu.timing import TimingModel
from repro.cpu.tsc import TimestampCounter

__all__ = [
    "BranchExecution",
    "CounterKind",
    "CycleClock",
    "InstructionCache",
    "PerformanceCounters",
    "PhysicalCore",
    "Process",
    "TimestampCounter",
    "TimingModel",
]
