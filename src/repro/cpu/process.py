"""Process model.

A process is the unit of isolation the attack crosses: victim and spy are
distinct processes sharing a physical core (paper §3's co-residency
assumption).  A process carries

* an identity (``pid``/``name``) used to key per-process performance
  counters and mitigation state,
* a code *load base*, so ASLR (paper §9.2) can relocate its branches,
* an ``enclave`` flag marking SGX-protected processes (paper §9), and
* a set of ``protected_branches`` for the §10.2 "remove prediction for
  sensitive branches" mitigation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Set

__all__ = ["Process"]

_pid_counter = itertools.count(1)


@dataclass(eq=False)
class Process:
    """One schedulable software entity."""

    name: str
    #: Virtual address the process's code is loaded at.  Branch addresses
    #: used with :meth:`branch_address` are link-time offsets relocated by
    #: this base, so enabling ASLR is just randomising it.
    load_base: int = 0x400000
    #: Link-time base the offsets in the binary are expressed against.
    link_base: int = 0x400000
    #: Whether the process runs inside an SGX enclave (paper §9).
    enclave: bool = False
    #: Virtual addresses of branches the §10.2 "no prediction for
    #: sensitive branches" mitigation protects.
    protected_branches: Set[int] = field(default_factory=set)
    pid: int = field(default_factory=lambda: next(_pid_counter))

    def branch_address(self, link_address: int) -> int:
        """Run-time virtual address of a branch linked at ``link_address``."""
        return link_address - self.link_base + self.load_base

    def protect_branch(self, address: int) -> None:
        """Mark the branch at run-time ``address`` as prediction-protected."""
        self.protected_branches.add(int(address))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "enclave" if self.enclave else "process"
        return f"<{kind} {self.name!r} pid={self.pid} base={self.load_base:#x}>"

    def __hash__(self) -> int:
        return hash(self.pid)
