"""Cycle clock: the core's monotonic time base.

Every simulated branch execution advances the clock by its modelled
latency; the :class:`~repro.cpu.tsc.TimestampCounter` reads it the way
``rdtscp`` reads the hardware TSC (paper §8).
"""

from __future__ import annotations

__all__ = ["CycleClock"]


class CycleClock:
    """A monotonically increasing cycle counter."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start negative")
        self._cycles = int(start)

    @property
    def now(self) -> int:
        """Current cycle count."""
        return self._cycles

    def advance(self, cycles: int) -> int:
        """Move time forward by ``cycles``; returns the new time."""
        if cycles < 0:
            raise ValueError("time cannot move backwards")
        self._cycles += int(cycles)
        return self._cycles

    def snapshot(self) -> int:
        """Current time (pair with :meth:`restore`)."""
        return self._cycles

    def restore(self, snapshot: int) -> None:
        """Rewind/advance to a previously captured time.

        Only the simulator's checkpoint machinery uses this; nothing in
        the modelled machine can set the TSC.
        """
        self._cycles = int(snapshot)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CycleClock(now={self._cycles})"
