"""Per-branch latency model, calibrated to the paper's Figures 7-9.

The paper measures single branch instructions with ``rdtscp`` and finds:

* latencies in roughly the 60-200 cycle band (Figure 7 — the band
  includes the measurement overhead of the two surrounding ``rdtscp``
  instructions),
* mispredicted branches noticeably slower on average than correctly
  predicted ones, for both taken and not-taken actual outcomes,
* the *first* execution of a branch much noisier than the second because
  of instruction-fetch effects — §8 reports 20-30% detection error on the
  first measurement vs ~10% (single sample) on the second,
* heavy upper tails from interrupts/SMIs and other system activity.

The model is ``latency = base + miss_penalty·mispredicted +
cold_penalty·cold + taken_extra·taken + Gaussian jitter + occasional
heavy-tail outlier``.  The defaults are calibrated so the Figure 7/8/9
benches land in the paper's reported bands; they are synthetic numbers,
not measurements (see DESIGN.md "Fidelity notes").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimingModel"]


@dataclass(frozen=True)
class TimingModel:
    """Stochastic branch-latency generator."""

    #: Cycles for a correctly predicted, warm, not-taken branch, including
    #: the serialising measurement overhead the paper's numbers include.
    base_latency: float = 72.0
    #: Extra cycles when the direction was mispredicted: pipeline flush
    #: plus wrong-path fetch (paper §8: "significant cycles lost for
    #: restarting the pipeline").
    miss_penalty: float = 38.0
    #: Extra cycles when the branch instruction is not yet in the
    #: instruction cache (first execution; §8's motivation for measuring
    #: the second execution).
    cold_penalty: float = 46.0
    #: Small extra cost of a taken branch (redirected fetch).
    taken_extra: float = 3.0
    #: Extra cycles when a *taken* branch misses the BTB: the target is
    #: unknown at fetch, so the front end redirects late.  This is the
    #: observable the prior-work BTB attacks time
    #: (:mod:`repro.core.btb_attacks`); BranchScope itself never needs it.
    btb_miss_penalty: float = 22.0
    #: Standard deviation of the per-measurement Gaussian jitter.  With
    #: the default 38-cycle miss penalty this yields ~10% error when
    #: comparing one warm hit against one warm miss — the paper's
    #: single-second-measurement operating point (Figure 8).
    jitter_sigma: float = 21.0
    #: Extra jitter std-dev applied only to cold executions — cold
    #: measurements are where the paper sees 20-30% detection error.
    cold_jitter_sigma: float = 39.0
    #: Probability of a heavy-tail outlier (interrupt, SMI, ...).
    outlier_prob: float = 0.01
    #: Mean of the exponential outlier magnitude.
    outlier_scale: float = 55.0

    def sample(
        self,
        rng: np.random.Generator,
        *,
        mispredicted: bool,
        cold: bool,
        taken: bool,
        btb_miss: bool = False,
    ) -> int:
        """Draw one branch latency in cycles (always >= 1)."""
        latency = self.base_latency
        if mispredicted:
            latency += self.miss_penalty
        if cold:
            latency += self.cold_penalty
            latency += rng.normal(0.0, self.cold_jitter_sigma)
        if taken:
            latency += self.taken_extra
        if btb_miss:
            latency += self.btb_miss_penalty
        latency += rng.normal(0.0, self.jitter_sigma)
        if rng.random() < self.outlier_prob:
            latency += rng.exponential(self.outlier_scale)
        return max(1, int(round(latency)))

    def sample_many(
        self,
        rng: np.random.Generator,
        n: int,
        *,
        mispredicted: bool,
        cold: bool,
        taken: bool,
        btb_miss: bool = False,
    ) -> np.ndarray:
        """Vectorised :meth:`sample` — ``n`` i.i.d. latencies."""
        latency = np.full(n, self.base_latency, dtype=float)
        if mispredicted:
            latency += self.miss_penalty
        if cold:
            latency += self.cold_penalty
            latency += rng.normal(0.0, self.cold_jitter_sigma, size=n)
        if taken:
            latency += self.taken_extra
        if btb_miss:
            latency += self.btb_miss_penalty
        latency += rng.normal(0.0, self.jitter_sigma, size=n)
        outliers = rng.random(n) < self.outlier_prob
        latency[outliers] += rng.exponential(self.outlier_scale, size=outliers.sum())
        return np.maximum(1, np.round(latency)).astype(np.int64)
