"""Spool-directory front end: ``repro serve`` / ``repro submit``.

The service's wire protocol is the filesystem — the one transport that
is kill-proof, inspectable with ``ls``, and already crash-safe through
:mod:`repro.ioutil`.  A service *root* directory holds::

    root/
      jobs/         <campaign_id>.json   — submitted specs (atomic writes)
      results/      <campaign_id>.json   — completed campaign results
      checkpoints/  <campaign_id>.ckpt   — per-campaign PR 5 checkpoints
      store/        ...                  — the shared content-addressed store
      store-stats.json                   — store traffic snapshot (artifact)

``repro submit`` drops a spec into ``jobs/``; ``repro serve`` polls the
spool, submits every job whose result does not exist yet to a
:class:`~repro.service.CampaignService`, runs the fleet to completion,
and writes results atomically.  Job files are never deleted — *a result
file existing* is the completion marker — so a SIGKILL at any instant
leaves either (job, no result): resubmitted and resumed from its
checkpoint on restart; or (job, result): done.  ``--once`` drains the
spool and exits (the CI smoke mode); otherwise the loop polls forever.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import store as repro_store
from repro.ioutil import atomic_write_text
from repro.obs import trace as obs
from repro.service.campaign import CampaignSpec
from repro.service.scheduler import CampaignService

__all__ = [
    "load_jobs",
    "pending_jobs",
    "serve",
    "service_dirs",
    "submit_job",
    "write_result",
    "write_store_stats",
]


def service_dirs(root: Union[str, Path]) -> Dict[str, Path]:
    """Create (if needed) and return the service's directory layout."""
    root = Path(root)
    dirs = {
        "root": root,
        "jobs": root / "jobs",
        "results": root / "results",
        "checkpoints": root / "checkpoints",
        "store": root / "store",
    }
    for path in dirs.values():
        path.mkdir(parents=True, exist_ok=True)
    return dirs


def submit_job(root: Union[str, Path], spec: CampaignSpec) -> Path:
    """Queue ``spec`` in the spool; returns the job file path.

    Atomic write — a concurrently polling server sees either no job or
    the whole job.  Submitting an identical spec twice is a no-op (same
    campaign id, same file content).
    """
    dirs = service_dirs(root)
    path = dirs["jobs"] / f"{spec.campaign_id()}.json"
    atomic_write_text(path, spec.to_json() + "\n")
    return path


def pending_jobs(
    root: Union[str, Path], *, log=None
) -> List[CampaignSpec]:
    """Specs queued in the spool whose results do not exist yet.

    A job file that fails to parse — torn partial write from a
    non-atomic client, foreign file, hand-edited JSON — is *quarantined*
    (renamed to ``<job>.json.corrupt``, out of every future glob),
    counted on the always-on ``spool_corrupt`` resilience counter, and
    warned about via ``log``; it can never crash or wedge the service
    loop.  Quarantining rather than skipping matters for the polling
    loop: a skipped-but-present bad file would be re-parsed (and
    re-logged) every poll forever.
    """
    dirs = service_dirs(root)
    specs = []
    for path in sorted(dirs["jobs"].glob("*.json")):
        if (dirs["results"] / path.name).exists():
            continue
        try:
            specs.append(CampaignSpec.from_json(path.read_text()))
        except (ValueError, KeyError, TypeError) as exc:
            quarantine = path.with_name(path.name + ".corrupt")
            try:
                path.rename(quarantine)
            except OSError:  # pragma: no cover - racing unlink
                continue
            obs.record_resilience_event(
                "spool_corrupt", detail=path.name
            )
            if log is not None:
                log(
                    f"warning: malformed job {path.name} quarantined "
                    f"to {quarantine.name}: {exc}"
                )
    return specs


def load_jobs(root: Union[str, Path]) -> List[CampaignSpec]:
    """Back-compat alias of :func:`pending_jobs` (no warn log)."""
    return pending_jobs(root)


def write_result(
    dirs: Dict[str, Path], campaign_id: str, result: Dict[str, Any]
) -> Path:
    """Atomically publish one campaign's result (the completion marker)."""
    path = dirs["results"] / f"{campaign_id}.json"
    atomic_write_text(
        path, json.dumps(result, sort_keys=True, indent=2) + "\n"
    )
    return path


def write_store_stats(
    dirs: Dict[str, Path], store: repro_store.ContentStore
) -> None:
    """Snapshot the store's traffic counters beside the spool."""
    stats = dict(store.stats_dict())
    stats["disk_bytes"] = store.total_bytes()
    atomic_write_text(
        dirs["root"] / "store-stats.json",
        json.dumps(stats, sort_keys=True, indent=2) + "\n",
    )


def serve(
    root: Union[str, Path],
    *,
    workers: Optional[Any] = None,
    once: bool = False,
    poll_seconds: float = 0.5,
    metrics_port: Optional[int] = None,
    store_bytes: Optional[int] = None,
    trial_delay: float = 0.0,
    port: Optional[int] = None,
    lease_seconds: float = 30.0,
    log=print,
) -> int:
    """Run the campaign service over a spool directory.

    Drains ``root/jobs`` batch by batch: each batch of pending jobs is
    submitted to a fresh :class:`CampaignService` sharing the root's
    persistent store and checkpoint directory, run to completion, and
    its results written.  ``once`` exits when the spool is empty
    (returns 0); otherwise the loop polls forever.  ``metrics_port``
    starts the :mod:`repro.obs.http` endpoint (port 0 picks a free
    port) and enables metrics collection for the process.

    ``trial_delay`` sleeps inside every trial — the chaos knob the CI
    SIGKILL smoke uses to widen the kill window; it is excluded from
    every fingerprint and store key, so a delayed-then-killed campaign
    resumes to the undelayed reference digest.

    ``port`` switches the service into **coordinator mode** (see
    :mod:`repro.service.coordinator`): instead of running trials
    locally, it serves the lease protocol on ``http://host:port`` and
    pull-based ``repro worker --connect`` processes do the computing.
    ``workers`` and ``trial_delay`` are local-execution knobs and are
    ignored there (workers bring their own).
    """
    if port is not None:
        from repro.service.coordinator import run_coordinator

        return run_coordinator(
            root,
            port=port,
            once=once,
            poll_seconds=poll_seconds,
            lease_seconds=lease_seconds,
            store_bytes=store_bytes,
            log=log,
        )

    dirs = service_dirs(root)
    store = repro_store.ContentStore(
        dirs["store"],
        max_bytes=(
            store_bytes if store_bytes is not None
            else repro_store.DEFAULT_MAX_BYTES
        ),
    )
    # Default-store wiring: forked shard workers inherit it, giving the
    # compiled-block LRU its persistent tier inside every worker.
    repro_store.configure_store(store)

    metrics_server = None
    if metrics_port is not None:
        from repro.obs import trace as obs_trace
        from repro.obs.http import MetricsServer

        if obs_trace.TRACER is None or obs_trace.TRACER.metrics is None:
            obs_trace.enable_tracing(collect_metrics=True)
        metrics_server = MetricsServer(port=metrics_port)
        log(f"serving metrics on http://127.0.0.1:{metrics_server.port}/metrics")

    pre_trial = None
    if trial_delay > 0:

        def pre_trial(index: int) -> None:
            time.sleep(trial_delay)

    try:
        while True:
            specs = pending_jobs(root, log=log)
            if not specs:
                if once:
                    break
                time.sleep(poll_seconds)
                continue
            service = CampaignService(
                workers=workers,
                store=store,
                checkpoint_dir=dirs["checkpoints"],
                pre_trial=pre_trial,
            )
            for spec in specs:
                cid = service.submit(spec)
                state = service.campaign(cid)
                log(
                    f"campaign {cid} tenant={spec.tenant} "
                    f"shards={len(state.shards)} "
                    f"resumed={state.resumed_shards} "
                    f"cached={state.cached_shards}"
                )
            for cid, result in service.run_until_complete().items():
                write_result(dirs, cid, result)
                log(f"campaign {cid} digest: {result['digest']}")
            write_store_stats(dirs, store)
    finally:
        write_store_stats(dirs, store)
        if metrics_server is not None:
            metrics_server.close()
        repro_store.configure_store(None)
    return 0
