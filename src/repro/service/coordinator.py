"""The multi-host coordinator: leased shard dispatch over the wire.

``repro serve --port N`` runs this instead of the in-process scheduler:
the coordinator owns the service root (spool, results, checkpoints,
content store) and the :class:`~repro.service.leases.LeaseTable`, and
*workers own the compute* — pull-based ``repro worker --connect URL``
processes claim shard leases, run the trials, and upload exact
aggregates.  Nothing here executes a trial.

The robustness story is a layering of guarantees already proven
one-host:

* **durability** is the filesystem's, unchanged — job files, atomic
  result writes, per-campaign PR 5 checkpoints, the content-addressed
  store.  The lease table is deliberately *soft state*: a coordinator
  SIGKILL loses only the in-flight leases, and a restarted coordinator
  rebuilds every completed shard from checkpoints + store at
  :meth:`submit` time while workers' retries re-claim the rest;
* **liveness** is the lease table's — a worker SIGKILL just means its
  lease expires and the shard requeues (bounded by ``max_attempts``);
* **exactness** is the aggregate layer's — shard states merge
  associatively/commutatively, so *who* computed a shard, in *what*
  order uploads land, and *how often* a shard was recomputed cannot
  change the merged digest.  Uploads are verified
  (:func:`~repro.service.transport.aggregate_state_digest` recomputed
  server-side) and idempotent; a digest that disagrees with a recorded
  completion is quarantined to ``root/quarantine/`` and counted, never
  merged.

Fair share across tenants uses the same least-dispatched ledger as
:meth:`repro.service.scheduler.CampaignService._next_wave`, applied per
claim instead of per wave.

See MODELING.md §15 for the protocol, state machine and failure matrix.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import store as repro_store
from repro.ioutil import atomic_write_text
from repro.obs import trace as obs
from repro.service.campaign import CampaignSpec, shard_store_key
from repro.service.leases import (
    LeaseTable,
    publish_lease_metrics,
)
from repro.service.scheduler import (
    CampaignState,
    restore_campaign,
    save_campaign,
    serve_campaign_from_store,
)
from repro.service.server import (
    pending_jobs,
    service_dirs,
    submit_job,
    write_result,
    write_store_stats,
)
from repro.service.transport import (
    CoordinatorServer,
    aggregate_state_digest,
)

__all__ = ["Coordinator", "run_coordinator"]


class Coordinator:
    """Lease-dispatching campaign authority over one service root.

    Thread-safety: every public entry point (the HTTP handler's
    ``handle``, the serve loop's ``scan_spool``/``tick``) serialises on
    one re-entrant lock — the lease table and campaign states are only
    ever touched under it.
    """

    def __init__(
        self,
        root,
        *,
        lease_seconds: float = 30.0,
        max_attempts: int = 6,
        store_bytes: Optional[int] = None,
        log=print,
    ) -> None:
        self.dirs = service_dirs(root)
        self.store = repro_store.ContentStore(
            self.dirs["store"],
            max_bytes=(
                store_bytes if store_bytes is not None
                else repro_store.DEFAULT_MAX_BYTES
            ),
        )
        self.leases = LeaseTable(
            lease_seconds=lease_seconds, max_attempts=max_attempts
        )
        self.log = log
        self.lock = threading.RLock()
        self._campaigns: "OrderedDict[str, CampaignState]" = OrderedDict()
        #: Shards dispatched per tenant (the fair-share ledger).
        self._tenant_dispatched: Dict[str, int] = {}

    # -- wire dispatch -------------------------------------------------------

    def handle(self, endpoint: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One wire request, already unframed; returns the JSON reply.

        Every endpoint is idempotent: a duplicated or retried-after-
        response-loss request converges to the same final state
        (``submit`` re-registers a no-op, ``claim`` hands out a fresh
        lease for a shard the lost one will merely expire on, ``renew``
        of a stale lease is a clean ``ok: false``, ``upload`` is the
        lease table's byte-identical completion check).
        """
        with self.lock:
            if endpoint == "submit":
                spec = CampaignSpec.from_dict(payload["spec"])
                return {"campaign": self.submit(spec)}
            if endpoint == "claim":
                return self.claim(str(payload.get("worker", "")))
            if endpoint == "renew":
                deadline = self.leases.renew(
                    str(payload.get("lease_id", "")),
                    str(payload.get("worker", "")),
                )
                return {"ok": deadline is not None, "deadline": deadline}
            if endpoint == "upload":
                return self.upload(payload)
            raise KeyError(endpoint)

    # -- campaign registry ---------------------------------------------------

    def submit(self, spec: CampaignSpec) -> str:
        """Register a campaign; idempotent per spec (same id, no-op).

        Recovery happens here, through the exact helpers the in-process
        scheduler uses: checkpointed shards restore, store-held shards
        complete — both land in the lease table as pre-completed with
        their canonical digests, so workers are only ever offered the
        genuinely missing work.  The spec is also (re)written to the
        spool, making a network submission as durable as a local one.
        """
        with self.lock:
            state = CampaignState(spec)
            cid = state.campaign_id
            if cid in self._campaigns:
                return cid
            restore_campaign(self.dirs["checkpoints"], state)
            serve_campaign_from_store(self.store, state)
            self._campaigns[cid] = state
            submit_job(self.dirs["root"], spec)
            self.leases.add_campaign(
                cid,
                len(state.shards),
                done=[
                    (i, aggregate_state_digest(agg.to_state()))
                    for i, agg in state.done.items()
                ],
            )
            if state.done:
                save_campaign(self.dirs["checkpoints"], state)
            self.log(
                f"campaign {cid} tenant={spec.tenant} "
                f"shards={len(state.shards)} "
                f"resumed={state.resumed_shards} "
                f"cached={state.cached_shards}"
            )
            if state.complete:
                self._finish(state)
            tracer = obs.TRACER
            if tracer is not None:
                tracer.emit(
                    "pool",
                    "campaign_submitted",
                    campaign=cid,
                    tenant=spec.tenant,
                    shards=len(state.shards),
                    resumed=state.resumed_shards,
                    cached=state.cached_shards,
                )
            return cid

    def scan_spool(self) -> int:
        """Register every parseable spool job; returns how many are new."""
        with self.lock:
            new = 0
            for spec in pending_jobs(self.dirs["root"], log=self.log):
                if spec.campaign_id() not in self._campaigns:
                    self.submit(spec)
                    new += 1
            return new

    # -- the lease protocol --------------------------------------------------

    def claim(self, worker: str) -> Dict[str, Any]:
        """Lease the fair-share-next pending shard to ``worker``.

        The empty-handed reply carries the coordinator's drain state so
        a ``--once`` worker knows whether to exit (``complete``), fail
        (``stuck`` — some shard exhausted its attempts), or poll again
        (work is merely leased out right now).
        """
        with self.lock:
            self.leases.expire()
            key = self._next_shard()
            lease = (
                self.leases.claim(worker, key) if key is not None else None
            )
            publish_lease_metrics(self.leases)
            if lease is None:
                return {
                    "work": None,
                    "complete": self.drained(),
                    "stuck": self.stuck(),
                }
            state = self._campaigns[lease.campaign_id]
            tenant = state.spec.tenant
            self._tenant_dispatched[tenant] = (
                self._tenant_dispatched.get(tenant, 0) + 1
            )
            state.dispatched += 1
            lo, hi = state.shards[lease.shard_index]
            return {
                "work": {
                    "campaign": lease.campaign_id,
                    "shard": lease.shard_index,
                    "lo": lo,
                    "hi": hi,
                    "lease_id": lease.lease_id,
                    "lease_seconds": self.leases.lease_seconds,
                    "attempt": lease.attempt,
                    "spec": state.spec.to_dict(),
                }
            }

    def _next_shard(self) -> Optional[Tuple[str, int]]:
        """Fair-share pick: pending shard of the least-dispatched tenant."""
        pending: Dict[str, List[Tuple[str, int]]] = {}
        for key in self.leases.pending_keys():
            tenant = self._campaigns[key[0]].spec.tenant
            pending.setdefault(tenant, []).append(key)
        if not pending:
            return None
        tenant = min(
            pending,
            key=lambda t: (self._tenant_dispatched.get(t, 0), t),
        )
        return pending[tenant][0]

    def upload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Accept (or reject) one shard aggregate from a worker.

        The framed wire already guarantees the payload arrived intact;
        this verifies the *content*: the digest the worker claims must
        match a server-side recomputation over the state dict, and the
        lease table's completion check must not contradict an earlier
        completion.  Either failure quarantines the upload to
        ``root/quarantine/`` — kept on disk for the operator, kept out
        of the merge.
        """
        with self.lock:
            cid = str(payload.get("campaign", ""))
            shard_index = int(payload.get("shard", -1))
            agg_state = payload.get("state")
            claimed = str(payload.get("digest", ""))
            worker = str(payload.get("worker", ""))
            state = self._campaigns.get(cid)
            if state is None or not 0 <= shard_index < len(state.shards):
                return {"status": "unknown"}
            actual = aggregate_state_digest(agg_state)
            if actual != claimed:
                obs.record_resilience_event(
                    "upload_digest_invalid",
                    detail=f"{cid}#{shard_index} worker={worker}",
                )
                self._quarantine(payload)
                return {"status": "quarantined"}
            verdict = self.leases.complete(
                cid, shard_index, claimed, worker=worker
            )
            if verdict == "mismatch":
                # complete() already counted lease_digest_mismatch.
                self._quarantine(payload)
                return {"status": "quarantined"}
            if verdict == "accepted":
                aggregate = state.aggregate_cls.from_state(agg_state)
                state.done[shard_index] = aggregate
                lo, hi = state.shards[shard_index]
                self.store.put(
                    shard_store_key(state.spec, lo, hi), aggregate
                )
                save_campaign(self.dirs["checkpoints"], state)
                if state.complete:
                    self._finish(state)
            publish_lease_metrics(self.leases)
            return {"status": verdict}

    def _quarantine(self, payload: Dict[str, Any]) -> None:
        qdir = self.dirs["root"] / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        name = (
            f"{payload.get('campaign', 'unknown')}-"
            f"{payload.get('shard', 'x')}-"
            f"{payload.get('worker', 'anon')}.json"
        )
        atomic_write_text(
            qdir / name,
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )
        self.log(f"quarantined upload {name}")

    def _finish(self, state: CampaignState) -> None:
        result = state.result()
        write_result(self.dirs, state.campaign_id, result)
        self.log(
            f"campaign {state.campaign_id} digest: {result['digest']}"
        )

    # -- loop hooks ----------------------------------------------------------

    def tick(self) -> None:
        """Expire stale leases and refresh the health gauges."""
        with self.lock:
            self.leases.expire()
            publish_lease_metrics(self.leases)

    def drained(self) -> bool:
        """Every known campaign complete (a fresh root counts as drained)."""
        with self.lock:
            return all(
                state.complete for state in self._campaigns.values()
            )

    def stuck(self) -> bool:
        """Some shard exhausted its attempts and nothing can finish it.

        Only *failed* shards with no pending or leased siblings count —
        a late upload can still heal a failed shard, so ``stuck`` is
        advisory (the ``--once`` exit path), not a hard stop.
        """
        with self.lock:
            if not self.leases.has_failed():
                return False
            counts = self.leases.state_counts()
            return counts["pending"] == 0 and counts["leased"] == 0

    def status(self) -> Dict[str, Any]:
        """The ``GET /status`` body: drain state, lease counts, campaigns."""
        with self.lock:
            return {
                "campaigns": {
                    cid: {
                        "tenant": state.spec.tenant,
                        "shards": len(state.shards),
                        "done": len(state.done),
                        "complete": state.complete,
                    }
                    for cid, state in self._campaigns.items()
                },
                "leases": self.leases.state_counts(),
                "complete": self.drained(),
                "stuck": self.stuck(),
            }

    def write_store_stats(self) -> None:
        with self.lock:
            write_store_stats(self.dirs, self.store)


def run_coordinator(
    root,
    *,
    port: int = 0,
    host: str = "127.0.0.1",
    once: bool = False,
    poll_seconds: float = 0.5,
    lease_seconds: float = 30.0,
    max_attempts: int = 6,
    store_bytes: Optional[int] = None,
    linger_seconds: float = 2.0,
    log=print,
) -> int:
    """Serve the lease protocol over a spool root until drained/forever.

    ``port=0`` binds an ephemeral port; the chosen URL is written
    atomically to ``root/coordinator.json`` so workers (and the CI
    smoke) can discover it without parsing logs.  ``once`` exits 0 when
    every campaign is complete — after ``linger_seconds`` of continuing
    to answer ``/claim`` with ``complete: true``, so idle workers shut
    down cleanly instead of hitting a dead socket — or 1 when the queue
    is stuck (a shard exhausted ``max_attempts``).  Metrics collection
    is always on: the protocol port doubles as the ``/metrics`` scrape
    target.
    """
    if obs.TRACER is None or obs.TRACER.metrics is None:
        obs.enable_tracing(collect_metrics=True)
    coordinator = Coordinator(
        root,
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        store_bytes=store_bytes,
        log=log,
    )
    server = CoordinatorServer(coordinator, port=port, host=host)
    try:
        atomic_write_text(
            coordinator.dirs["root"] / "coordinator.json",
            json.dumps(
                {"url": server.url, "pid": os.getpid()}, sort_keys=True
            )
            + "\n",
        )
        log(f"coordinator listening on {server.url}")
        while True:
            coordinator.scan_spool()
            coordinator.tick()
            if once:
                if coordinator.stuck():
                    log("coordinator: queue stuck (attempts exhausted)")
                    return 1
                if coordinator.drained():
                    # Keep answering complete:true long enough for the
                    # last idle worker to poll once more and exit 0.
                    deadline = time.monotonic() + linger_seconds
                    while time.monotonic() < deadline:
                        time.sleep(min(0.1, poll_seconds))
                    log("coordinator: drained")
                    return 0
            time.sleep(poll_seconds)
    finally:
        coordinator.write_store_stats()
        server.close()
