"""SHA-256-framed JSON over stdlib HTTP: the multi-host wire protocol.

ROADMAP item 5's scale step — many hosts feeding one store — needs a
transport, and this module is deliberately the *smallest* one that can
carry the lease protocol safely:

* **framing** — every request and response body is
  ``REPRO-WIRE-1\\n<sha256 hex>\\n<canonical JSON>``, the same
  digest-before-payload discipline as the content store's pickles
  (:mod:`repro.store`).  A truncated or bit-flipped body fails
  :func:`unframe_payload` and reads as *no* message, never as a
  different message — the property every torn-write recovery below
  leans on;
* **canonical JSON** — ``sort_keys`` + compact separators, so one
  logical payload has exactly one byte encoding and
  :func:`aggregate_state_digest` of a shard aggregate's
  ``to_state()`` is a stable identity the lease table can compare for
  idempotent completion;
* **client retries** — :class:`TransportClient` retries transient
  failures (connection refused, timeouts, 4xx/5xx, torn frames) with
  the pool's exponential-backoff-plus-deterministic-jitter schedule
  (:meth:`repro.parallel.pool.SuperviseConfig.backoff_delay`), counts
  each retry on the always-on ``transport_retry`` resilience counter,
  and surfaces exhaustion as :exc:`CoordinatorUnreachable` so the
  worker can degrade to its local spool;
* **chaos hooks** — an optional
  :class:`~repro.resilience.NetworkFaultInjector` sits *inside* the
  client: each logical request gets a stable fault key
  (``endpoint#<per-endpoint sequence>``) and each attempt of it draws
  its own deterministic fate (drop / drop-response / delay / duplicate
  / truncate), so the chaos suite storms the protocol reproducibly;
* **server** — :class:`CoordinatorServer` is the
  :mod:`repro.obs.http` ThreadingHTTPServer pattern with POST
  endpoints (``/submit``, ``/claim``, ``/renew``, ``/upload``)
  dispatched to a coordinator's ``handle()``, plus ``GET /status``
  (framed JSON) and ``GET /metrics`` (Prometheus text from the live
  registry, so one port serves both protocol and scrape).

The transport carries *state dictionaries*, never pickles: shard
aggregates cross the wire as their JSON-safe ``to_state()`` form and
are rebuilt with ``from_state`` on the coordinator — no remote peer can
make this process unpickle anything.

See MODELING.md §15 for the protocol and failure matrix.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.obs import trace as obs
from repro.obs.http import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.parallel.pool import SuperviseConfig
from repro.resilience import faults as fault_mod

__all__ = [
    "CoordinatorServer",
    "CoordinatorUnreachable",
    "LeaseQuarantinedError",
    "TransportClient",
    "TransportError",
    "WIRE_MAGIC",
    "WireError",
    "aggregate_state_digest",
    "frame_payload",
    "unframe_payload",
]

#: Leading bytes of every wire frame (versioned, like the store's).
WIRE_MAGIC = b"REPRO-WIRE-1\n"

#: Wire bodies are framed bytes, not naked JSON.
WIRE_CONTENT_TYPE = "application/x-repro-wire"

#: The POST endpoints a coordinator serves (also its ``handle`` verbs).
ENDPOINTS = ("submit", "claim", "renew", "upload")


class TransportError(RuntimeError):
    """A transient transport failure — safe (and expected) to retry."""


class WireError(TransportError):
    """A frame failed its integrity check (torn, truncated, foreign)."""


class CoordinatorUnreachable(TransportError):
    """Every retry of a request failed; the coordinator is gone."""


class LeaseQuarantinedError(RuntimeError):
    """The coordinator quarantined this worker's upload: its shard
    digest disagreed with an already-recorded completion.  Terminal —
    two exact computations of one shard can only disagree if the worker
    (or the wire, past the framing check) is broken."""


def canonical_json(obj: Any) -> str:
    """The one byte-encoding of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def frame_payload(obj: Any) -> bytes:
    """Encode ``obj`` as a digest-framed canonical-JSON wire body."""
    payload = canonical_json(obj).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    return WIRE_MAGIC + digest.encode("ascii") + b"\n" + payload


def unframe_payload(data: bytes) -> Any:
    """Decode a wire body, or raise :exc:`WireError` if it fails any
    of: magic, digest-line shape, SHA-256 match, JSON parse."""
    if not data.startswith(WIRE_MAGIC):
        raise WireError("bad wire magic")
    rest = data[len(WIRE_MAGIC):]
    digest_line, sep, payload = rest.partition(b"\n")
    if not sep or len(digest_line) != 64:
        raise WireError("bad wire digest line")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest_line:
        raise WireError("wire digest mismatch (torn frame)")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"wire payload not JSON: {exc}") from exc


def aggregate_state_digest(state: Any) -> str:
    """Canonical identity of one shard aggregate's ``to_state()``.

    Both ends compute it — the worker to claim what it uploads, the
    coordinator to verify before merging — so the lease table's
    byte-identical idempotence check compares like with like.
    """
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


class TransportClient:
    """Retrying, fault-injectable POST client for one coordinator.

    Each logical request gets a per-endpoint sequence number; the fault
    key handed to the injector is ``"<endpoint>#<seq>"`` and the attempt
    number is the retry index, so a request dropped on attempt 0
    deterministically succeeds on a later attempt — storms stall
    progress, never wedge it.
    """

    def __init__(
        self,
        base_url: str,
        *,
        retries: int = 5,
        timeout: float = 10.0,
        fault_injector: Optional[fault_mod.NetworkFaultInjector] = None,
        backoff: Optional[SuperviseConfig] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.retries = int(retries)
        self.timeout = float(timeout)
        self.faults = fault_injector
        #: Backoff schedule; the pool's own deterministic-jitter curve.
        self.backoff = backoff if backoff is not None else SuperviseConfig(
            backoff_base=0.02, backoff_cap=0.5
        )
        self._seq: Dict[str, int] = {}

    def call(self, endpoint: str, payload: Any) -> Any:
        """POST ``payload`` to ``/<endpoint>``; returns the unframed
        response.  Retries every :exc:`TransportError` up to
        ``retries`` times, then raises :exc:`CoordinatorUnreachable`.
        """
        seq = self._seq[endpoint] = self._seq.get(endpoint, 0) + 1
        fault_key = f"{endpoint}#{seq}"
        body = frame_payload(payload)
        last: Optional[TransportError] = None
        for attempt in range(self.retries + 1):
            if attempt:
                obs.record_resilience_event(
                    "transport_retry",
                    detail=f"{fault_key} attempt={attempt}: {last}",
                )
                time.sleep(self.backoff.backoff_delay(seq, attempt))
            try:
                return self._attempt(endpoint, body, fault_key, attempt)
            except TransportError as exc:
                last = exc
        raise CoordinatorUnreachable(
            f"{self.base_url}/{endpoint} failed "
            f"{self.retries + 1} attempts: {last}"
        )

    def _attempt(
        self, endpoint: str, body: bytes, fault_key: str, attempt: int
    ) -> Any:
        fault = (
            self.faults.decide(fault_key, attempt)
            if self.faults is not None
            else None
        )
        if fault == fault_mod.DROP:
            # The bytes never leave: indistinguishable (to us) from a
            # connection that died pre-send.
            raise TransportError(f"injected drop of {fault_key}")
        send = body
        if fault == fault_mod.TRUNCATE:
            send = self.faults.truncate_bytes(body)
        if fault == fault_mod.DELAY:
            time.sleep(self.faults.spec.delay_seconds)
        raw = self._post(endpoint, send)
        if fault == fault_mod.DUPLICATE:
            # A retransmit: the server sees the request twice; the
            # caller acts on the second response (both must agree — that
            # is what endpoint idempotence means).
            raw = self._post(endpoint, send)
        if fault == fault_mod.DROP_RESPONSE:
            # The server executed the request; we never learn.  The
            # retry re-executes it — endpoints must tolerate that.
            raise TransportError(f"injected response drop of {fault_key}")
        return unframe_payload(raw)

    def _post(self, endpoint: str, body: bytes) -> bytes:
        request = urllib.request.Request(
            f"{self.base_url}/{endpoint}",
            data=body,
            headers={"Content-Type": WIRE_CONTENT_TYPE},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            # 400 is the server rejecting a torn frame (we may have
            # truncated it ourselves); 5xx is the server hurting.  Both
            # are retried — idempotent endpoints make that safe.
            raise TransportError(
                f"HTTP {exc.code} from /{endpoint}"
            ) from exc
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            raise TransportError(f"/{endpoint}: {exc}") from exc


class CoordinatorServer:
    """Background HTTP front end for one coordinator.

    The :class:`~repro.obs.http.MetricsServer` pattern: a
    ``ThreadingHTTPServer`` on a daemon thread, ``port=0`` for an
    ephemeral port, request logging suppressed.  POST bodies are
    unframed (400 on a torn frame — the client retries), dispatched to
    ``coordinator.handle(endpoint, payload)`` under the coordinator's
    own lock, and the response framed back.  ``GET /metrics`` serves
    the live registry so the coordinator port is also the scrape port.
    """

    def __init__(
        self,
        coordinator: Any,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        coord = coordinator

        class Handler(BaseHTTPRequestHandler):
            def _reply(
                self, code: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
                endpoint = self.path.split("?", 1)[0].strip("/")
                if endpoint not in ENDPOINTS:
                    self.send_error(404, f"no such endpoint /{endpoint}")
                    return
                length = int(self.headers.get("Content-Length", 0))
                data = self.rfile.read(length)
                try:
                    payload = unframe_payload(data)
                except WireError as exc:
                    obs.record_resilience_event(
                        "wire_reject", detail=f"{endpoint}: {exc}"
                    )
                    self.send_error(400, f"bad frame: {exc}")
                    return
                try:
                    response = coord.handle(endpoint, payload)
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    # A handler bug must not kill the server thread;
                    # 500 lets the worker retry or degrade.
                    self.send_error(500, f"{type(exc).__name__}: {exc}")
                    return
                self._reply(
                    200, frame_payload(response), WIRE_CONTENT_TYPE
                )

            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    tracer = obs.TRACER
                    registry = (
                        tracer.metrics if tracer is not None else None
                    )
                    body = (
                        registry.render_text()
                        if registry is not None
                        else ""
                    ).encode("utf-8")
                    self._reply(200, body, METRICS_CONTENT_TYPE)
                    return
                if path == "/status":
                    self._reply(
                        200,
                        frame_payload(coord.status()),
                        WIRE_CONTENT_TYPE,
                    )
                    return
                self.send_error(404, "serves /status and /metrics")

            def log_message(self, format: str, *args) -> None:
                pass  # the lease chatter must not spam the service log

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-coordinator-http",
            daemon=True,
        )
        self._thread.start()
        self.host = host

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "CoordinatorServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
