"""``repro.service`` — the sharded, cached, multi-tenant campaign layer.

ROADMAP item 5: PRs 3–7 built the per-process machinery (fork pool,
resumable checkpoints, manycore + compiled kernels); this package is
the layer above it, turning a campaign *spec* into a long-running
service workload:

* :mod:`repro.service.campaign` — :class:`CampaignSpec` (a plain-data,
  content-addressable description of a campaign), the shard planner,
  and the per-trial / per-shard executors whose results are
  bit-identical at any shard count;
* :mod:`repro.service.workload` — the workload registry: a spec names
  its trial family (``"stability"``, ``"fuzz"``, …) and the registry
  maps the name to its trial function and aggregate class, so new
  tenant families plug in without touching the scheduler;
* :mod:`repro.service.aggregate` — exact mergeable streaming
  accumulators (:class:`CampaignAggregate`): count/sum/M2 moments over
  rationals, integer histogram sketches, and an XOR-combined multiset
  digest, so merged shard results are byte-identical to the unsharded
  run however the campaign was split; plus the record-preserving
  :class:`RecordListAggregate` for workloads whose consumers need raw
  per-trial records back (the fuzzer's inference step);
* :mod:`repro.service.scheduler` — :class:`CampaignService`: N
  concurrent campaigns with per-tenant fair-share scheduling over one
  shared :class:`~repro.parallel.TrialPool` and one shared
  :class:`~repro.store.ContentStore`, each campaign individually
  checkpointed and resumable;
* :mod:`repro.service.server` — the spool-directory front end behind
  ``repro serve`` / ``repro submit``;
* :mod:`repro.service.transport` / :mod:`repro.service.leases` /
  :mod:`repro.service.coordinator` / :mod:`repro.service.worker` — the
  multi-host layer: SHA-256-framed JSON over stdlib HTTP, a
  deadline-and-retry lease table with idempotent completion, the
  ``repro serve --port`` coordinator, and the pull-based ``repro
  worker --connect`` client.  The merged digest is bit-identical
  whether a campaign ran single-host, across N workers, or through
  worker SIGKILLs and network fault storms.

See MODELING.md §13 for the architecture and the sharding determinism
contract, §14 for the fuzz workload riding on it, and §15 for the
multi-host transport, lease state machine and failure matrix.
"""

from repro.service.aggregate import (
    CampaignAggregate,
    HistogramSketch,
    MomentAccumulator,
    RecordListAggregate,
)
from repro.service.campaign import (
    CampaignSpec,
    plan_shards,
    run_campaign,
    run_shard,
    run_trial,
    shard_store_key,
)
from repro.service.coordinator import Coordinator, run_coordinator
from repro.service.leases import Lease, LeaseTable
from repro.service.scheduler import CampaignService
from repro.service.server import load_jobs, pending_jobs, serve, submit_job
from repro.service.transport import (
    CoordinatorServer,
    CoordinatorUnreachable,
    LeaseQuarantinedError,
    TransportClient,
    TransportError,
)
from repro.service.worker import run_worker
from repro.service.workload import (
    Workload,
    get_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "CampaignAggregate",
    "CampaignService",
    "CampaignSpec",
    "Coordinator",
    "CoordinatorServer",
    "CoordinatorUnreachable",
    "HistogramSketch",
    "Lease",
    "LeaseQuarantinedError",
    "LeaseTable",
    "MomentAccumulator",
    "RecordListAggregate",
    "TransportClient",
    "TransportError",
    "Workload",
    "get_workload",
    "load_jobs",
    "pending_jobs",
    "plan_shards",
    "register_workload",
    "run_campaign",
    "run_coordinator",
    "run_shard",
    "run_trial",
    "run_worker",
    "serve",
    "shard_store_key",
    "submit_job",
    "workload_names",
]
