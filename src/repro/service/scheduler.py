"""The multi-tenant campaign scheduler: one pool, one store, N campaigns.

:class:`CampaignService` accepts any number of concurrent campaign
submissions and drives them to completion in cooperative *waves*: each
wave picks up to ``workers`` pending shards — round-robin by the tenant
with the fewest shards dispatched so far (fair share), submission order
breaking ties — and fans them across one shared supervised
:class:`~repro.parallel.TrialPool` with ``chunk_size=1``, so every
shard is its own forked, heartbeat-supervised worker.  Wave-based
dispatch rather than threads because the pool's pre-fork function
handoff is a process global: one ``map`` call at a time is the engine's
contract, and a wave of mixed-tenant shards inside that one call *is*
the concurrency.

Between waves the scheduler merges finished shard aggregates (exact
merge — shard layout cannot change the result), publishes them to the
shared :class:`~repro.store.ContentStore`, and checkpoints every
touched campaign through its own PR 5
:class:`~repro.resilience.CheckpointStore` — so a SIGKILL costs at most
one wave of any campaign, and each campaign resumes independently.

Cache discipline: shard lookups happen in the parent at submit time
(store hits complete shards before any dispatch — a re-submitted
campaign costs zero trials), writes happen in the parent after
collection (single writer, accountable stats).  Forked shard workers
still share the parent's store through the fork for the *compiled
block* tier.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import trace as obs
from repro.parallel import TrialPool
from repro.resilience.checkpoint import CheckpointStore, verify_fingerprint
from repro.service.campaign import (
    CampaignSpec,
    plan_shards,
    run_shard,
    shard_store_key,
)
from repro.store import ContentStore

__all__ = [
    "CampaignService",
    "CampaignState",
    "campaign_checkpoint",
    "restore_campaign",
    "save_campaign",
    "serve_campaign_from_store",
]


class CampaignState:
    """One submitted campaign's progress: shards done, pending, merged."""

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec
        self.campaign_id = spec.campaign_id()
        self.shards: List[Tuple[int, int]] = plan_shards(spec)
        #: Aggregate class from the spec's workload — every checkpoint
        #: restore, store probe and merge dispatches through it.
        self.aggregate_cls: type = spec.workload_impl().aggregate
        self.done: Dict[int, Any] = {}
        self.dispatched = 0
        self.resumed_shards = 0
        self.cached_shards = 0

    @property
    def complete(self) -> bool:
        return len(self.done) == len(self.shards)

    def pending(self) -> List[int]:
        return [
            i for i in range(len(self.shards)) if i not in self.done
        ]

    def aggregate(self) -> Any:
        """Exact merge of every shard, in shard order (order is moot —
        the merge is commutative — but fixed for readability)."""
        return self.aggregate_cls.merged(
            [self.done[i] for i in range(len(self.shards))]
        )

    def result(self) -> Dict[str, Any]:
        aggregate = self.aggregate()
        return {
            "campaign": self.campaign_id,
            "name": self.spec.name,
            "tenant": self.spec.tenant,
            "spec": self.spec.to_dict(),
            "shards": len(self.shards),
            "resumed_shards": self.resumed_shards,
            "cached_shards": self.cached_shards,
            **aggregate.summary(),
        }


# -- shared recovery helpers --------------------------------------------------
#
# Module-level so both front ends — the in-process CampaignService and
# the network Coordinator (repro.service.coordinator) — recover a
# campaign identically: same checkpoint format, same fingerprint check,
# same store-probe.  A campaign checkpointed by one is resumable by the
# other.


def campaign_checkpoint(
    checkpoint_dir, campaign_id: str
) -> Optional[CheckpointStore]:
    """The campaign's checkpoint store, or ``None`` when disabled."""
    if checkpoint_dir is None:
        return None
    checkpoint_dir = Path(checkpoint_dir)
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    return CheckpointStore(checkpoint_dir / f"{campaign_id}.ckpt")


def save_campaign(checkpoint_dir, state: "CampaignState") -> None:
    """Checkpoint a campaign's finished shards (atomic, fingerprinted)."""
    ckpt = campaign_checkpoint(checkpoint_dir, state.campaign_id)
    if ckpt is None:
        return
    ckpt.save(
        {
            "fingerprint": state.spec.fingerprint(),
            "done": {
                i: agg.to_state() for i, agg in state.done.items()
            },
            "complete": state.complete,
        }
    )


def restore_campaign(
    checkpoint_dir, state: "CampaignState", *, resume: bool = True
) -> None:
    """Rebuild finished shards from the campaign's checkpoint, if any.

    ``resume=False`` clears the checkpoint instead.  A fingerprint
    mismatch (the spec changed under the checkpoint) restores nothing.
    """
    ckpt = campaign_checkpoint(checkpoint_dir, state.campaign_id)
    if ckpt is None:
        return
    if not resume:
        ckpt.clear()
        return
    saved = verify_fingerprint(
        ckpt, ckpt.load(), state.spec.fingerprint()
    )
    if saved is None:
        return
    for i, agg_state in saved.get("done", {}).items():
        state.done[int(i)] = state.aggregate_cls.from_state(agg_state)
    state.resumed_shards = len(state.done)
    if state.resumed_shards:
        obs.record_resilience_event(
            "campaign_resume",
            detail=state.campaign_id,
            n=state.resumed_shards,
        )


def serve_campaign_from_store(
    store: Optional[ContentStore], state: "CampaignState"
) -> None:
    """Complete every pending shard the content store already holds."""
    if store is None:
        return
    for i in state.pending():
        lo, hi = state.shards[i]
        found, value = store.get(shard_store_key(state.spec, lo, hi))
        if found and isinstance(value, state.aggregate_cls):
            state.done[i] = value
            state.cached_shards += 1


class CampaignService:
    """Fair-share execution of concurrent campaigns over shared substrate.

    Parameters
    ----------
    workers:
        Worker processes of the shared pool (``None`` defers to
        ``REPRO_TRIAL_WORKERS``; see :func:`repro.parallel.
        resolve_workers`).  Ignored when ``pool`` is given.
    pool:
        A caller-built :class:`~repro.parallel.TrialPool` (e.g. one
        carrying a fault injector).  Must use ``chunk_size=1`` — each
        payload is a whole shard.
    store:
        Shared :class:`~repro.store.ContentStore` for shard aggregates
        (and, via the process default, compiled blocks).  ``None``
        disables persistent caching.
    checkpoint_dir:
        Directory for per-campaign checkpoint files
        (``<campaign_id>.ckpt``).  ``None`` disables checkpointing.
    pre_trial:
        Hook run inside each trial before any work — the chaos harness
        and ``repro serve --trial-delay`` use it; excluded from all
        fingerprints and store keys, so a delayed run digests
        identically to an undelayed one.
    """

    def __init__(
        self,
        *,
        workers: Optional[Any] = None,
        pool: Optional[TrialPool] = None,
        store: Optional[ContentStore] = None,
        checkpoint_dir=None,
        pre_trial: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.pool = pool if pool is not None else TrialPool(
            workers, chunk_size=1
        )
        self.store = store
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.pre_trial = pre_trial
        self._campaigns: "OrderedDict[str, CampaignState]" = OrderedDict()
        #: Shards dispatched per tenant (the fair-share ledger).
        self._tenant_dispatched: Dict[str, int] = {}

    # -- internals ----------------------------------------------------------

    def _save(self, state: CampaignState) -> None:
        save_campaign(self.checkpoint_dir, state)

    def _restore(self, state: CampaignState, resume: bool) -> None:
        restore_campaign(self.checkpoint_dir, state, resume=resume)

    def _serve_from_store(self, state: CampaignState) -> None:
        serve_campaign_from_store(self.store, state)

    def _next_wave(self) -> List[Tuple[str, int]]:
        """Pick up to ``workers`` pending shards, fair-share by tenant.

        Each pick goes to the pending tenant with the fewest shards
        dispatched so far (ties: campaign submission order), then
        rotates — a tenant with one small campaign is not starved behind
        a tenant with fifty large ones.
        """
        pending: Dict[str, List[Tuple[str, int]]] = {}
        for cid, state in self._campaigns.items():
            for shard_index in state.pending():
                pending.setdefault(state.spec.tenant, []).append(
                    (cid, shard_index)
                )
        wave: List[Tuple[str, int]] = []
        capacity = max(1, self.pool.workers)
        while pending and len(wave) < capacity:
            tenant = min(
                pending,
                key=lambda t: (self._tenant_dispatched.get(t, 0), t),
            )
            wave.append(pending[tenant].pop(0))
            self._tenant_dispatched[tenant] = (
                self._tenant_dispatched.get(tenant, 0) + 1
            )
            if not pending[tenant]:
                del pending[tenant]
        return wave

    # -- API ----------------------------------------------------------------

    def submit(self, spec: CampaignSpec, *, resume: bool = True) -> str:
        """Register a campaign; returns its id.  Idempotent per spec.

        Resumes from the campaign's checkpoint (when a checkpoint dir is
        configured) and completes any shard the shared store already
        holds — a fully-cached campaign finishes at submit time without
        dispatching a trial.
        """
        state = CampaignState(spec)
        if state.campaign_id in self._campaigns:
            return state.campaign_id
        self._restore(state, resume)
        self._serve_from_store(state)
        self._campaigns[state.campaign_id] = state
        if state.cached_shards and self.checkpoint_dir is not None:
            self._save(state)
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "pool",
                "campaign_submitted",
                campaign=state.campaign_id,
                tenant=spec.tenant,
                shards=len(state.shards),
                resumed=state.resumed_shards,
                cached=state.cached_shards,
            )
        return state.campaign_id

    def run_wave(self) -> int:
        """Dispatch one fair-share wave; returns the shards completed.

        The unit of crash-safety: every campaign a wave touched is
        checkpointed (and its shards published to the store) before the
        method returns.
        """
        wave = self._next_wave()
        if not wave:
            return 0
        specs = {
            cid: self._campaigns[cid].spec for cid, _ in wave
        }
        shards = {
            cid: self._campaigns[cid].shards for cid, _ in wave
        }
        pre_trial = self.pre_trial

        def shard_fn(payload: Tuple[str, int]) -> Any:
            cid, shard_index = payload
            lo, hi = shards[cid][shard_index]
            return run_shard(specs[cid], lo, hi, pre_trial=pre_trial)

        results = self.pool.map(shard_fn, wave)
        touched = set()
        for (cid, shard_index), aggregate in zip(wave, results):
            state = self._campaigns[cid]
            state.done[shard_index] = aggregate
            state.dispatched += 1
            touched.add(cid)
            if self.store is not None:
                lo, hi = state.shards[shard_index]
                self.store.put(
                    shard_store_key(state.spec, lo, hi), aggregate
                )
        for cid in sorted(touched):
            self._save(self._campaigns[cid])
        return len(wave)

    def run_until_complete(self) -> Dict[str, Dict[str, Any]]:
        """Drive every submitted campaign to completion; returns results."""
        while any(
            not state.complete for state in self._campaigns.values()
        ):
            if self.run_wave() == 0:  # pragma: no cover - defensive
                raise RuntimeError("no progress: pending shards undispatchable")
        return self.results()

    def results(self) -> Dict[str, Dict[str, Any]]:
        """Results of every *complete* campaign, by campaign id."""
        return {
            cid: state.result()
            for cid, state in self._campaigns.items()
            if state.complete
        }

    def campaign(self, campaign_id: str) -> CampaignState:
        return self._campaigns[campaign_id]

    def __len__(self) -> int:
        return len(self._campaigns)
