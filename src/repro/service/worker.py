"""The pull-based campaign worker behind ``repro worker --connect``.

A worker is the simplest possible citizen of the lease protocol: a
loop of *claim → run → upload*, carrying no durable state of its own.
Everything that makes the fleet robust lives elsewhere — the
coordinator's lease table absorbs worker crashes, the transport client
absorbs network faults, and the exact aggregates make any schedule of
workers merge to the single-host digest — which is exactly why a
worker is safe to SIGKILL at any instant: the most it can lose is work
someone else will redo identically.

What the worker *does* own:

* **heartbeats** — long shards renew their lease from the
  :func:`run_shard` pre-trial hook (every third of the lease term), so
  a slow-but-alive worker is never mistaken for a dead one.  Renewal
  is best-effort: a failed renewal just means the shard may be
  re-dispatched, and idempotent completion makes the duplicate
  harmless;
* **degradation** — when the coordinator is unreachable past the
  transport's retries, a worker given ``--root`` falls back to
  draining that local spool with the in-process service (counted as a
  ``worker_degrade_local`` resilience event): the fleet losing its
  coordinator degrades to N independent single-host services, not to
  idleness;
* **terminal verdicts** — a quarantined upload raises
  :exc:`~repro.service.transport.LeaseQuarantinedError` (CLI exit 4:
  this worker computed a different answer than the recorded one, which
  for exact arithmetic means *this worker is broken*); retry
  exhaustion without a fallback root surfaces as
  :exc:`~repro.service.transport.CoordinatorUnreachable` (CLI exit 5).
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Callable, Dict, Optional

from repro.obs import trace as obs
from repro.service.campaign import CampaignSpec, run_shard
from repro.service.transport import (
    CoordinatorUnreachable,
    LeaseQuarantinedError,
    TransportClient,
    TransportError,
    aggregate_state_digest,
)

__all__ = ["default_worker_id", "run_worker"]


def default_worker_id() -> str:
    """``<hostname>-<pid>`` — unique per live process, stable within it."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _renewing_pre_trial(
    client: TransportClient,
    lease_id: str,
    worker_id: str,
    lease_seconds: float,
    *,
    trial_delay: float = 0.0,
) -> Callable[[int], None]:
    """A ``run_shard`` pre-trial hook that keeps the lease alive.

    Renews every ``lease_seconds / 3`` — early enough that one missed
    renewal (a transport fault) still leaves two chances before expiry.
    """
    interval = max(lease_seconds / 3.0, 0.05)
    last = [time.monotonic()]

    def pre_trial(_index: int) -> None:
        if trial_delay > 0:
            time.sleep(trial_delay)
        now = time.monotonic()
        if now - last[0] < interval:
            return
        last[0] = now
        try:
            client.call(
                "renew", {"lease_id": lease_id, "worker": worker_id}
            )
        except TransportError:
            # Best-effort: an unrenewable lease expires and the shard
            # requeues; our late upload is an idempotent duplicate.
            pass

    return pre_trial


def run_worker(
    connect: str,
    *,
    worker_id: Optional[str] = None,
    root=None,
    once: bool = False,
    poll_seconds: float = 0.5,
    retries: int = 5,
    workers: Optional[Any] = None,
    trial_delay: float = 0.0,
    fault_injector=None,
    log=print,
) -> int:
    """Claim, run and upload shards from the coordinator at ``connect``.

    Returns the process exit code: with ``once``, 0 as soon as the
    coordinator reports the queue drained; without it the loop serves
    forever (campaigns submitted later included) until interrupted.
    ``workers`` forks a supervised
    :class:`~repro.parallel.TrialPool` per shard for the trials;
    ``fault_injector`` threads a
    :class:`~repro.resilience.NetworkFaultInjector` into the transport
    (the chaos suite's hook).  Raises
    :exc:`~repro.service.transport.LeaseQuarantinedError` /
    :exc:`~repro.service.transport.CoordinatorUnreachable` for the CLI
    to map to exit codes 4 / 5.
    """
    client = TransportClient(
        connect, retries=retries, fault_injector=fault_injector
    )
    me = worker_id if worker_id else default_worker_id()
    pool = None
    if workers is not None:
        from repro.parallel import TrialPool

        pool = TrialPool(workers)
    had_contact = False
    try:
        while True:
            reply = client.call("claim", {"worker": me})
            had_contact = True
            work = reply.get("work")
            if work is None:
                if once and reply.get("complete"):
                    log(f"worker {me}: queue drained, exiting")
                    return 0
                if once and reply.get("stuck"):
                    log(f"worker {me}: queue stuck, giving up")
                    raise CoordinatorUnreachable(
                        "queue stuck: a shard exhausted its attempts"
                    )
                # Nothing *claimable* is not nothing *left*: in-flight
                # leases may yet expire and requeue, so an idle worker
                # keeps polling — the claim reply's drain flags (above)
                # are what end a --once worker, and a service-mode
                # worker outlives drains to serve future campaigns.
                time.sleep(poll_seconds)
                continue
            _run_one(client, me, work, pool, trial_delay, log)
    except CoordinatorUnreachable as exc:
        if root is not None:
            log(
                f"worker {me}: coordinator unreachable ({exc}); "
                f"degrading to local spool {root}"
            )
            obs.record_resilience_event(
                "worker_degrade_local", detail=str(exc)
            )
            from repro.service.server import serve

            return serve(
                root,
                workers=workers,
                once=True,
                trial_delay=trial_delay,
                log=log,
            )
        if once and had_contact:
            # The coordinator drained and left between our polls — the
            # fleet's normal end-of-campaign shutdown order.
            log(f"worker {me}: coordinator gone after drain, exiting")
            return 0
        raise


def _run_one(
    client: TransportClient,
    me: str,
    work: Dict[str, Any],
    pool,
    trial_delay: float,
    log,
) -> None:
    """Run one leased shard end to end and upload its aggregate."""
    spec = CampaignSpec.from_dict(work["spec"])
    lo, hi = int(work["lo"]), int(work["hi"])
    pre_trial = _renewing_pre_trial(
        client,
        str(work["lease_id"]),
        me,
        float(work.get("lease_seconds", 30.0)),
        trial_delay=trial_delay,
    )
    aggregate = run_shard(spec, lo, hi, pool=pool, pre_trial=pre_trial)
    state = aggregate.to_state()
    reply = client.call(
        "upload",
        {
            "campaign": work["campaign"],
            "shard": work["shard"],
            "lease_id": work["lease_id"],
            "worker": me,
            "state": state,
            "digest": aggregate_state_digest(state),
        },
    )
    status = reply.get("status")
    if status == "quarantined":
        raise LeaseQuarantinedError(
            f"upload of {work['campaign']}#{work['shard']} quarantined: "
            f"digest disagrees with the recorded completion"
        )
    log(
        f"worker {me}: shard {work['campaign']}#{work['shard']} "
        f"[{lo},{hi}) {status}"
    )
