"""Workload registry: what kind of science a campaign spec runs.

PR 8's service hard-wired one workload — the Figure-4 stability trial
folded into a :class:`~repro.service.aggregate.CampaignAggregate`.  The
fuzzer (ROADMAP item 2) is the second tenant family: its trials evaluate
generated branch programs against an opaque preset, and its consumer
needs the raw per-trial records back, not moment summaries.  Rather than
fork the scheduler, a campaign spec now names its **workload**, and this
registry maps the name to the two things the service machinery needs:

* ``run_trial(spec, index, *, pre_trial=None) -> dict`` — the pure
  per-index trial function (same determinism contract as the stability
  trial: a plain-JSON record fully determined by ``(spec, index)``);
* ``aggregate`` — the aggregate class shard results fold into.  Any
  class with the :class:`~repro.service.aggregate.CampaignAggregate`
  interface (``add_trial`` / ``merge`` / ``digest`` / ``summary`` /
  ``to_state`` / ``from_state`` / ``merged``) works; the scheduler's
  checkpoints, store serving and result files all dispatch through it.

Workloads register at import time (``"stability"`` in
:mod:`repro.service.campaign`); :data:`LAZY_WORKLOADS` lets heavyweight
families load on first use so the service core never imports them
eagerly (``"fuzz"`` lives in :mod:`repro.fuzz.workload`).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict

__all__ = [
    "Workload",
    "register_workload",
    "get_workload",
    "workload_names",
    "LAZY_WORKLOADS",
]


@dataclass(frozen=True)
class Workload:
    """One registered campaign workload family."""

    #: Registry key; ``CampaignSpec.workload`` names it.
    name: str
    #: Pure per-trial function ``(spec, index, *, pre_trial) -> record``.
    run_trial: Callable[..., Dict[str, Any]]
    #: Aggregate class shard results fold into (CampaignAggregate-shaped).
    aggregate: type


_REGISTRY: Dict[str, Workload] = {}

#: Workload name -> module that registers it on import.
LAZY_WORKLOADS: Dict[str, str] = {
    "fuzz": "repro.fuzz.workload",
}


def register_workload(workload: Workload) -> Workload:
    """Add (or replace) a workload in the registry."""
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Resolve a workload name, importing lazy providers on first use."""
    if name not in _REGISTRY and name in LAZY_WORKLOADS:
        importlib.import_module(LAZY_WORKLOADS[name])
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown workload {name!r}; valid workloads: "
            + ", ".join(sorted(set(_REGISTRY) | set(LAZY_WORKLOADS)))
        )
    return _REGISTRY[name]


def workload_names() -> list:
    """Every resolvable workload name (registered or lazily importable)."""
    return sorted(set(_REGISTRY) | set(LAZY_WORKLOADS))
