"""Exact mergeable streaming aggregation for sharded campaigns.

A sharded campaign must satisfy two contracts at once:

1. **memory O(shards), not O(trials)** — the service never materialises
   per-trial result lists; each shard folds its trials into a small
   accumulator and the scheduler merges accumulators;
2. **bit-identical at any shard count** — the merged result (and its
   digest) must not depend on how the campaign was split or in which
   order shard frames arrived.

Floating-point Welford/Chan merging fails contract 2: ``(a+b)+c`` and
``a+(b+c)`` differ in the last ulp, so a 4-shard run would digest
differently from a 7-shard run.  These accumulators therefore carry
their sums as :class:`fractions.Fraction` — exact rationals, for which
addition is genuinely associative and commutative, so any grouping of
the same trials reaches the *identical* canonical state.  Floats appear
only at finalisation (:meth:`MomentAccumulator.mean` /
:meth:`~MomentAccumulator.variance`), computed once from the exact sums
— every shard split finalises from the same rationals and hence to the
same bits.  (Python floats convert to ``Fraction`` exactly, so no
precision is lost on the way in either.)

The per-trial identity is kept the same way: each trial record hashes to
a SHA-256 and the aggregate XORs them together — a commutative multiset
digest, invariant under sharding and arrival order, that still detects
any changed, missing or duplicated trial.  Histograms are integer bucket
counts (vector addition merges them), and categorical tallies are plain
``dict`` counters.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CampaignAggregate",
    "HistogramSketch",
    "MomentAccumulator",
    "RecordListAggregate",
    "trial_digest",
]

#: Probe-pattern frequencies live in [0, 1]; 20 equal buckets resolve
#: the 0.85 stability threshold cleanly (bucket edge at 0.85).
DEFAULT_EDGES: Tuple[float, ...] = tuple(i / 20 for i in range(1, 21))


def _fraction_token(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


class MomentAccumulator:
    """Exact count/sum/M2 accumulator over rationals.

    ``add`` and ``merge`` commute and associate exactly (rational
    arithmetic), so a tree of shard merges reaches the same canonical
    ``(n, Σx, Σx²)`` as the serial fold.  ``M2 = Σx² − (Σx)²/n`` — the
    centred second moment of Welford/Chan — is derived at finalisation
    rather than carried, which keeps the merge a plain addition.
    """

    __slots__ = ("n", "total", "total_sq")

    def __init__(
        self,
        n: int = 0,
        total: Fraction = Fraction(0),
        total_sq: Fraction = Fraction(0),
    ) -> None:
        self.n = n
        self.total = Fraction(total)
        self.total_sq = Fraction(total_sq)

    def add(self, value: float) -> None:
        exact = Fraction(value)
        self.n += 1
        self.total += exact
        self.total_sq += exact * exact

    def merge(self, other: "MomentAccumulator") -> None:
        self.n += other.n
        self.total += other.total
        self.total_sq += other.total_sq

    def mean(self) -> Optional[float]:
        return float(self.total / self.n) if self.n else None

    def variance(self) -> Optional[float]:
        """Population variance, exact until the final division."""
        if not self.n:
            return None
        m2 = self.total_sq - self.total * self.total / self.n
        return float(m2 / self.n)

    def state_token(self) -> str:
        return (
            f"{self.n}:{_fraction_token(self.total)}"
            f":{_fraction_token(self.total_sq)}"
        )

    def to_state(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "total": _fraction_token(self.total),
            "total_sq": _fraction_token(self.total_sq),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "MomentAccumulator":
        return cls(
            int(state["n"]),
            Fraction(state["total"]),
            Fraction(state["total_sq"]),
        )


class HistogramSketch:
    """Fixed-edge integer histogram; merging is bucket-wise addition.

    ``edges`` are upper bounds of the finite buckets; one overflow
    bucket catches everything above the last edge (values here are
    frequencies in [0, 1], so it stays empty unless the edges change).
    """

    __slots__ = ("edges", "counts")

    def __init__(
        self,
        edges: Sequence[float] = DEFAULT_EDGES,
        counts: Optional[Sequence[int]] = None,
    ) -> None:
        self.edges = tuple(float(e) for e in edges)
        if counts is None:
            counts = [0] * (len(self.edges) + 1)
        if len(counts) != len(self.edges) + 1:
            raise ValueError("counts must have len(edges) + 1 buckets")
        self.counts = [int(c) for c in counts]

    def add(self, value: float) -> None:
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "HistogramSketch") -> None:
        if self.edges != other.edges:
            raise ValueError("cannot merge sketches with different edges")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]

    def to_state(self) -> Dict[str, Any]:
        return {"edges": list(self.edges), "counts": list(self.counts)}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "HistogramSketch":
        return cls(state["edges"], state["counts"])


def trial_digest(record: Dict[str, Any]) -> bytes:
    """Canonical SHA-256 of one trial record (sorted-key JSON)."""
    text = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).digest()


class CampaignAggregate:
    """Streaming summary of one campaign's trial records.

    Holds everything the service reports per campaign — trial count,
    stability rate, exact moments and histograms of both probe-pattern
    frequencies, categorical tallies of dominant patterns and decoded
    states, and the XOR multiset digest of the raw records (each of
    which embeds its trial's post-run RNG stream digest, so the
    campaign digest pins generator positions too).  ``merge`` combines
    two disjoint shards; every field's merge is associative and
    commutative, making the result independent of the shard layout —
    the property ``tests/test_service.py`` pins at 1/2/4/7 shards.
    """

    __slots__ = (
        "n_trials", "stable_trials", "tt_freq", "nn_freq",
        "tt_hist", "nn_hist", "pattern_counts", "state_counts", "xor",
    )

    def __init__(self) -> None:
        self.n_trials = 0
        self.stable_trials = 0
        self.tt_freq = MomentAccumulator()
        self.nn_freq = MomentAccumulator()
        self.tt_hist = HistogramSketch()
        self.nn_hist = HistogramSketch()
        self.pattern_counts: Dict[str, int] = {}
        self.state_counts: Dict[str, int] = {}
        self.xor = bytes(32)

    # -- accumulation -------------------------------------------------------

    def add_trial(self, record: Dict[str, Any]) -> None:
        self.n_trials += 1
        if record["stable"]:
            self.stable_trials += 1
        self.tt_freq.add(record["tt_frequency"])
        self.nn_freq.add(record["nn_frequency"])
        self.tt_hist.add(record["tt_frequency"])
        self.nn_hist.add(record["nn_frequency"])
        pattern = f"{record['tt_pattern']}|{record['nn_pattern']}"
        self.pattern_counts[pattern] = self.pattern_counts.get(pattern, 0) + 1
        state = record["state"]
        self.state_counts[state] = self.state_counts.get(state, 0) + 1
        self.xor = bytes(
            a ^ b for a, b in zip(self.xor, trial_digest(record))
        )

    def merge(self, other: "CampaignAggregate") -> None:
        self.n_trials += other.n_trials
        self.stable_trials += other.stable_trials
        self.tt_freq.merge(other.tt_freq)
        self.nn_freq.merge(other.nn_freq)
        self.tt_hist.merge(other.tt_hist)
        self.nn_hist.merge(other.nn_hist)
        for counts, theirs in (
            (self.pattern_counts, other.pattern_counts),
            (self.state_counts, other.state_counts),
        ):
            for key, count in theirs.items():
                counts[key] = counts.get(key, 0) + count
        self.xor = bytes(a ^ b for a, b in zip(self.xor, other.xor))

    # -- finalisation -------------------------------------------------------

    def digest(self) -> str:
        """Canonical SHA-256 of the aggregate's exact state.

        Built from the rational tokens (not the finalised floats) and
        the sorted tallies, so two aggregates digest equal iff their
        exact states are equal — the bit-identity the shard property
        test asserts.
        """
        payload = json.dumps(
            {
                "n": self.n_trials,
                "stable": self.stable_trials,
                "tt": self.tt_freq.state_token(),
                "nn": self.nn_freq.state_token(),
                "tt_hist": self.tt_hist.counts,
                "nn_hist": self.nn_hist.counts,
                "patterns": sorted(self.pattern_counts.items()),
                "states": sorted(self.state_counts.items()),
                "xor": self.xor.hex(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> Dict[str, Any]:
        """Human/JSON-facing summary (floats finalised here, once)."""
        return {
            "n_trials": self.n_trials,
            "stable_trials": self.stable_trials,
            "stable_fraction": (
                self.stable_trials / self.n_trials if self.n_trials else None
            ),
            "tt_frequency_mean": self.tt_freq.mean(),
            "tt_frequency_variance": self.tt_freq.variance(),
            "nn_frequency_mean": self.nn_freq.mean(),
            "nn_frequency_variance": self.nn_freq.variance(),
            "tt_histogram": self.tt_hist.to_state(),
            "nn_histogram": self.nn_hist.to_state(),
            "state_counts": dict(sorted(self.state_counts.items())),
            "top_patterns": sorted(
                self.pattern_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )[:8],
            "digest": self.digest(),
        }

    # -- checkpoint round-trip ----------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        return {
            "n_trials": self.n_trials,
            "stable_trials": self.stable_trials,
            "tt_freq": self.tt_freq.to_state(),
            "nn_freq": self.nn_freq.to_state(),
            "tt_hist": self.tt_hist.to_state(),
            "nn_hist": self.nn_hist.to_state(),
            "pattern_counts": dict(self.pattern_counts),
            "state_counts": dict(self.state_counts),
            "xor": self.xor.hex(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "CampaignAggregate":
        agg = cls()
        agg.n_trials = int(state["n_trials"])
        agg.stable_trials = int(state["stable_trials"])
        agg.tt_freq = MomentAccumulator.from_state(state["tt_freq"])
        agg.nn_freq = MomentAccumulator.from_state(state["nn_freq"])
        agg.tt_hist = HistogramSketch.from_state(state["tt_hist"])
        agg.nn_hist = HistogramSketch.from_state(state["nn_hist"])
        agg.pattern_counts = dict(state["pattern_counts"])
        agg.state_counts = dict(state["state_counts"])
        agg.xor = bytes.fromhex(state["xor"])
        return agg

    @classmethod
    def merged(
        cls, parts: Sequence["CampaignAggregate"]
    ) -> "CampaignAggregate":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CampaignAggregate(n={self.n_trials}, "
            f"stable={self.stable_trials}, digest={self.digest()[:12]})"
        )


class RecordListAggregate:
    """Record-preserving aggregate for workloads that need raw trials back.

    The stability workload only ever reads moment summaries, but the
    fuzzer's consumer is an *inference* step: it must replay every
    per-trial record (program descriptor + observed probe hits) against
    its hypothesis lattice.  This aggregate therefore keeps the records
    themselves, keyed by trial index so that merging shards is a plain
    disjoint dict union — associative, commutative, and loudly rejecting
    a duplicated index (which would mean the scheduler dispatched the
    same trial twice).  Records must be plain JSON (the same contract
    the stability trial obeys), which makes the checkpoint round-trip a
    literal copy and keeps the XOR multiset digest well-defined.
    """

    __slots__ = ("_records", "xor")

    def __init__(self) -> None:
        self._records: Dict[int, Dict[str, Any]] = {}
        self.xor = bytes(32)

    @property
    def n_trials(self) -> int:
        return len(self._records)

    # -- accumulation -------------------------------------------------------

    def add_trial(self, record: Dict[str, Any]) -> None:
        index = int(record["index"])
        if index in self._records:
            raise ValueError(f"duplicate trial index {index}")
        self._records[index] = record
        self.xor = bytes(
            a ^ b for a, b in zip(self.xor, trial_digest(record))
        )

    def merge(self, other: "RecordListAggregate") -> None:
        overlap = self._records.keys() & other._records.keys()
        if overlap:
            raise ValueError(
                f"duplicate trial indices in merge: {sorted(overlap)[:8]}"
            )
        self._records.update(other._records)
        self.xor = bytes(a ^ b for a, b in zip(self.xor, other.xor))

    # -- finalisation -------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All trial records, sorted by index (shard-layout invariant)."""
        return [self._records[i] for i in sorted(self._records)]

    def digest(self) -> str:
        """Canonical SHA-256 over the index-sorted records."""
        payload = json.dumps(
            {"records": self.records(), "xor": self.xor.hex()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> Dict[str, Any]:
        return {
            "n_trials": self.n_trials,
            "indices": sorted(self._records),
            "digest": self.digest(),
        }

    # -- checkpoint round-trip ----------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        return {
            "records": {str(i): r for i, r in self._records.items()},
            "xor": self.xor.hex(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RecordListAggregate":
        agg = cls()
        agg._records = {
            int(i): record for i, record in state["records"].items()
        }
        agg.xor = bytes.fromhex(state["xor"])
        return agg

    @classmethod
    def merged(
        cls, parts: Sequence["RecordListAggregate"]
    ) -> "RecordListAggregate":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecordListAggregate(n={self.n_trials}, "
            f"digest={self.digest()[:12]})"
        )
