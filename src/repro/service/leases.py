"""Shard leases: time-bounded exclusive claims with exact recovery.

A distributed campaign cannot *assign* work the way the in-process
scheduler does — a worker that claimed a shard may be SIGKILLed, lose
its network, or stall indefinitely, and the coordinator can never tell
which.  The classic answer is a **lease**: a claim expires unless
renewed, an expired shard is requeued for someone else, and completion
is idempotent so the original worker turning up late (or a duplicated
upload) cannot corrupt the result.

:class:`LeaseTable` is that state machine, kept deliberately pure (no
I/O, injectable clock) so the tests can walk every transition without
sleeping:

``pending`` ──claim──▶ ``leased`` ──complete──▶ ``done``
    ▲                      │
    └──expire (requeue)────┘            attempts > max_attempts ──▶ ``failed``

Invariants the table enforces:

* **at-most-one active lease per shard** — a claim hands out a fresh
  lease id; stale ids (an expired lease the worker still holds) renew
  and complete as no-ops/late-completions, never as a second owner;
* **bounded retries** — each claim increments the shard's attempt
  count; expiry past ``max_attempts`` parks the shard as ``failed``
  (surfaced as a ``lease_exhausted`` resilience event) instead of
  requeueing forever;
* **idempotent completion** — the first completion records the
  aggregate's canonical digest; any later completion with the *same*
  digest is a ``duplicate`` no-op, while a *different* digest is a
  ``mismatch`` the coordinator quarantines (two exact computations of
  one shard can only differ if something is broken — exactness is what
  makes this check possible at all);
* **late completion heals** — a shard whose lease expired (or that
  already failed) still accepts a valid completion: the work is a pure
  function of the spec, so a straggler's answer is as good as anyone's.

The table also keeps a per-worker last-heartbeat ledger (claims,
renewals and completions all count), published together with the
state counts as the ``repro_service_leases{state}`` /
``repro_service_queue_depth`` / ``repro_service_worker_last_heartbeat``
gauges by :func:`publish_lease_metrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import trace as obs

__all__ = [
    "Lease",
    "LeaseTable",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "publish_lease_metrics",
]

#: Shard lifecycle states (the ``repro_service_leases`` gauge labels).
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, LEASED, DONE, FAILED)

#: A shard's identity inside the table.
ShardKey = Tuple[str, int]


@dataclass(frozen=True)
class Lease:
    """One live claim of one shard by one worker."""

    lease_id: str
    campaign_id: str
    shard_index: int
    worker: str
    #: 1-based claim count of this shard (includes this claim).
    attempt: int
    #: Wall-clock deadline; the coordinator requeues past it.
    deadline: float


class _Shard:
    __slots__ = ("state", "attempts", "lease", "digest")

    def __init__(self) -> None:
        self.state = PENDING
        self.attempts = 0
        self.lease: Optional[Lease] = None
        self.digest: Optional[str] = None


class LeaseTable:
    """Deadline-tracked shard claims with idempotent completion.

    Not thread-safe by itself — the coordinator serialises access under
    its own lock (one lock, one table; a lock per method here would
    invite lost updates across check-then-act sequences).
    """

    def __init__(
        self,
        *,
        lease_seconds: float = 30.0,
        max_attempts: int = 6,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.clock = clock
        #: Insertion-ordered shard registry (dicts preserve order).
        self._shards: Dict[ShardKey, _Shard] = {}
        self._leases: Dict[str, ShardKey] = {}
        self._lease_counter = 0
        #: worker -> wall time of its last sign of life.
        self._heartbeats: Dict[str, float] = {}

    # -- registration --------------------------------------------------------

    def add_campaign(
        self,
        campaign_id: str,
        n_shards: int,
        *,
        done: Iterable[Tuple[int, str]] = (),
    ) -> None:
        """Register a campaign's shards; ``done`` pre-completes
        ``(shard_index, digest)`` pairs recovered from a checkpoint or
        served from the store.  Idempotent per campaign."""
        for index in range(n_shards):
            self._shards.setdefault((campaign_id, index), _Shard())
        for index, digest in done:
            shard = self._shards[(campaign_id, index)]
            shard.state = DONE
            shard.digest = digest

    # -- internals -----------------------------------------------------------

    def _touch(self, worker: Optional[str]) -> None:
        if worker:
            self._heartbeats[worker] = self.clock()

    def _release(self, shard: _Shard) -> None:
        if shard.lease is not None:
            self._leases.pop(shard.lease.lease_id, None)
            shard.lease = None

    # -- lifecycle -----------------------------------------------------------

    def expire(self) -> List[ShardKey]:
        """Requeue (or fail) every shard whose lease deadline passed.

        Returns the requeued/failed shard keys.  Called by the
        coordinator before every claim and on every tick, so expiry
        needs no background thread.
        """
        now = self.clock()
        expired: List[ShardKey] = []
        for key, shard in self._shards.items():
            if shard.state != LEASED or shard.lease is None:
                continue
            if shard.lease.deadline > now:
                continue
            lease = shard.lease
            self._release(shard)
            if shard.attempts >= self.max_attempts:
                shard.state = FAILED
                obs.record_resilience_event(
                    "lease_exhausted",
                    detail=(
                        f"{key[0]}#{key[1]} after {shard.attempts} attempts"
                    ),
                )
            else:
                shard.state = PENDING
                obs.record_resilience_event(
                    "lease_expired",
                    detail=(
                        f"{key[0]}#{key[1]} worker={lease.worker} "
                        f"attempt={lease.attempt}"
                    ),
                )
            expired.append(key)
        return expired

    def claim(
        self, worker: str, key: Optional[ShardKey] = None
    ) -> Optional[Lease]:
        """Lease one pending shard to ``worker`` (FIFO, or exactly
        ``key`` when the caller schedules its own order).  ``None`` when
        nothing is pending."""
        self.expire()
        self._touch(worker)
        if key is None:
            key = next(
                (
                    k
                    for k, shard in self._shards.items()
                    if shard.state == PENDING
                ),
                None,
            )
        if key is None:
            return None
        shard = self._shards.get(key)
        if shard is None or shard.state != PENDING:
            return None
        shard.attempts += 1
        self._lease_counter += 1
        lease = Lease(
            lease_id=f"L{self._lease_counter}",
            campaign_id=key[0],
            shard_index=key[1],
            worker=worker,
            attempt=shard.attempts,
            deadline=self.clock() + self.lease_seconds,
        )
        shard.state = LEASED
        shard.lease = lease
        self._leases[lease.lease_id] = key
        return lease

    def renew(self, lease_id: str, worker: str = "") -> Optional[float]:
        """Extend a live lease; returns the new deadline, or ``None``
        for a stale/unknown lease (the worker should expect its shard
        to be re-dispatched and rely on idempotent completion)."""
        self._touch(worker)
        key = self._leases.get(lease_id)
        if key is None:
            return None
        shard = self._shards[key]
        if shard.lease is None or shard.lease.lease_id != lease_id:
            return None
        deadline = self.clock() + self.lease_seconds
        shard.lease = Lease(
            lease_id=lease_id,
            campaign_id=key[0],
            shard_index=key[1],
            worker=shard.lease.worker,
            attempt=shard.lease.attempt,
            deadline=deadline,
        )
        return deadline

    def complete(
        self,
        campaign_id: str,
        shard_index: int,
        digest: str,
        *,
        worker: str = "",
    ) -> str:
        """Record a shard completion; returns the verdict:

        * ``"accepted"`` — first completion (including a late one from
          an expired lease, or a recovery of a ``failed`` shard);
        * ``"duplicate"`` — already done with a byte-identical digest
          (idempotent no-op);
        * ``"mismatch"`` — already done with a *different* digest; the
          caller must quarantine the new payload, not merge it;
        * ``"unknown"`` — no such shard.
        """
        self._touch(worker)
        shard = self._shards.get((campaign_id, shard_index))
        if shard is None:
            return "unknown"
        if shard.state == DONE:
            if shard.digest == digest:
                return "duplicate"
            obs.record_resilience_event(
                "lease_digest_mismatch",
                detail=f"{campaign_id}#{shard_index} worker={worker}",
            )
            return "mismatch"
        self._release(shard)
        shard.state = DONE
        shard.digest = digest
        return "accepted"

    # -- inspection ----------------------------------------------------------

    def shard_state(self, campaign_id: str, shard_index: int) -> str:
        return self._shards[(campaign_id, shard_index)].state

    def shard_digest(
        self, campaign_id: str, shard_index: int
    ) -> Optional[str]:
        return self._shards[(campaign_id, shard_index)].digest

    def pending_keys(self) -> List[ShardKey]:
        return [
            key
            for key, shard in self._shards.items()
            if shard.state == PENDING
        ]

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in STATES}
        for shard in self._shards.values():
            counts[shard.state] += 1
        return counts

    def worker_heartbeats(self) -> Dict[str, float]:
        return dict(self._heartbeats)

    def has_failed(self) -> bool:
        return any(s.state == FAILED for s in self._shards.values())

    def __len__(self) -> int:
        return len(self._shards)


def publish_lease_metrics(table: LeaseTable) -> None:
    """Refresh the lease/queue health gauges from one table's state.

    No-op unless metrics collection is enabled (the coordinator turns it
    on), matching the repo-wide zero-overhead-when-disabled contract.
    """
    tracer = obs.TRACER
    if tracer is None or tracer.metrics is None:
        return
    metrics = tracer.metrics
    counts = table.state_counts()
    leases = metrics.gauge(
        "repro_service_leases",
        "campaign shards by lease state",
        labels=("state",),
    )
    for state in STATES:
        leases.set(counts[state], state=state)
    metrics.gauge(
        "repro_service_queue_depth",
        "shards pending a worker claim",
    ).set(counts[PENDING])
    heartbeat = metrics.gauge(
        "repro_service_worker_last_heartbeat",
        "unix time of each worker's last claim/renew/upload",
        labels=("worker",),
    )
    for worker, stamp in table.worker_heartbeats().items():
        heartbeat.set(stamp, worker=worker)
