"""Campaign specs, the shard planner, and the shard trial executor.

A service campaign is the Figure-4 stability workload as a *pure
function of a plain-data spec*: every trial builds a fresh core from the
spec's preset, compiles its candidate block (through the process-wide
LRU and, when configured, the persistent :mod:`repro.store` tier), and
assesses it with a :class:`~repro.core.calibration.TrialPlan` drawn from
an RNG spawned off the spec seed **keyed by the trial's global index**::

    np.random.SeedSequence(spec.seed, spawn_key=(index,))

``SeedSequence(e).spawn(n)[i]`` is exactly ``SeedSequence(e,
spawn_key=(i,))``, so a shard covering indices ``[lo, hi)`` draws the
same per-trial streams the unsharded run draws for those indices — the
same keying PR 3 used to make worker count irrelevant makes the *shard
layout* irrelevant here.  Combined with the exact mergeable aggregates
(:mod:`repro.service.aggregate`), a campaign split into any number of
shards digests bit-identically to the serial run, RNG stream positions
included (each trial record embeds its core RNG's post-run digest).

Shard results are content-addressed: :func:`shard_store_key` derives a
:mod:`repro.store` key from the result-shaping spec fields plus the
index range, so a re-submitted campaign — or a different tenant's
identical one — is served from the store without dispatching a single
trial.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.bpu.presets import PRESETS
from repro.core.calibration import assess_block_batch, draw_trial_plan
from repro.core.randomizer import RandomizationBlock
from repro.cpu.core import PhysicalCore
from repro.cpu.process import Process
from repro.resilience.checkpoint import rng_state_digest
from repro.service.aggregate import CampaignAggregate
from repro.service.workload import Workload, get_workload, register_workload
from repro.store import ContentStore, store_key
from repro.system.noise import NoiseModel

__all__ = [
    "CampaignSpec",
    "plan_shards",
    "run_campaign",
    "run_shard",
    "run_trial",
    "shard_store_key",
]

#: Noise environments a spec may name (plain strings keep specs JSON).
NOISE_PRESETS: Dict[str, Callable[[], NoiseModel]] = {
    "isolated": NoiseModel.isolated,
    "noisy": NoiseModel.noisy,
    "quiesced": NoiseModel.quiesced,
    "silent": NoiseModel.silent,
}


@dataclass(frozen=True)
class CampaignSpec:
    """Plain-data description of one stability campaign.

    Everything is a JSON-representable primitive so specs round-trip
    through job files, store keys and checkpoint fingerprints without
    ambiguity.  ``tenant`` and ``shards`` shape *scheduling*, not
    results, so they are excluded from :meth:`key_parts` — two tenants
    submitting the same science share one cache entry.
    """

    #: Caller-facing label; results are filed under the campaign id.
    name: str = "campaign"
    #: Fair-share scheduling bucket.
    tenant: str = "default"
    #: Predictor preset (``repro.bpu.presets.PRESETS`` key).
    preset: str = "skylake"
    #: ``PredictorConfig.scaled`` divisor (1 = full-size tables).
    scale: int = 16
    #: Core seed; also the root entropy of the per-trial plan streams.
    seed: int = 7
    #: Target PHT address under calibration.
    target_address: int = 0x4200
    #: Campaign size: candidate blocks assessed.
    n_blocks: int = 64
    #: Branches per randomisation block.
    block_branches: int = 2_000
    #: Probe repetitions per variant per block.
    repetitions: int = 40
    #: Noise environment name (:data:`NOISE_PRESETS` key).
    noise: str = "isolated"
    #: First block seed; trial ``i`` uses ``seed_start + i``.
    seed_start: int = 0
    #: Requested shard count (scheduling hint; results are invariant).
    shards: int = 4
    #: Workload family (:mod:`repro.service.workload` registry key):
    #: what one trial *is* and what aggregate shards fold into.
    workload: str = "stability"
    #: Workload-specific parameters as a canonical JSON object string
    #: (a string keeps the spec frozen/hashable; result-shaping, so it
    #: joins :meth:`key_parts`).  The fuzzer puts its generation's
    #: program descriptors here.
    params: str = "{}"

    def __post_init__(self) -> None:
        if self.preset not in PRESETS:
            raise ValueError(f"unknown preset {self.preset!r}")
        if self.noise not in NOISE_PRESETS:
            raise ValueError(f"unknown noise model {self.noise!r}")
        if self.n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        try:
            get_workload(self.workload)
        except KeyError as exc:
            raise ValueError(str(exc)) from exc
        try:
            decoded = json.loads(self.params)
        except json.JSONDecodeError as exc:
            raise ValueError(f"params is not valid JSON: {exc}") from exc
        if not isinstance(decoded, dict):
            raise ValueError("params must encode a JSON object")

    # -- identity -----------------------------------------------------------

    def key_parts(self) -> Dict[str, Any]:
        """The result-shaping fields (scheduling knobs excluded)."""
        return {
            "preset": self.preset,
            "scale": self.scale,
            "seed": self.seed,
            "target_address": self.target_address,
            "n_blocks": self.n_blocks,
            "block_branches": self.block_branches,
            "repetitions": self.repetitions,
            "noise": self.noise,
            "seed_start": self.seed_start,
            "workload": self.workload,
            "params": self.params,
        }

    def content_key(self) -> str:
        return store_key("campaign", **self.key_parts())

    def campaign_id(self) -> str:
        """Stable, filename-safe id: label plus content-hash suffix."""
        safe = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in self.name
        )
        return f"{safe}-{self.content_key().rsplit('-', 1)[1][:12]}"

    def fingerprint(self) -> Dict[str, Any]:
        """Checkpoint fingerprint: the science plus the shard layout."""
        parts = self.key_parts()
        parts["experiment"] = "service_campaign"
        parts["shards"] = self.shards
        return parts

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def with_shards(self, shards: int) -> "CampaignSpec":
        return replace(self, shards=shards)

    def noise_model(self) -> NoiseModel:
        return NOISE_PRESETS[self.noise]()

    def params_dict(self) -> Dict[str, Any]:
        """The decoded workload parameters (validated at construction)."""
        return json.loads(self.params)

    def workload_impl(self) -> Workload:
        """The resolved :class:`~repro.service.workload.Workload`."""
        return get_workload(self.workload)

    def build_core(self) -> PhysicalCore:
        config = PRESETS[self.preset]()
        if self.scale != 1:
            config = config.scaled(self.scale)
        return PhysicalCore(config, seed=self.seed)


def plan_shards(
    spec: CampaignSpec, n_shards: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``[0, n_blocks)`` into contiguous ``(lo, hi)`` index ranges.

    Sizes differ by at most one trial; a shard count above ``n_blocks``
    clamps so no shard is empty.  The split affects only scheduling —
    the determinism contract makes results identical for every split.
    """
    n = n_shards if n_shards is not None else spec.shards
    if n < 1:
        raise ValueError("shard count must be >= 1")
    n = min(n, spec.n_blocks)
    base, extra = divmod(spec.n_blocks, n)
    shards: List[Tuple[int, int]] = []
    lo = 0
    for index in range(n):
        hi = lo + base + (1 if index < extra else 0)
        shards.append((lo, hi))
        lo = hi
    return shards


def shard_store_key(spec: CampaignSpec, lo: int, hi: int) -> str:
    """Content key of one shard's aggregate in the persistent store."""
    return store_key("shard_result", lo=lo, hi=hi, **spec.key_parts())


def run_trial(
    spec: CampaignSpec,
    index: int,
    *,
    pre_trial: Optional[Callable[[int], None]] = None,
) -> Dict[str, Any]:
    """Trial ``index`` of a campaign, dispatched by the spec's workload.

    Pure function of ``(spec, index)`` whatever the workload; the
    returned record is plain JSON data.
    """
    return spec.workload_impl().run_trial(spec, index, pre_trial=pre_trial)


def _stability_trial(
    spec: CampaignSpec,
    index: int,
    *,
    pre_trial: Optional[Callable[[int], None]] = None,
) -> Dict[str, Any]:
    """The Figure-4 stability trial: one block assessed on a fresh core.

    The scramble/noise randomness comes from the index-keyed spawned
    stream, the core is rebuilt from the spec, and the compiled block is
    content-cached; ``rng_digest`` pins the core generator's exact
    post-trial stream position into the campaign digest.
    """
    if pre_trial is not None:
        pre_trial(index)
    core = spec.build_core()
    spy = Process("service-spy")
    block = RandomizationBlock.generate(
        spec.seed_start + index, n_branches=spec.block_branches
    )
    compiled = block.compile(core, spy)
    child = np.random.SeedSequence(spec.seed, spawn_key=(index,))
    plan = draw_trial_plan(
        np.random.default_rng(child),
        core,
        repetitions=spec.repetitions,
        noise=spec.noise_model(),
    )
    assessment = assess_block_batch(
        core, spy, compiled, spec.target_address, plan=plan
    )
    fsm = core.predictor.bimodal.pht.fsm
    return {
        "index": index,
        "seed": spec.seed_start + index,
        "tt_pattern": assessment.tt_pattern,
        "tt_frequency": float(assessment.tt_frequency),
        "nn_pattern": assessment.nn_pattern,
        "nn_frequency": float(assessment.nn_frequency),
        "stable": bool(assessment.stable),
        "state": assessment.decoded(fsm).value,
        "rng_digest": rng_state_digest(core.rng),
    }


def run_shard(
    spec: CampaignSpec,
    lo: int,
    hi: int,
    *,
    pool=None,
    pre_trial: Optional[Callable[[int], None]] = None,
):
    """Fold trials ``[lo, hi)`` into the workload's aggregate.

    Streams through ``pool.map_reduce`` when a pool is given (memory
    O(1) in the trial count); runs the plain serial fold otherwise —
    which is also how a shard executes *inside* a forked service worker,
    where the pool reentrancy latch forces the serial path anyway.
    """
    aggregate_cls = spec.workload_impl().aggregate

    def fold(acc, record: Dict[str, Any]):
        acc.add_trial(record)
        return acc

    indices = range(lo, hi)
    if pool is not None:
        return pool.map_reduce(
            lambda i: run_trial(spec, i, pre_trial=pre_trial),
            indices,
            merge=fold,
            zero=aggregate_cls(),
        )
    acc = aggregate_cls()
    for index in indices:
        acc.add_trial(run_trial(spec, index, pre_trial=pre_trial))
    return acc


def run_campaign(
    spec: CampaignSpec,
    *,
    n_shards: Optional[int] = None,
    pool=None,
    store: Optional[ContentStore] = None,
    pre_trial: Optional[Callable[[int], None]] = None,
):
    """Run a whole campaign shard by shard and merge the aggregates.

    The simple single-campaign entry point (the CLI bench and the
    property tests use it); :class:`~repro.service.scheduler.
    CampaignService` is the multi-tenant scheduler over the same
    pieces.  With a ``store``, shard aggregates hit the persistent
    cache: a warm re-run merges stored shards without running a trial.
    """
    aggregate_cls = spec.workload_impl().aggregate
    parts: List[Any] = []
    for lo, hi in plan_shards(spec, n_shards):
        key = shard_store_key(spec, lo, hi)
        if store is not None:
            found, value = store.get(key)
            if found and isinstance(value, aggregate_cls):
                parts.append(value)
                continue
        part = run_shard(spec, lo, hi, pool=pool, pre_trial=pre_trial)
        if store is not None:
            store.put(key, part)
        parts.append(part)
    return aggregate_cls.merged(parts)


register_workload(
    Workload(
        name="stability",
        run_trial=_stability_trial,
        aggregate=CampaignAggregate,
    )
)
