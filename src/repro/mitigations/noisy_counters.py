"""§10.2: "removing or adding noise to the performance counters".

The spy's counter-based probe classifies a branch as mispredicted when
the misprediction counter advanced across it; additive random noise on
counter *reads* (cf. TimeWarp-style fuzzing of measurement mechanisms)
makes that delta unreliable.  ``magnitude`` is the maximum absolute noise
per read; even ±1 is devastating to a delta-of-one measurement, which
the ablation bench quantifies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mitigations.base import Mitigation

__all__ = ["NoisyPerformanceCounters"]


class NoisyPerformanceCounters(Mitigation):
    """Additive uniform noise on every performance-counter read."""

    name = "noisy-performance-counters"

    def __init__(self, magnitude: int = 2) -> None:
        if magnitude < 0:
            raise ValueError("magnitude cannot be negative")
        self.magnitude = int(magnitude)

    def perturb_counter(self, rng: np.random.Generator, value: int) -> int:
        if self.magnitude == 0:
            return value
        noise = int(rng.integers(-self.magnitude, self.magnitude + 1))
        return max(0, value + noise)
