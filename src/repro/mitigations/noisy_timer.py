"""§10.2: noise on timing measurements (TimeWarp-style [40]).

When counters are protected the attacker falls back to ``rdtscp``
(paper §8); fuzzing observable latencies attacks that channel too.  The
misprediction penalty is ~tens of cycles, so jitter with a comparable
standard deviation collapses the hit/miss separation of Figure 7 — the
ablation bench sweeps ``sigma`` to find the protection threshold.
"""

from __future__ import annotations

import numpy as np

from repro.mitigations.base import Mitigation

__all__ = ["NoisyTimer"]


class NoisyTimer(Mitigation):
    """Gaussian noise added to every observable branch latency."""

    name = "noisy-timer"

    def __init__(self, sigma: float = 40.0) -> None:
        if sigma < 0:
            raise ValueError("sigma cannot be negative")
        self.sigma = float(sigma)

    def perturb_timing(self, rng: np.random.Generator, latency: int) -> int:
        if self.sigma == 0:
            return latency
        return max(1, int(round(latency + rng.normal(0.0, self.sigma))))
