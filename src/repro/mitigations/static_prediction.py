"""§10.2 "Removing prediction for sensitive branches".

"A software developer can indicate the branches capable of leaking secret
information and request them to be protected.  Then the CPU must avoid
predicting these branches, rely always on static prediction and avoid
updating any BPU structures after such branches are executed."

Protection is declared per branch via
:meth:`repro.cpu.process.Process.protect_branch`; this mitigation makes
the core honour those declarations.  Note the paper's caveat: this does
not stop the *covert* channel (a cooperating sender simply uses an
unprotected branch), a property the ablation bench demonstrates.
"""

from __future__ import annotations

from repro.mitigations.base import Mitigation

__all__ = ["StaticPredictionForSensitiveBranches"]


class StaticPredictionForSensitiveBranches(Mitigation):
    """Honour per-process protected-branch declarations."""

    name = "static-prediction-sensitive"

    def suppresses_prediction(self, process, address: int) -> bool:
        return int(address) in process.protected_branches
