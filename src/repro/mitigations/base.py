"""Mitigation plug-in protocol (paper §10).

A :class:`Mitigation` customises how the physical core uses the BPU for a
given process.  Each hook has an identity default, so a mitigation
overrides only what it changes; a :class:`MitigationStack` composes
several mitigations (hooks apply in installation order).

This module deliberately imports nothing from :mod:`repro.cpu` so the
core can depend on the protocol without an import cycle.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bpu.partition import Partition

__all__ = ["Mitigation", "MitigationStack"]


class Mitigation:
    """Base class: the identity mitigation (no protection)."""

    #: Human-readable name used in ablation reports.
    name = "none"

    def pht_key(self, process) -> int:
        """Per-process value XORed into PHT index computation (§10.2
        "Randomization of the PHT").  Identity: 0."""
        return 0

    def partition(self, process) -> Optional[Partition]:
        """Per-process slice of the prediction tables (§10.2
        "Partitioning the BPU").  Identity: the whole table."""
        return None

    def suppresses_prediction(self, process, address: int) -> bool:
        """Whether this branch must use static prediction and skip all
        BPU updates (§10.2 "Removing prediction for sensitive
        branches").  Identity: never."""
        return False

    def update_outcome(
        self, rng: np.random.Generator, taken: bool
    ) -> bool:
        """The outcome actually recorded into the FSMs (§10.2 "change the
        prediction FSM to make it more stochastic").  Identity: the true
        outcome."""
        return taken

    def perturb_counter(self, rng: np.random.Generator, value: int) -> int:
        """Noise applied to performance-counter reads (§10.2 "removing or
        adding noise to the performance counters").  Identity: exact."""
        return value

    def perturb_timing(self, rng: np.random.Generator, latency: int) -> int:
        """Noise applied to observable branch latency (§10.2, Timewarp-
        style fuzzy timekeeping).  Identity: exact."""
        return latency

    def on_context_switch(self, core) -> None:
        """Invoked by the scheduler at context-switch boundaries.

        Lets defenses scrub state between security domains — e.g. the
        BTB-flush defense deployed against the prior-work BTB attacks
        (paper §11), which the ``bench_btb_vs_branchscope`` ablation
        shows does *not* stop BranchScope.  Identity: nothing.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<mitigation {self.name}>"


class MitigationStack:
    """An ordered collection of installed mitigations."""

    def __init__(self, mitigations: Optional[List[Mitigation]] = None) -> None:
        self._mitigations: List[Mitigation] = list(mitigations or [])

    def install(self, mitigation: Mitigation) -> None:
        """Add a mitigation at the end of the stack."""
        self._mitigations.append(mitigation)

    def __iter__(self):
        return iter(self._mitigations)

    def __len__(self) -> int:
        return len(self._mitigations)

    # -- composed hooks -----------------------------------------------------

    def pht_key(self, process) -> int:
        key = 0
        for m in self._mitigations:
            key ^= m.pht_key(process)
        return key

    def partition(self, process) -> Optional[Partition]:
        # Last partitioning mitigation wins; stacking partitions is not
        # meaningful.
        result = None
        for m in self._mitigations:
            part = m.partition(process)
            if part is not None:
                result = part
        return result

    def suppresses_prediction(self, process, address: int) -> bool:
        return any(
            m.suppresses_prediction(process, address) for m in self._mitigations
        )

    def update_outcome(self, rng: np.random.Generator, taken: bool) -> bool:
        outcome = taken
        for m in self._mitigations:
            outcome = m.update_outcome(rng, outcome)
        return outcome

    def perturb_counter(self, rng: np.random.Generator, value: int) -> int:
        for m in self._mitigations:
            value = m.perturb_counter(rng, value)
        return value

    def perturb_timing(self, rng: np.random.Generator, latency: int) -> int:
        for m in self._mitigations:
            latency = m.perturb_timing(rng, latency)
        return latency

    def on_context_switch(self, core) -> None:
        for m in self._mitigations:
            m.on_context_switch(core)
