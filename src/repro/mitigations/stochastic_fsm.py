"""§10.2: "change the prediction FSM to make it more stochastic,
interfering with the attacker's ability to precisely infer the direction
of the branch taken by the victim".

With probability ``flip_prob`` a branch's FSM training update records a
*random* direction instead of the actual outcome.  Predictions themselves
stay architectural (hit/miss is judged against the true outcome), so the
defense costs prediction accuracy proportional to ``flip_prob`` — the
ablation bench measures both the security gain and that accuracy cost.
"""

from __future__ import annotations

import numpy as np

from repro.mitigations.base import Mitigation

__all__ = ["StochasticFSM"]


class StochasticFSM(Mitigation):
    """Randomly corrupt FSM training updates."""

    name = "stochastic-fsm"

    def __init__(self, flip_prob: float = 0.25) -> None:
        if not 0.0 <= flip_prob <= 1.0:
            raise ValueError("flip_prob must be a probability")
        self.flip_prob = float(flip_prob)

    def update_outcome(self, rng: np.random.Generator, taken: bool) -> bool:
        if self.flip_prob > 0.0 and rng.random() < self.flip_prob:
            return bool(rng.integers(0, 2))
        return taken
