"""BTB-scrubbing defenses against the *prior-work* attacks (paper §11).

The BTB-based side channels of Acıiçmez et al. and the Jump-over-ASLR /
branch-shadowing line all observe BTB evictions or target hits, so the
natural defense is to scrub the BTB when crossing a security boundary
(or to partition it).  The paper's key point — its first contribution
bullet — is that BranchScope "is not affected by defenses against
BTB-based attacks": the directional PHT keeps leaking with the BTB
squeaky clean.  The ``bench_btb_vs_branchscope`` ablation demonstrates
exactly that with this mitigation installed.
"""

from __future__ import annotations

from repro.mitigations.base import Mitigation

__all__ = ["BtbFlushOnContextSwitch"]


class BtbFlushOnContextSwitch(Mitigation):
    """Invalidate the whole BTB at every context-switch boundary."""

    name = "btb-flush-on-context-switch"

    def __init__(self) -> None:
        self.flush_count = 0

    def on_context_switch(self, core) -> None:
        core.predictor.btb.flush()
        self.flush_count += 1
