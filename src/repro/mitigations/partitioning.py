"""§10.2 "Partitioning the BPU".

"The BPU may be partitioned such that attackers and victims do not share
the same structures.  For example, SGX code may use a different branch
predictor than normal code.  ...  With partitioning, the attacker loses
the ability to create collisions with the victim."

Two policies are provided:

* :meth:`BpuPartitioning.by_enclave` — enclave processes use one half of
  the tables, normal processes the other (the paper's SGX example);
* :meth:`BpuPartitioning.by_process` — each process hashes to one of
  ``n_partitions`` equal slices (the "private partition" variant, cf.
  the paper's reference to requesting private BPU partitions).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.bpu.partition import Partition
from repro.mitigations.base import Mitigation

__all__ = ["BpuPartitioning"]


class BpuPartitioning(Mitigation):
    """Confine each process's predictions to a slice of the tables."""

    name = "bpu-partitioning"

    def __init__(
        self,
        table_entries: int,
        partition_of: Callable[[object], int],
        n_partitions: int,
    ) -> None:
        """``partition_of(process)`` returns the partition number in
        ``[0, n_partitions)``; slices are equal-sized."""
        if n_partitions <= 0 or table_entries % n_partitions != 0:
            raise ValueError(
                "table size must divide evenly into partitions"
            )
        self._size = table_entries // n_partitions
        self._n = n_partitions
        self._partition_of = partition_of

    @classmethod
    def by_enclave(cls, table_entries: int) -> "BpuPartitioning":
        """Enclave code predicts in one half, normal code in the other."""
        return cls(
            table_entries,
            partition_of=lambda process: 1 if process.enclave else 0,
            n_partitions=2,
        )

    @classmethod
    def by_process(
        cls, table_entries: int, n_partitions: int = 8
    ) -> "BpuPartitioning":
        """Processes hash into ``n_partitions`` private slices."""
        return cls(
            table_entries,
            partition_of=lambda process: process.pid % n_partitions,
            n_partitions=n_partitions,
        )

    def partition(self, process) -> Optional[Partition]:
        number = self._partition_of(process) % self._n
        return Partition(offset=number * self._size, size=self._size)
