"""§10.2 "Randomization of the PHT".

"The PHT indexing function can be modified to receive as input some data
unique to this software entity ... One time randomization may be
vulnerable to a probing attack that examines PHT entries one by one until
it finds the collision; periodic randomization can be used (sacrificing
some performance)."

Each process gets a secret key XORed into the index computation, so
cross-process address-equality no longer implies PHT collision.  With
``rekey_period`` set, keys are refreshed after that many key lookups,
modelling the periodic variant.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.mitigations.base import Mitigation

__all__ = ["PhtIndexRandomization"]


class PhtIndexRandomization(Mitigation):
    """Per-process secret PHT index keys, optionally rekeyed periodically."""

    name = "pht-index-randomization"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        key_bits: int = 24,
        rekey_period: Optional[int] = None,
    ) -> None:
        if rekey_period is not None and rekey_period <= 0:
            raise ValueError("rekey_period must be positive")
        self._rng = rng if rng is not None else np.random.default_rng()
        self._key_bits = key_bits
        self._keys: Dict[int, int] = {}
        self._rekey_period = rekey_period
        self._lookups = 0

    def _fresh_key(self) -> int:
        return int(self._rng.integers(0, 1 << self._key_bits))

    def pht_key(self, process) -> int:
        self._lookups += 1
        if (
            self._rekey_period is not None
            and self._lookups % self._rekey_period == 0
        ):
            self._keys.clear()
        if process.pid not in self._keys:
            self._keys[process.pid] = self._fresh_key()
        return self._keys[process.pid]
