"""Defenses against BranchScope (paper §10).

Software-only mitigations (§10.1) — secret-independent branching and
if-conversion — are *victim code* properties, demonstrated in
``examples/mitigated_victim.py`` rather than installed on the core.

Hardware-supported defenses (§10.2) are :class:`~repro.mitigations.base.
Mitigation` plug-ins installed with
:meth:`repro.cpu.core.PhysicalCore.install_mitigation`:

* :class:`PhtIndexRandomization` — per-software-entity PHT index keys;
* :class:`StaticPredictionForSensitiveBranches` — no predict / no update
  for developer-marked branches;
* :class:`BpuPartitioning` — disjoint predictor partitions;
* :class:`NoisyPerformanceCounters` / :class:`NoisyTimer` — fuzz the
  attacker's measurement channels;
* :class:`StochasticFSM` — randomised prediction-FSM updates.

The ``bench_ablation_mitigations`` benchmark measures each defense's
effect on the covert channel's error rate.
"""

from repro.mitigations.base import Mitigation, MitigationStack
from repro.mitigations.btb_defense import BtbFlushOnContextSwitch
from repro.mitigations.noisy_counters import NoisyPerformanceCounters
from repro.mitigations.noisy_timer import NoisyTimer
from repro.mitigations.partitioning import BpuPartitioning
from repro.mitigations.pht_randomization import PhtIndexRandomization
from repro.mitigations.static_prediction import (
    StaticPredictionForSensitiveBranches,
)
from repro.mitigations.stochastic_fsm import StochasticFSM

__all__ = [
    "BpuPartitioning",
    "BtbFlushOnContextSwitch",
    "Mitigation",
    "MitigationStack",
    "NoisyPerformanceCounters",
    "NoisyTimer",
    "PhtIndexRandomization",
    "StaticPredictionForSensitiveBranches",
    "StochasticFSM",
]
