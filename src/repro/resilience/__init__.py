"""``repro.resilience`` — fault injection and crash-safe recovery.

Production-scale campaigns (the ROADMAP north star) run for hours across
many workers; this subsystem makes every failure mode along the way both
*survivable* and *testable*:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection harness: crash/hang/corrupt a
  :class:`~repro.parallel.TrialPool` worker, flip bytes in checkpoint
  files, and drop/delay/duplicate/truncate
  :mod:`repro.service.transport` requests, all as a pure function of a
  seed so chaos runs are reproducible;
* :mod:`repro.resilience.checkpoint` — atomic (temp + fsync + rename)
  SHA-256-verified campaign checkpoints with automatic rollback to the
  last good generation, and :class:`ResumableCampaign`, the
  checkpointed ``pool.map`` behind ``--resume`` on the benches and the
  ``repro campaign`` CLI;
* the supervised execution layer itself lives in
  :mod:`repro.parallel.pool` (heartbeat + deadline detection, retry
  with exponential backoff, graceful serial degradation) — the faults
  here are its test vectors.

See MODELING.md §10 for the fault taxonomy and determinism guarantees.
"""

from repro.resilience.checkpoint import (
    CheckpointCorruption,
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    ResumableCampaign,
    rng_state_digest,
    verify_fingerprint,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    NetworkFaultInjector,
    NetworkFaultSpec,
)

__all__ = [
    "CheckpointCorruption",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointStore",
    "FaultInjector",
    "FaultSpec",
    "NetworkFaultInjector",
    "NetworkFaultSpec",
    "ResumableCampaign",
    "rng_state_digest",
    "verify_fingerprint",
]
