"""Deterministic fault injection for the trial engine and checkpoints.

The resilience subsystem's recovery paths — dead-worker requeue, hung
worker kills, corrupted-frame retries, checkpoint rollback — only count
as working if CI can *exercise* them on every push.  Real faults are rare
and unschedulable, so this module manufactures them on demand,
deterministically:

* a :class:`FaultInjector` decides, as a **pure function of
  ``(seed, chunk_index, attempt)``**, whether a
  :class:`~repro.parallel.TrialPool` worker should crash (hard
  ``os._exit``), hang (sleep past the supervisor's heartbeat deadline)
  or corrupt its result frame (flip bytes in the pickled payload so the
  integrity digest mismatches);
* :meth:`FaultInjector.corrupt_file` flips one byte of an on-disk file
  (a checkpoint, a result) at a seed-determined offset, for
  torn-file/rollback tests.

Purity of :meth:`decide` matters more than it looks: worker processes
fork at arbitrary points, so a decision drawn from a *shared* RNG stream
would depend on scheduling.  Instead every decision hashes its own
``SeedSequence([seed, chunk_index, attempt])``, so the fault schedule of
a whole chaos campaign is reproducible from one integer — and because
the attempt number is part of the key, a chunk that crashes on attempt 0
can deterministically succeed on attempt 1, which is what lets the chaos
suite assert *recovery to bit-identical results* rather than mere
survival.

For exact-shape tests a ``plan`` pins specific ``(chunk, attempt)``
pairs to specific faults, bypassing the rates entirely.

The same philosophy extends across the network boundary:
:class:`NetworkFaultSpec` / :class:`NetworkFaultInjector` decide — as a
pure function of ``(seed, endpoint key, attempt)`` — whether one
transport request should be dropped before sending, have its *response*
discarded (the request executed, the caller never learns), be delayed,
be sent twice (exercising server-side idempotence), or be truncated
mid-frame (tripping the receiver's SHA-256 integrity check).  The
distributed chaos suite storms the :mod:`repro.service.transport`
client with these and asserts the merged campaign digest still equals
the unfaulted single-host run.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultInjector",
    "NetworkFaultKind",
    "NetworkFaultSpec",
    "NetworkFaultInjector",
]

#: The injectable worker faults (also the ``plan`` values).
FaultKind = str
CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
_KINDS = (CRASH, HANG, CORRUPT)

#: Exit status an injected crash dies with — distinctive in ``ps``/logs.
CRASH_EXIT_CODE = 57


@dataclass(frozen=True)
class FaultSpec:
    """What faults to inject, and how often.

    Rates are independent per-chunk-attempt probabilities, evaluated in
    the order crash → hang → corrupt over one uniform draw (so their sum
    must stay <= 1).  ``plan`` overrides the rates for the listed
    ``(chunk_index, attempt)`` keys — an entry of ``None`` forces *no*
    fault for that key.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: How long an injected hang sleeps before proceeding.  Must exceed
    #: the supervisor's heartbeat deadline for the hang to be detected
    #: (a shorter sleep is just a slow worker).
    hang_seconds: float = 30.0
    #: Exact-script overrides: ``{(chunk_index, attempt): kind | None}``.
    plan: Dict[Tuple[int, int], Optional[FaultKind]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        total = self.crash_rate + self.hang_rate + self.corrupt_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"fault rates must sum to [0, 1], got {total}"
            )
        for key, kind in self.plan.items():
            if kind is not None and kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} for {key}; "
                    f"known: {_KINDS}"
                )


class FaultInjector:
    """Seeded oracle deciding which trial chunks misbehave, and how."""

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)

    def decide(self, chunk_index: int, attempt: int) -> Optional[FaultKind]:
        """The fault (or ``None``) for one dispatch of one chunk.

        Pure in ``(self.seed, chunk_index, attempt)`` — safe to evaluate
        in any process, any number of times.
        """
        key = (int(chunk_index), int(attempt))
        if key in self.spec.plan:
            return self.spec.plan[key]
        spec = self.spec
        if spec.crash_rate == spec.hang_rate == spec.corrupt_rate == 0.0:
            return None
        draw = np.random.default_rng(
            np.random.SeedSequence([self.seed, key[0], key[1]])
        ).random()
        if draw < spec.crash_rate:
            return CRASH
        if draw < spec.crash_rate + spec.hang_rate:
            return HANG
        if draw < spec.crash_rate + spec.hang_rate + spec.corrupt_rate:
            return CORRUPT
        return None

    def crash(self) -> None:
        """Die the way a real fault does: no cleanup, no exception."""
        os._exit(CRASH_EXIT_CODE)

    def corrupt_bytes(
        self, data: bytes, chunk_index: int, attempt: int
    ) -> bytes:
        """Return ``data`` with one seed-determined byte flipped."""
        if not data:
            return data
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, int(chunk_index), int(attempt), 0xC0]
            )
        )
        offset = int(rng.integers(len(data)))
        corrupted = bytearray(data)
        corrupted[offset] ^= 0xFF
        return bytes(corrupted)

    def corrupt_file(self, path, salt: int = 0) -> int:
        """Flip one byte of the file at ``path``; returns the offset.

        The write is deliberately *non*-atomic (in place) — this is the
        torn-file simulator the checkpoint rollback tests point at real
        checkpoint files.  Raises ``ValueError`` on an empty file (no
        byte to flip means nothing corrupted, which a recovery test
        should notice, not silently pass).
        """
        data = bytearray(open(path, "rb").read())
        if not data:
            raise ValueError(f"cannot corrupt empty file {path}")
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, int(salt), 0xF1])
        )
        offset = int(rng.integers(len(data)))
        data[offset] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(data)
        return offset


# -- network faults -----------------------------------------------------------

#: The injectable transport faults (also the ``plan`` values).
NetworkFaultKind = str
DROP = "drop"
DROP_RESPONSE = "drop_response"
DELAY = "delay"
DUPLICATE = "duplicate"
TRUNCATE = "truncate"
_NETWORK_KINDS = (DROP, DROP_RESPONSE, DELAY, DUPLICATE, TRUNCATE)


def _endpoint_token(endpoint: str) -> int:
    """Stable integer key of one endpoint string (for SeedSequence)."""
    return int.from_bytes(
        hashlib.sha256(endpoint.encode("utf-8")).digest()[:8], "big"
    )


@dataclass(frozen=True)
class NetworkFaultSpec:
    """Which transport faults to inject, and how often.

    Rates are independent per-request probabilities evaluated in the
    order drop → drop_response → delay → duplicate → truncate over one
    uniform draw (their sum must stay <= 1).  The five kinds cover the
    distributed failure surface the lease protocol must absorb:

    * ``drop`` — the request is never sent (a connection that died
      before the bytes left);
    * ``drop_response`` — the request is sent and *executed*, but the
      response is discarded (a connection that died on the way back) —
      the caller retries an operation that already happened, which is
      what forces every endpoint to be idempotent;
    * ``delay`` — the request is stalled ``delay_seconds`` before
      sending (reordering pressure; long enough delays expire leases);
    * ``duplicate`` — the request is sent twice back-to-back (a
      retransmit razor against double-claim / double-complete bugs);
    * ``truncate`` — the request body is cut mid-frame, so the
      receiver's SHA-256 framing check rejects it (a torn write on the
      wire must read as *no* request, never as a different request).

    ``plan`` overrides the rates for exact ``(endpoint_key, attempt)``
    pairs; an entry of ``None`` forces no fault for that key.
    """

    drop_rate: float = 0.0
    drop_response_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    truncate_rate: float = 0.0
    #: How long an injected delay stalls the request.
    delay_seconds: float = 0.05
    #: Exact-script overrides: ``{(endpoint_key, attempt): kind | None}``.
    plan: Dict[Tuple[str, int], Optional[NetworkFaultKind]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        total = (
            self.drop_rate + self.drop_response_rate + self.delay_rate
            + self.duplicate_rate + self.truncate_rate
        )
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"network fault rates must sum to [0, 1], got {total}"
            )
        for key, kind in self.plan.items():
            if kind is not None and kind not in _NETWORK_KINDS:
                raise ValueError(
                    f"unknown network fault kind {kind!r} for {key}; "
                    f"known: {_NETWORK_KINDS}"
                )


class NetworkFaultInjector:
    """Seeded oracle deciding which transport requests misbehave.

    Same purity contract as :class:`FaultInjector`: the decision for
    ``(endpoint_key, attempt)`` is a pure function of the seed, so a
    chaos storm's whole fault schedule is reproducible from one integer,
    and a request dropped on attempt 0 deterministically goes through on
    a later attempt — which is what lets the distributed chaos suite
    assert *recovery to bit-identical digests* rather than mere
    survival.  The endpoint key is whatever string the transport hands
    in; :class:`repro.service.transport.TransportClient` uses
    ``"<endpoint>#<per-endpoint request number>"`` so two different
    requests to one endpoint draw independent fates.
    """

    def __init__(self, spec: NetworkFaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)

    def decide(
        self, endpoint_key: str, attempt: int
    ) -> Optional[NetworkFaultKind]:
        """The fault (or ``None``) for one attempt of one request."""
        key = (str(endpoint_key), int(attempt))
        if key in self.spec.plan:
            return self.spec.plan[key]
        spec = self.spec
        rates = (
            (DROP, spec.drop_rate),
            (DROP_RESPONSE, spec.drop_response_rate),
            (DELAY, spec.delay_rate),
            (DUPLICATE, spec.duplicate_rate),
            (TRUNCATE, spec.truncate_rate),
        )
        if all(rate == 0.0 for _, rate in rates):
            return None
        draw = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, _endpoint_token(key[0]), key[1], 0x7E7]
            )
        ).random()
        threshold = 0.0
        for kind, rate in rates:
            threshold += rate
            if draw < threshold:
                return kind
        return None

    def truncate_bytes(self, data: bytes) -> bytes:
        """A torn wire frame: the first half of ``data`` (at least one
        byte short, so the integrity check must fail)."""
        if len(data) <= 1:
            return b""
        return data[: len(data) // 2]
