"""Crash-safe resumable experiment checkpoints (temp + fsync + rename).

The paper's campaigns are long: Figure 4 alone is 10,000 blocks x 1,000
probes (~30 min at full scale in this repro), the Table 2/3 sweeps run
millions of bits at paper size.  A SIGKILL'd worker box, an OOM reaper
or a torn file must not cost the whole run, so campaign progress is
persisted through three layers:

* :class:`CheckpointStore` — one checkpoint file, written atomically via
  :mod:`repro.ioutil` and framed with a magic header plus a SHA-256
  digest of the payload.  Every ``save`` first demotes the current file
  to ``<path>.prev``, so there is always a *last good* generation;
  ``load`` verifies the digest and **automatically rolls back** to the
  previous generation when the current one is torn or bit-flipped
  (quarantining the corrupt file as ``<path>.corrupt`` for forensics,
  and counting the rollback on the always-on resilience counters).
* :class:`ResumableCampaign` — a checkpointed ``pool.map``: trial
  results accumulate in batches, each batch boundary saves a checkpoint
  (results so far, the campaign fingerprint, and — when the campaign
  owns a generator — the exact RNG stream position), and a resumed run
  skips completed trials and restores the stream position, so the final
  result list is **bit-identical** to an uninterrupted run.  A
  fingerprint mismatch (same file, different experiment parameters)
  raises :class:`CheckpointMismatch` instead of silently mixing results.
* the wiring in :func:`repro.core.calibration.stability_experiment`,
  :func:`repro.core.calibration.find_block`,
  :meth:`repro.core.covert.CovertChannel.trial_sweep`, the
  fig4/table2/table3 benches (``--resume``) and the ``repro campaign``
  CLI.

Determinism contract: a campaign is resumable bit-identically iff each
trial is a pure function of its payload index (the
:mod:`repro.parallel` contract already requires this for worker-count
invariance) or all inter-trial RNG state flows through the campaign's
``rng`` (serial campaigns only — the checkpoint then carries the stream
position across the kill).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.ioutil import atomic_write_bytes, fsync_directory
from repro.obs import trace as obs

__all__ = [
    "CheckpointError",
    "CheckpointCorruption",
    "CheckpointMismatch",
    "CheckpointStore",
    "ResumableCampaign",
    "rng_state_digest",
    "verify_fingerprint",
]

#: File magic; bump the version when the payload schema changes.
MAGIC = b"REPRO-CKPT-1\n"

#: Pickle protocol pinned for stable bytes across interpreter minors.
_PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointCorruption(CheckpointError):
    """Checkpoint (and any previous generation) failed integrity checks."""


class CheckpointMismatch(CheckpointError):
    """Checkpoint belongs to a different campaign (fingerprint differs)."""


def _encode(state: Dict[str, Any]) -> bytes:
    payload = pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return MAGIC + digest + b"\n" + payload


def _decode(data: bytes, path: Path) -> Dict[str, Any]:
    if not data.startswith(MAGIC):
        raise CheckpointCorruption(f"{path}: bad magic (torn or foreign file)")
    rest = data[len(MAGIC):]
    header, sep, payload = rest.partition(b"\n")
    if not sep:
        raise CheckpointCorruption(f"{path}: truncated header")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != header:
        raise CheckpointCorruption(f"{path}: SHA-256 digest mismatch")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # digest passed but unpicklable → corrupt
        raise CheckpointCorruption(f"{path}: undecodable payload: {exc}")
    if not isinstance(state, dict):
        raise CheckpointCorruption(f"{path}: unexpected payload type")
    return state


def rng_state_digest(rng: np.random.Generator) -> str:
    """Canonical SHA-256 of a generator's exact stream position."""
    state = rng.bit_generator.state

    def plain(obj):
        if isinstance(obj, dict):
            return {k: plain(obj[k]) for k in sorted(obj)}
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.integer,)):
            return int(obj)
        return obj

    text = json.dumps(plain(state), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Two-generation atomic checkpoint file with integrity verification.

    ``save`` is crash-safe at every instant: the payload is fsync'd
    under a temp name before any rename, the demotion of the current
    generation and the promotion of the new one are single
    ``os.replace`` calls, and a kill between them leaves either
    (current), (current + prev) or (prev only) — ``load`` handles all
    three.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.previous_path = self.path.with_name(self.path.name + ".prev")
        self.corrupt_path = self.path.with_name(self.path.name + ".corrupt")

    def exists(self) -> bool:
        return self.path.exists() or self.previous_path.exists()

    def save(self, state: Dict[str, Any]) -> Path:
        """Persist ``state``; the prior checkpoint becomes the rollback."""
        data = _encode(state)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            os.replace(str(self.path), str(self.previous_path))
            fsync_directory(self.path.parent)
        atomic_write_bytes(self.path, data)
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "resilience",
                "checkpoint_saved",
                path=str(self.path),
                bytes=len(data),
            )
        return self.path

    def load(self) -> Optional[Dict[str, Any]]:
        """The newest intact checkpoint state, or ``None`` if none exists.

        A corrupt current generation triggers automatic rollback: the
        bad file is quarantined as ``<path>.corrupt`` and the previous
        generation is promoted back to current (so subsequent saves
        re-demote it normally).  Raises :class:`CheckpointCorruption`
        only when *no* generation survives verification.
        """
        failures = []
        if self.path.exists():
            try:
                return _decode(self.path.read_bytes(), self.path)
            except CheckpointCorruption as exc:
                failures.append(str(exc))
                os.replace(str(self.path), str(self.corrupt_path))
        if self.previous_path.exists():
            try:
                state = _decode(
                    self.previous_path.read_bytes(), self.previous_path
                )
            except CheckpointCorruption as exc:
                failures.append(str(exc))
            else:
                if failures:  # current was corrupt → this is a rollback
                    obs.record_resilience_event(
                        "checkpoint_rollback", detail=str(self.path)
                    )
                os.replace(str(self.previous_path), str(self.path))
                fsync_directory(self.path.parent)
                return state
        if failures:
            raise CheckpointCorruption(
                "no intact checkpoint generation: " + "; ".join(failures)
            )
        return None

    def clear(self) -> None:
        """Delete every generation (fresh-start semantics)."""
        for path in (self.path, self.previous_path, self.corrupt_path):
            try:
                os.unlink(str(path))
            except OSError:
                pass


def as_store(
    checkpoint: Union[str, Path, CheckpointStore]
) -> CheckpointStore:
    """Coerce a path-or-store argument to a :class:`CheckpointStore`."""
    if isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)


def verify_fingerprint(
    store: CheckpointStore,
    state: Optional[Dict[str, Any]],
    fingerprint: Dict[str, Any],
) -> Optional[Dict[str, Any]]:
    """Reject a checkpoint that belongs to a different experiment.

    Returns ``state`` unchanged when it is ``None`` or carries the
    expected ``fingerprint``; raises :class:`CheckpointMismatch`
    otherwise.  Every resumable surface (``find_block``,
    :class:`ResumableCampaign`, the campaign service) funnels its resume
    decision through here so the mismatch semantics — and the error
    message a user debugs from — stay identical.
    """
    if state is not None and state.get("fingerprint") != fingerprint:
        raise CheckpointMismatch(
            f"{store.path} belongs to a different campaign: checkpointed "
            f"{state.get('fingerprint')!r} vs requested {fingerprint!r}"
        )
    return state


class ResumableCampaign:
    """A checkpointed, resumable ``pool.map`` over independent trials.

    Parameters
    ----------
    checkpoint:
        Path or :class:`CheckpointStore` holding campaign progress.
    fingerprint:
        Plain-data identity of the campaign (experiment name and every
        result-shaping parameter).  A checkpoint whose fingerprint
        differs raises :class:`CheckpointMismatch` on resume rather than
        splicing two different experiments together.
    interval:
        Trials per checkpointed batch; ``None`` picks ~8 checkpoints
        over the campaign.  Smaller loses less work per kill, larger
        amortises the save better.
    rng:
        Optional generator whose exact stream position is saved at every
        batch boundary and restored on resume — required for serial
        campaigns whose trials chain draws on a shared stream.
    resume:
        ``False`` ignores (and clears) any existing checkpoint.
    """

    def __init__(
        self,
        checkpoint: Union[str, Path, CheckpointStore],
        *,
        fingerprint: Dict[str, Any],
        interval: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        resume: bool = True,
    ) -> None:
        if interval is not None and interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.store = as_store(checkpoint)
        self.fingerprint = fingerprint
        self.interval = interval
        self.rng = rng
        self.resume = resume
        #: Trials skipped on the most recent :meth:`map` (resume depth).
        self.last_resumed: int = 0

    # -- internals ----------------------------------------------------------

    def _load_state(self) -> Optional[Dict[str, Any]]:
        if not self.resume:
            self.store.clear()
            return None
        return verify_fingerprint(self.store, self.store.load(), self.fingerprint)

    def _save_state(
        self, results: Dict[int, Any], total: int, complete: bool
    ) -> None:
        state: Dict[str, Any] = {
            "fingerprint": self.fingerprint,
            "results": dict(results),
            "total": total,
            "complete": complete,
        }
        if self.rng is not None:
            state["rng_state"] = self.rng.bit_generator.state
        self.store.save(state)

    # -- API ----------------------------------------------------------------

    def map(
        self,
        pool,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> List[Any]:
        """``pool.map(fn, payloads)`` with batch-boundary checkpoints.

        ``pool`` is anything exposing ``map(fn, payloads)`` — a
        :class:`repro.parallel.TrialPool` in practice.  Results are
        returned in payload order; a resumed campaign re-runs only the
        trials no completed checkpoint covers.
        """
        payloads = list(payloads)
        total = len(payloads)
        state = self._load_state()
        results: Dict[int, Any] = {}
        if state is not None:
            if state.get("total") != total:
                raise CheckpointMismatch(
                    f"{self.store.path}: checkpointed campaign has "
                    f"{state.get('total')} trials, requested {total}"
                )
            results = {int(k): v for k, v in state["results"].items()}
            if self.rng is not None and "rng_state" in state:
                self.rng.bit_generator.state = state["rng_state"]
            self.last_resumed = len(results)
            if self.last_resumed:
                obs.record_resilience_event(
                    "campaign_resume",
                    detail=str(self.store.path),
                    n=self.last_resumed,
                )
            if state.get("complete"):
                return [results[i] for i in range(total)]
        else:
            self.last_resumed = 0
        todo = [i for i in range(total) if i not in results]
        interval = self.interval or max(1, -(-total // 8))
        for start in range(0, len(todo), interval):
            batch = todo[start:start + interval]
            out = pool.map(fn, [payloads[i] for i in batch])
            results.update(zip(batch, out))
            self._save_state(results, total, complete=False)
        self._save_state(results, total, complete=True)
        return [results[i] for i in range(total)]
