"""BranchScope reproduction: directional branch-predictor side channel.

A from-scratch Python implementation of *BranchScope: A New Side-Channel
Attack on Directional Branch Predictor* (Evtyushkin, Riley, Abu-Ghazaleh,
Ponomarev — ASPLOS 2018) on a cycle-level branch-prediction-unit
simulator.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quick start::

    import numpy as np
    from repro import (
        PhysicalCore, Process, skylake,
        CovertChannel, NoiseSetting, error_rate,
    )

    core = PhysicalCore(skylake(), seed=42)
    channel = CovertChannel.for_processes(
        core, Process("victim"), Process("spy"),
        setting=NoiseSetting.ISOLATED,
    )
    secret = np.random.default_rng(1).integers(0, 2, 64).tolist()
    received = channel.transmit(secret)
    print(f"error rate: {error_rate(secret, received):.3%}")

Package map:

* :mod:`repro.bpu` — hybrid branch predictor substrate (Figure 1),
* :mod:`repro.cpu` — core, clock, counters, timing, processes,
* :mod:`repro.system` — scheduler, noise, ASLR, SGX,
* :mod:`repro.core` — the BranchScope attack itself,
* :mod:`repro.victims` — Listing 2 / Montgomery ladder / libjpeg victims,
* :mod:`repro.mitigations` — the §10 defenses,
* :mod:`repro.analysis` — statistics and reporting helpers,
* :mod:`repro.parallel` — the deterministic forked trial pool,
* :mod:`repro.obs` — tracing, metrics and run-provenance manifests.
"""

from repro.bpu import (
    HybridPredictor,
    PredictorConfig,
    State,
    haswell,
    sandy_bridge,
    skylake,
)
from repro.core import (
    BranchScope,
    CovertChannel,
    CovertConfig,
    DecodedState,
    RandomizationBlock,
)
from repro.core.covert import error_rate
from repro.cpu import PhysicalCore, Process
from repro.obs import disable_tracing, enable_tracing, tracing
from repro.system import AttackScheduler, Enclave, MaliciousOS, NoiseSetting

__version__ = "1.0.0"

__all__ = [
    "AttackScheduler",
    "BranchScope",
    "CovertChannel",
    "CovertConfig",
    "DecodedState",
    "Enclave",
    "HybridPredictor",
    "MaliciousOS",
    "NoiseSetting",
    "PhysicalCore",
    "PredictorConfig",
    "Process",
    "RandomizationBlock",
    "State",
    "__version__",
    "disable_tracing",
    "enable_tracing",
    "error_rate",
    "haswell",
    "sandy_bridge",
    "skylake",
    "tracing",
]
