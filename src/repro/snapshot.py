"""Delta-snapshot plumbing: write journals and mark-carrying snapshots.

The §6.3 PHT scan and every other checkpoint-heavy experiment
(`read_entry_state`, calibration, the SGX/ASLR harnesses) repeatedly
restore a core to a prepared state.  The seed implementation deep-copied
every predictor table per :meth:`~repro.cpu.core.PhysicalCore.checkpoint`
and copied them back per restore — O(table size) both ways, even though a
two-branch probe dirties a handful of entries.  This module provides the
machinery that makes restore O(entries touched):

* :class:`WriteJournal` — a per-component undo log.  Once a snapshot has
  taken a *mark*, the component records ``(index, old value)`` for every
  subsequent mutation; restoring to the mark replays the tail of the log
  newest-first and truncates it, so the same mark can be restored to any
  number of times (the scan restores one prepared state twice per
  scanned address).
* :class:`DeltaSnapshot` / :class:`SnapshotTuple` — drop-in snapshot
  carriers (an ``ndarray`` subclass and a ``tuple`` subclass) that ride a
  journal mark alongside the full copy the seed API already returned.

Safety model
------------
A delta restore is only sound if *every* mutation since the mark went
through the journal.  Components therefore follow three rules:

1. every mutating method records the overwritten value while the journal
   is armed (a mark has been taken);
2. external bulk writers (the compiled randomisation block, the noise
   injector) call ``record_touch(indices)`` first, journaling the current
   values of the entries they are about to overwrite;
3. anything else that replaces or rewrites a table wholesale
   (``randomize``, ``reset``, ``flush``, an oversized touch set) calls
   :meth:`WriteJournal.invalidate`, which staleness-poisons every
   outstanding mark.

Because snapshots always carry the full copy too, a stale mark merely
falls back to the seed's ``np.copyto`` path — restore semantics are
identical in every case, which is what the differential tests in
``tests/test_batch_probe.py`` pin.
"""

from __future__ import annotations

import hashlib
from typing import Any, List, NamedTuple, Optional

import numpy as np

from repro.obs import trace as obs

__all__ = [
    "JournalMark",
    "WriteJournal",
    "DeltaSnapshot",
    "SnapshotTuple",
    "state_digest",
]


def state_digest(checkpoint: Any) -> str:
    """Canonical SHA-256 of a :meth:`PhysicalCore.checkpoint` tree.

    Walks the nested dict/tuple/array structure in deterministic (sorted
    dict key) order and hashes each array's dtype, shape and raw bytes —
    journal marks are deliberately *excluded*, so a delta snapshot and a
    ``full=True`` snapshot of the same machine state digest identically,
    as do the same states captured in different processes.  The
    resilience layer uses this to assert that a crash-resumed experiment
    left the simulated machine bit-identical to an uninterrupted run
    (``tests/test_resilience.py``, the CI chaos-smoke job).
    """
    h = hashlib.sha256()

    def feed(obj: Any) -> None:
        if isinstance(obj, dict):
            h.update(b"{")
            for key in sorted(obj, key=repr):
                h.update(repr(key).encode())
                feed(obj[key])
            h.update(b"}")
        elif isinstance(obj, np.ndarray):
            arr = np.ascontiguousarray(obj)
            h.update(f"<{arr.dtype!s}{arr.shape!r}>".encode())
            h.update(arr.tobytes())
        elif isinstance(obj, (tuple, list)):
            h.update(b"(")
            for item in obj:
                feed(item)
            h.update(b")")
        else:
            h.update(repr(obj).encode())

    feed(checkpoint)
    return h.hexdigest()


class JournalMark(NamedTuple):
    """A position in a specific journal's history.

    ``journal`` identity-guards against restoring a snapshot into a
    *different* component of the same shape (tests do this deliberately);
    ``epoch`` guards against invalidation; ``position`` is the log length
    at mark time.
    """

    journal: "WriteJournal"
    epoch: int
    position: int


class WriteJournal:
    """Undo log of component mutations since the oldest outstanding mark.

    Entries are opaque to the journal — each component appends whatever
    its restore method knows how to replay (scalar ``(index, old)`` pairs
    or bulk ``(indices, old_values)`` arrays).  ``cap`` bounds the total
    *element* count; exceeding it invalidates, because replaying a log
    longer than the table is slower than the full copy it replaces.
    """

    __slots__ = ("_entries", "_sizes", "_epoch", "_armed", "_size", "_cap", "name")

    def __init__(self, cap: int, *, name: str = "") -> None:
        if cap <= 0:
            raise ValueError("journal cap must be positive")
        self._entries: List[Any] = []
        self._sizes: List[int] = []
        self._epoch = 0
        self._armed = False
        self._size = 0
        self._cap = int(cap)
        #: Component label carried into "snapshot" trace events.
        self.name = name

    @property
    def armed(self) -> bool:
        """Whether mutations must currently be recorded (a mark exists)."""
        return self._armed

    def record(self, entry: Any, size: int = 1) -> None:
        """Append one undo entry covering ``size`` table elements.

        Callers check :attr:`armed` first so the disarmed hot path costs
        a single attribute read.
        """
        self._entries.append(entry)
        self._sizes.append(size)
        self._size += size
        if self._size > self._cap:
            self.invalidate()

    def mark(self) -> JournalMark:
        """Arm the journal and return the current log position."""
        self._armed = True
        return JournalMark(self, self._epoch, len(self._entries))

    def rewind(self, mark: JournalMark) -> Optional[List[Any]]:
        """Entries recorded since ``mark``, newest first — or ``None``.

        ``None`` means the mark is stale (different journal, an
        invalidation happened, or the log was truncated past it) and the
        caller must fall back to its full-copy restore.  On success the
        log is truncated back to the mark, so both this mark and any
        older ones remain restorable.
        """
        tracer = obs.TRACER
        if (
            mark.journal is not self
            or mark.epoch != self._epoch
            or mark.position > len(self._entries)
        ):
            if tracer is not None:
                tracer.emit(
                    "snapshot",
                    "rewind_stale",
                    journal=self.name,
                    epoch=self._epoch,
                    mark_epoch=mark.epoch,
                )
            return None
        tail = self._entries[mark.position:]
        del self._entries[mark.position:]
        self._size -= sum(self._sizes[mark.position:])
        del self._sizes[mark.position:]
        tail.reverse()
        if tracer is not None:
            tracer.emit(
                "snapshot",
                "rewind_delta",
                journal=self.name,
                entries=len(tail),
            )
        return tail

    def invalidate(self) -> None:
        """Staleness-poison every outstanding mark and clear the log."""
        tracer = obs.TRACER
        if tracer is not None:
            tracer.emit(
                "snapshot",
                "journal_invalidated",
                journal=self.name,
                entries=len(self._entries),
            )
        self._epoch += 1
        self._entries.clear()
        self._sizes.clear()
        self._size = 0
        self._armed = False


def _rebuild_delta_snapshot(data: np.ndarray) -> "DeltaSnapshot":
    return DeltaSnapshot(data, None)


def _rebuild_snapshot_tuple(items: tuple) -> "SnapshotTuple":
    return SnapshotTuple(items, None)


class DeltaSnapshot(np.ndarray):
    """An array snapshot that may also carry a journal mark.

    Behaves exactly like the plain ``ndarray`` copy the seed API
    returned (tests index it, compare it, ``.all()`` it), with one extra
    attribute: ``journal_mark``, consumed by the owning component's
    ``restore``.  A snapshot without a usable mark restores via the
    full-copy path.

    Marks are **process-local**: they hold a reference to the live
    journal object of the component that issued them.  Pickling a
    snapshot (a :class:`repro.parallel.TrialPool` worker result, a
    checkpoint shipped across processes) therefore drops the mark — the
    default reduction would drag the whole journal log along and the
    unpickled mark would alias a journal the target process never
    advanced.  The unpickled snapshot keeps its full copy and restores
    via the full-copy path, which is always sound.
    """

    def __new__(cls, data: np.ndarray, mark: Optional[JournalMark] = None):
        obj = np.asarray(data).view(cls)
        obj.journal_mark = mark
        return obj

    def __array_finalize__(self, obj) -> None:
        if obj is None:
            return
        self.journal_mark = getattr(obj, "journal_mark", None)

    def __reduce__(self):
        return (_rebuild_delta_snapshot, (np.asarray(self).copy(),))


class SnapshotTuple(tuple):
    """A tuple-of-arrays snapshot that may also carry a journal mark.

    Unpacks exactly like the plain tuple the seed API returned
    (``tags, valid = table.snapshot()``).  Like :class:`DeltaSnapshot`,
    pickling drops the process-local journal mark.
    """

    journal_mark: Optional[JournalMark]

    def __new__(cls, items, mark: Optional[JournalMark] = None):
        obj = super().__new__(cls, items)
        obj.journal_mark = mark
        return obj

    def __reduce__(self):
        return (_rebuild_snapshot_tuple, (tuple(self),))
