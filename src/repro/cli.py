"""Command-line interface: ``python -m repro <command>``.

Gives downstream users one-line access to the headline demos and
experiments without writing harness code:

.. code-block:: console

    $ python -m repro presets
    $ python -m repro covert --preset skylake --bits 500 --setting noisy
    $ python -m repro attack --preset haswell --bits 64
    $ python -m repro fsm-table --preset skylake
    $ python -m repro pht-size --preset haswell
    $ python -m repro poison

The ``covert`` and ``attack`` experiments accept ``--trace FILE`` (write
a JSONL trace of the run, with a run manifest beside it) and
``--metrics`` (print the run's metric families afterwards); ``repro
trace summary|export`` then digests a written trace or converts it to
Chrome ``trace_event`` JSON for Perfetto.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.analysis import format_table
from repro.bpu.presets import PRESETS
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting

__all__ = [
    "main",
    "build_parser",
    "EXIT_INTERRUPTED",
    "EXIT_CHECKPOINT_CORRUPT",
    "EXIT_RETRY_EXHAUSTED",
]

#: Exit codes distinguishing the long-run failure modes (MODELING.md §10):
#: user abort (Ctrl-C — progress is checkpointed, re-run to resume),
#: unrecoverable checkpoint corruption/mismatch, and a trial chunk that
#: exhausted its supervised retries.
EXIT_INTERRUPTED = 130
EXIT_CHECKPOINT_CORRUPT = 4
EXIT_RETRY_EXHAUSTED = 5

_SETTINGS = {
    "isolated": NoiseSetting.ISOLATED,
    "noisy": NoiseSetting.NOISY,
    "quiesced": NoiseSetting.QUIESCED,
    "silent": NoiseSetting.SILENT,
}


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI's argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "BranchScope (ASPLOS'18) reproduction on a simulated branch "
            "predictor"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list the modelled microarchitectures")

    covert = sub.add_parser(
        "covert", help="run the §7 covert channel and report the error rate"
    )
    covert.add_argument("--preset", choices=PRESETS, default="skylake")
    covert.add_argument("--setting", choices=_SETTINGS, default="isolated")
    covert.add_argument("--bits", type=int, default=500)
    covert.add_argument("--seed", type=int, default=42)
    _add_obs_flags(covert)

    attack = sub.add_parser(
        "attack", help="spy on a secret-bit-array victim (Listing 2)"
    )
    attack.add_argument("--preset", choices=PRESETS, default="skylake")
    attack.add_argument("--setting", choices=_SETTINGS, default="isolated")
    attack.add_argument("--bits", type=int, default=64)
    attack.add_argument("--seed", type=int, default=42)
    _add_obs_flags(attack)

    fsm = sub.add_parser(
        "fsm-table", help="regenerate Table 1 for one microarchitecture"
    )
    fsm.add_argument("--preset", choices=PRESETS, default="skylake")

    pht = sub.add_parser(
        "pht-size", help="recover the PHT size via §6.3's Hamming analysis"
    )
    pht.add_argument("--preset", choices=PRESETS, default="haswell")
    pht.add_argument("--seed", type=int, default=8)

    poison = sub.add_parser(
        "poison", help="measure Spectre-style branch poisoning control"
    )
    poison.add_argument("--preset", choices=PRESETS, default="skylake")
    poison.add_argument("--rounds", type=int, default=300)

    campaign = sub.add_parser(
        "campaign",
        help=(
            "run a checkpointed Figure-4 stability campaign (kill it, "
            "re-run the same command, it resumes bit-identically)"
        ),
    )
    campaign.add_argument("--preset", choices=PRESETS, default="haswell")
    campaign.add_argument("--seed", type=int, default=31)
    campaign.add_argument(
        "--address",
        type=lambda s: int(s, 0),
        default=0x400,
        help="target branch address (accepts hex)",
    )
    campaign.add_argument("--blocks", type=int, default=200)
    campaign.add_argument("--branches", type=int, default=2000)
    campaign.add_argument("--repetitions", type=int, default=50)
    campaign.add_argument("--workers", type=int, default=None)
    campaign.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="checkpoint file; progress persists across kills",
    )
    campaign.add_argument(
        "--interval",
        type=int,
        default=None,
        help="trials per checkpoint batch (default ~8 checkpoints/run)",
    )
    campaign.add_argument(
        "--fresh",
        action="store_true",
        help="ignore (and clear) any existing checkpoint",
    )
    campaign.add_argument(
        "--trial-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep per trial (chaos/CI hook: makes mid-run kills easy)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help=(
            "reverse-engineer a preset's predictor geometry from probe "
            "signatures alone (generations run through the campaign "
            "service; resumable and store-served over --root)"
        ),
    )
    fuzz.add_argument("--preset", choices=PRESETS, default="sandy_bridge")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--generations", type=int, default=6)
    fuzz.add_argument("--shards", type=int, default=4)
    fuzz.add_argument("--workers", type=int, default=None)
    fuzz.add_argument(
        "--root",
        default=None,
        help=(
            "service root (content store + checkpoints); a re-run over "
            "the same root resumes killed generations and serves "
            "completed ones from the store"
        ),
    )
    fuzz.add_argument(
        "--trial-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep per trial (chaos/CI hook: makes mid-run kills easy)",
    )
    fuzz.add_argument(
        "--expect-truth",
        action="store_true",
        help=(
            "exit nonzero unless the verdict converged to the preset's "
            "true geometry (the closed-loop self-test)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the sharded multi-tenant campaign service over a spool "
            "directory (submit jobs with `repro submit`)"
        ),
    )
    serve.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="service root (jobs/, results/, checkpoints/, store/)",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--once",
        action="store_true",
        help="drain the current job queue and exit (CI mode)",
    )
    serve.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="spool poll interval when idle",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus text on http://127.0.0.1:PORT/metrics "
        "(0 picks a free port)",
    )
    serve.add_argument(
        "--store-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="persistent store disk budget (LRU-evicted above this)",
    )
    serve.add_argument(
        "--trial-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep per trial (chaos/CI hook: makes mid-run kills easy)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "coordinator mode: serve the shard-lease protocol on this "
            "port (0 picks a free one; the URL lands in "
            "root/coordinator.json) and let `repro worker --connect` "
            "processes run the trials instead of this process"
        ),
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "coordinator mode: how long a claimed shard may go without "
            "a renewal before it is requeued to another worker"
        ),
    )

    worker = sub.add_parser(
        "worker",
        help=(
            "pull-based campaign worker: claim shard leases from a "
            "`repro serve --port` coordinator, run them, upload exact "
            "aggregates (safe to SIGKILL at any instant)"
        ),
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8763",
    )
    worker.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help=(
            "local spool to drain (in-process) if the coordinator "
            "stays unreachable — graceful degradation instead of exit 5"
        ),
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="exit 0 when the coordinator reports the queue drained",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="claim poll interval while the queue is momentarily empty",
    )
    worker.add_argument(
        "--retries",
        type=int,
        default=5,
        metavar="N",
        help="transport retries per request before giving up",
    )
    worker.add_argument(
        "--workers",
        type=int,
        default=None,
        help="trial pool processes per shard (default: serial)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        metavar="NAME",
        help="worker name on the coordinator (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--trial-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep per trial (chaos/CI hook: makes mid-run kills easy)",
    )

    submit = sub.add_parser(
        "submit",
        help="queue a stability campaign for a running `repro serve`",
    )
    submit.add_argument(
        "--root", required=True, metavar="DIR", help="service root directory"
    )
    submit.add_argument("--name", default="campaign")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--preset", choices=PRESETS, default="skylake")
    submit.add_argument(
        "--scale",
        type=int,
        default=16,
        help="predictor table scale divisor (1 = full size)",
    )
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument(
        "--address",
        type=lambda s: int(s, 0),
        default=0x4200,
        help="target branch address (accepts hex)",
    )
    submit.add_argument("--blocks", type=int, default=64)
    submit.add_argument("--branches", type=int, default=2000)
    submit.add_argument("--repetitions", type=int, default=40)
    submit.add_argument(
        "--noise",
        choices=("isolated", "noisy", "quiesced", "silent"),
        default="isolated",
    )
    submit.add_argument("--seed-start", type=int, default=0)
    submit.add_argument("--shards", type=int, default=4)

    trace = sub.add_parser(
        "trace", help="inspect or convert a JSONL trace written by --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="print a digest of a JSONL trace"
    )
    trace_summary.add_argument("trace_file")
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a JSONL trace to Chrome trace_event JSON (Perfetto)",
    )
    trace_export.add_argument("trace_file")
    trace_export.add_argument(
        "-o", "--output",
        help="output path (default: <trace_file> with .chrome.json)",
    )

    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "write a JSONL trace of the run to FILE (a run manifest is "
            "written beside it)"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print the run's metric families",
    )


@contextlib.contextmanager
def _observed_run(args, name: str):
    """Wrap an experiment command in the --trace/--metrics plumbing.

    No-op (tracing stays disabled) when neither flag was given, so the
    untraced CLI path is byte-identical to the historical one.
    """
    from repro import obs

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if not trace_path and not want_metrics:
        yield
        return
    started = time.time()
    with obs.tracing(collect_metrics=want_metrics) as tracer:
        yield
    if trace_path:
        path = Path(trace_path)
        obs.write_jsonl(
            tracer, path, meta={"command": name, "preset": args.preset}
        )
        manifest = obs.RunManifest.capture(
            name,
            preset=args.preset,
            seed=args.seed,
            duration_seconds=time.time() - started,
            extra={
                "events_emitted": tracer.emitted,
                "events_dropped": tracer.dropped,
            },
        )
        manifest.add_result(path.name, path.read_text())
        manifest_path = path.with_name(path.stem + ".manifest.json")
        manifest.write(manifest_path)
        print(f"trace written to {path} (manifest {manifest_path})")
    if want_metrics:
        text = tracer.metrics.render_text()
        if text:
            print(text)


def _cmd_presets(args) -> int:
    rows = []
    for name, factory in PRESETS.items():
        config = factory()
        rows.append(
            [
                name,
                config.name,
                config.bimodal_entries,
                config.gshare_entries,
                config.ghr_bits,
                config.fsm.name,
            ]
        )
    print(
        format_table(
            ["preset", "models", "PHT", "gshare", "GHR bits", "FSM"],
            rows,
            title="Modelled microarchitectures (paper §5)",
        )
    )
    return 0


def _cmd_covert(args) -> int:
    from repro.core.covert import CovertChannel, error_rate

    with _observed_run(args, "covert"):
        core = PhysicalCore(PRESETS[args.preset](), seed=args.seed)
        channel = CovertChannel.for_processes(
            core,
            Process("trojan"),
            Process("spy"),
            setting=_SETTINGS[args.setting],
        )
        bits = (
            np.random.default_rng(args.seed).integers(0, 2, args.bits).tolist()
        )
        received = channel.transmit(bits)
        rate = error_rate(bits, received)
        print(
            f"{args.preset} / {args.setting}: transmitted {args.bits} bits, "
            f"error rate {rate:.2%}"
        )
    return 0


def _cmd_attack(args) -> int:
    from repro.core.attack import BranchScope
    from repro.victims import SecretBitArrayVictim

    with _observed_run(args, "attack"):
        core = PhysicalCore(PRESETS[args.preset](), seed=args.seed)
        secret = (
            np.random.default_rng(args.seed).integers(0, 2, args.bits).tolist()
        )
        victim = SecretBitArrayVictim(secret)
        attack = BranchScope(
            core,
            Process("spy"),
            victim.branch_address,
            setting=_SETTINGS[args.setting],
        )
        recovered = [
            int(b)
            for b in attack.spy_on_bits(
                lambda: victim.execute_next(core), args.bits
            )
        ]
        correct = sum(1 for a, b in zip(secret, recovered) if a == b)
        print(f"secret    : {''.join(map(str, secret))}")
        print(f"recovered : {''.join(map(str, recovered))}")
        print(f"{correct}/{args.bits} bits correct")
    return 0


def _cmd_fsm_table(args) -> int:
    from repro.core.prime_probe import probe_pair

    core = PhysicalCore(PRESETS[args.preset](), seed=4)
    process = Process("experimenter")
    address = 0x30_0006D
    rows = []
    for prime in ("TTT", "NNN"):
        for target in ("T", "N"):
            for probe in ("TT", "NN"):
                core.predictor.bit.evict(address)
                core.predictor.bimodal.pht.set_state(
                    core.predictor.bimodal.index(address),
                    core.predictor.bimodal.pht.fsm.public_state(0),
                )
                for ch in prime + target:
                    core.execute_branch(process, address, ch == "T")
                core.predictor.bit.evict(address)
                pattern = probe_pair(
                    core, process, address, [c == "T" for c in probe]
                ).pattern
                rows.append([prime, target, probe, pattern])
    print(
        format_table(
            ["prime", "target", "probe", "observation"],
            rows,
            title=f"Table 1 observations on {args.preset}",
        )
    )
    return 0


def _cmd_pht_size(args) -> int:
    from repro.core.pht_map import estimate_pht_size, scan_states
    from repro.core.randomizer import RandomizationBlock

    core = PhysicalCore(PRESETS[args.preset](), seed=args.seed)
    spy = Process("mapper")
    block = RandomizationBlock.generate(11, n_branches=100_000)
    compiled = block.compile(core, spy)
    scan = 2 * core.predictor.bimodal.pht.n_entries
    states = scan_states(
        core, spy, list(range(0x300000, 0x300000 + scan)), compiled
    )
    windows = [1 << k for k in range(8, scan.bit_length() - 1)]
    estimate = estimate_pht_size(states, windows=windows)
    print(
        f"{args.preset}: recovered PHT size {estimate} entries "
        f"(ground truth {core.predictor.bimodal.pht.n_entries})"
    )
    return 0


def _cmd_poison(args) -> int:
    from repro.core.poisoning import poisoning_experiment

    core = PhysicalCore(PRESETS[args.preset](), seed=17)
    result = poisoning_experiment(
        core,
        Process("attacker"),
        Process("victim"),
        0x40_1A30,
        victim_direction=True,
        rounds=args.rounds,
    )
    print(
        f"victim mispredictions: baseline "
        f"{result.baseline_misprediction_rate:.1%}, poisoned "
        f"{result.poisoned_misprediction_rate:.1%}"
    )
    return 0


def _cmd_campaign(args) -> int:
    import hashlib

    from repro import obs
    from repro.core.calibration import stability_experiment

    preset = PRESETS[args.preset]
    seed = args.seed

    def factory():
        return PhysicalCore(preset(), seed=seed)

    pre_trial = None
    if args.trial_delay > 0:
        delay = args.trial_delay

        def pre_trial(_block_seed: int) -> None:
            time.sleep(delay)

    assessments = stability_experiment(
        factory,
        args.address,
        n_blocks=args.blocks,
        block_branches=args.branches,
        repetitions=args.repetitions,
        workers=args.workers,
        checkpoint=args.checkpoint,
        checkpoint_interval=args.interval,
        resume=not args.fresh,
        fingerprint_extra={"preset": args.preset, "seed": seed},
        pre_trial=pre_trial,
    )
    stable = sum(1 for a in assessments if a.stable)
    resumed = obs.resilience_event_counts().get("campaign_resume", 0)
    if resumed:
        print(f"resumed: {resumed} trials recovered from checkpoint")
    print(
        f"{args.preset}: campaign complete — {len(assessments)} blocks, "
        f"{stable} stable"
    )
    digest = hashlib.sha256(repr(assessments).encode()).hexdigest()
    print(f"result digest: {digest}")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz import run_fuzz

    pre_trial = None
    if args.trial_delay > 0:
        delay = args.trial_delay

        def pre_trial(_index: int) -> None:
            time.sleep(delay)

    verdict = run_fuzz(
        args.preset,
        seed=args.seed,
        generations=args.generations,
        shards=args.shards,
        workers=args.workers,
        root=args.root,
        pre_trial=pre_trial,
        log=print,
    )
    for hypothesis in verdict.survivors:
        print(
            f"survivor: table={hypothesis.table_entries} "
            f"hash={hypothesis.index_hash} fsm={hypothesis.fsm_name} "
            f"ghr={hypothesis.ghr_bits}"
        )
    print(
        f"{args.preset}: {verdict.generations_run} generations, "
        f"{verdict.n_trials} trials, {len(verdict.survivors)} "
        f"hypothesis(es) alive (resumed shards: {verdict.resumed_shards}, "
        f"store-served shards: {verdict.cached_shards})"
    )
    print(f"verdict digest: {verdict.digest()}")
    if args.expect_truth and not verdict.matches_truth():
        print(
            "verdict does not match the preset's true geometry",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    return serve(
        args.root,
        workers=args.workers,
        once=args.once,
        poll_seconds=args.poll,
        metrics_port=args.metrics_port,
        store_bytes=args.store_bytes,
        trial_delay=args.trial_delay,
        port=args.port,
        lease_seconds=args.lease_seconds,
    )


def _cmd_worker(args) -> int:
    # The terminal lease-protocol failures map to exit codes here (not
    # in main(), which would drag the service stack into every CLI
    # invocation): a quarantined upload means *this* worker computed a
    # divergent aggregate — the distributed analogue of checkpoint
    # corruption, exit 4 — and an unreachable coordinator past all
    # retries is the distributed retry exhaustion, exit 5.
    from repro.service import (
        CoordinatorUnreachable,
        LeaseQuarantinedError,
        run_worker,
    )

    try:
        return run_worker(
            args.connect,
            worker_id=args.worker_id,
            root=args.root,
            once=args.once,
            poll_seconds=args.poll,
            retries=args.retries,
            workers=args.workers,
            trial_delay=args.trial_delay,
        )
    except LeaseQuarantinedError as exc:
        print(f"repro: worker quarantined: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_CORRUPT
    except CoordinatorUnreachable as exc:
        print(f"repro: coordinator unreachable: {exc}", file=sys.stderr)
        return EXIT_RETRY_EXHAUSTED


def _cmd_submit(args) -> int:
    from repro.service import CampaignSpec, submit_job

    spec = CampaignSpec(
        name=args.name,
        tenant=args.tenant,
        preset=args.preset,
        scale=args.scale,
        seed=args.seed,
        target_address=args.address,
        n_blocks=args.blocks,
        block_branches=args.branches,
        repetitions=args.repetitions,
        noise=args.noise,
        seed_start=args.seed_start,
        shards=args.shards,
    )
    path = submit_job(args.root, spec)
    print(f"submitted {spec.campaign_id()} (tenant {spec.tenant}) -> {path}")
    return 0


def _cmd_trace(args) -> int:
    from repro import obs

    meta, events = obs.read_jsonl(args.trace_file)
    if args.trace_command == "summary":
        print(obs.summarize(events, meta))
        return 0
    # export
    output = args.output
    if output is None:
        source = Path(args.trace_file)
        output = source.with_name(source.stem + ".chrome.json")
    path = obs.write_chrome_trace(events, output)
    print(f"chrome trace written to {path} ({len(events)} events)")
    return 0


_COMMANDS = {
    "presets": _cmd_presets,
    "covert": _cmd_covert,
    "attack": _cmd_attack,
    "fsm-table": _cmd_fsm_table,
    "pht-size": _cmd_pht_size,
    "poison": _cmd_poison,
    "campaign": _cmd_campaign,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "worker": _cmd_worker,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Long-run failure modes map to distinct exit codes so harnesses (and
    the CI chaos-smoke job) can tell them apart: Ctrl-C returns
    :data:`EXIT_INTERRUPTED` (checkpointed progress survives — re-run
    the same command to resume), an unrecoverable or mismatched
    checkpoint returns :data:`EXIT_CHECKPOINT_CORRUPT`, and a trial
    chunk that exhausted its supervised retries returns
    :data:`EXIT_RETRY_EXHAUSTED`.
    """
    from repro.parallel import RetryExhaustedError
    from repro.resilience.checkpoint import CheckpointError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print(
            "repro: interrupted — checkpointed progress is preserved; "
            "re-run the same command to resume",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except CheckpointError as exc:
        print(f"repro: checkpoint error: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_CORRUPT
    except RetryExhaustedError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_RETRY_EXHAUSTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
