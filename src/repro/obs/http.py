"""A stdlib HTTP endpoint serving the metrics registry for scraping.

``repro.obs.metrics.render_text`` already speaks the Prometheus text
exposition format; this module puts it behind ``GET /metrics`` on a
background :class:`http.server.ThreadingHTTPServer` so a running
``repro serve`` can be scraped like any other service.  No third-party
dependencies, no TLS, bound to loopback by default — an operator puts a
real scraper or reverse proxy in front for anything beyond localhost.

The handler resolves the registry *per request*: by default it reads
the live tracer's registry (``enable_tracing(collect_metrics=True)``),
so counters incremented after the server starts are visible on the next
scrape; a fixed :class:`~repro.obs.metrics.MetricsRegistry` can be
pinned instead for tests.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer", "CONTENT_TYPE"]

#: Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _live_registry() -> Optional[MetricsRegistry]:
    tracer = obs_trace.TRACER
    return tracer.metrics if tracer is not None else None


class MetricsServer:
    """Background ``/metrics`` HTTP server over a metrics registry.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`) — what the unit test and ``--metrics-port 0`` use.
    """

    def __init__(
        self,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        resolve: Callable[[], Optional[MetricsRegistry]] = (
            (lambda: registry) if registry is not None else _live_registry
        )

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served")
                    return
                reg = resolve()
                body = (
                    reg.render_text() if reg is not None else ""
                ).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                pass  # scrapes must not spam the service log

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
