"""Structured tracing: typed events in a bounded ring buffer.

The paper's attack reads the machine through narrow observation channels
(misprediction counters §7, ``rdtscp`` timing §8); this module gives the
*simulator* an equally principled readout.  Instrumented layers — branch
execution, predictor training, probe classification, checkpoint/restore,
pool dispatch, mitigation hooks, engine-fallback decisions — emit typed
:class:`TraceEvent` records into a process-wide :class:`Tracer`.

Zero-overhead disabled path
---------------------------
The module-level singleton :data:`TRACER` is ``None`` unless tracing was
explicitly enabled.  Hot paths read it through the module object and
gate on a single truthiness test::

    from repro.obs import trace as obs

    tracer = obs.TRACER
    if tracer is not None:
        tracer.emit("branch", "execute", cycle=..., pid=..., ...)

so a disabled run pays two attribute reads and one ``is not None`` per
instrumented operation — nothing else.  The CI perf gates
(``bench_scan_perf.py`` / ``bench_calibration_perf.py``) run with
tracing disabled and keep their pre-observability speedup floors,
bounding the guard's cost.

Determinism
-----------
An enabled tracer only *reads* simulator state and appends to a Python
ring buffer: it never draws from any RNG and never writes predictor
state, so a traced run is bit-identical to an untraced one
(``tests/test_obs.py`` pins this differentially across all presets).

Events are bounded by a ring buffer (``collections.deque`` with
``maxlen``); once full, the oldest events fall off and
:attr:`Tracer.dropped` counts the loss — tracing can be left on for a
full fig4-scale sweep without unbounded memory growth.
"""

from __future__ import annotations

import contextlib
from collections import deque
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Set

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "CATEGORIES",
    "TraceEvent",
    "Tracer",
    "TRACER",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "tracing",
    "record_scalar_fallback",
    "scalar_fallback_counts",
    "reset_scalar_fallbacks",
    "record_resilience_event",
    "resilience_event_counts",
    "reset_resilience_events",
]

#: Event taxonomy (see MODELING.md §9 for what each layer emits).
CATEGORIES = frozenset(
    {
        "branch",      # one conditional branch through the core pipeline
        "bpu",         # PHT / selector state transitions during training
        "probe",       # a stage-3 probe classified to an H/M pattern
        "calibration", # §6.2 block assessments and search decisions
        "covert",      # covert-channel bits sent/decoded
        "snapshot",    # checkpoint/restore, journal replay vs full copy
        "pool",        # TrialPool dispatch and per-chunk latency
        "mitigation",  # a §10 defense hook actually altered something
        "fallback",    # a vectorised engine fell back to the scalar path
        "resilience",  # fault recovery: retries, degradation, rollbacks
    }
)

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 65_536


class TraceEvent(NamedTuple):
    """One structured trace record.

    ``cycle`` is simulated time (the core's cycle clock) where the
    emitter has one, else ``None``; ``seq`` is the tracer's own
    monotonic sequence number and orders events globally.
    """

    seq: int
    cycle: Optional[int]
    category: str
    name: str
    level: str
    pid: Optional[int]
    args: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (what the JSONL exporter writes)."""
        return {
            "seq": self.seq,
            "cycle": self.cycle,
            "cat": self.category,
            "name": self.name,
            "level": self.level,
            "pid": self.pid,
            "args": self.args,
        }


class Tracer:
    """Process-wide event sink with category filtering and a ring buffer.

    Parameters
    ----------
    capacity:
        Ring-buffer size in events.  ``0`` keeps no events (metrics-only
        sessions still want the emit path for counters).
    categories:
        Iterable of category names to record, or ``None`` for all of
        :data:`CATEGORIES`.  Unknown names raise ``ValueError`` so typos
        cannot silently disable instrumentation.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` rode along
        by the instrumented layers (branch counters, fallback counters,
        pool latencies).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        categories: Optional[Iterable[str]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if categories is None:
            wanted: Set[str] = set(CATEGORIES)
        else:
            wanted = set(categories)
            unknown = wanted - CATEGORIES
            if unknown:
                raise ValueError(
                    f"unknown trace categories: {sorted(unknown)}; "
                    f"known: {sorted(CATEGORIES)}"
                )
        self.capacity = int(capacity)
        self.categories = wanted
        self.metrics = metrics
        self._buffer: deque = deque(maxlen=self.capacity)
        self._seq = 0
        self._emitted = 0
        self._counts: Dict[str, int] = {}

    # -- emission -----------------------------------------------------------

    def wants(self, category: str) -> bool:
        """Whether events of ``category`` would be recorded."""
        return category in self.categories

    def emit(
        self,
        category: str,
        name: str,
        *,
        cycle: Optional[int] = None,
        pid: Optional[int] = None,
        level: str = "info",
        **args: Any,
    ) -> None:
        """Record one event (dropped silently if the category is filtered)."""
        if category not in self.categories:
            return
        event = TraceEvent(self._seq, cycle, category, name, level, pid, args)
        self._seq += 1
        self._emitted += 1
        self._counts[category] = self._counts.get(category, 0) + 1
        self._buffer.append(event)

    # -- introspection ------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total events accepted (including any since dropped)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to the ring buffer's bound."""
        return self._emitted - len(self._buffer)

    @property
    def category_counts(self) -> Dict[str, int]:
        """Accepted-event count per category (copy)."""
        return dict(self._counts)

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (copy)."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop retained events and reset the drop accounting (the
        sequence number keeps running so event identity stays unique)."""
        self._buffer.clear()
        self._emitted = 0
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tracer(capacity={self.capacity}, events={len(self._buffer)}, "
            f"dropped={self.dropped})"
        )


#: The process-wide tracer, or ``None`` when tracing is disabled.  Hot
#: paths must read this through the module (``obs.TRACER``) so
#: :func:`enable_tracing` / :func:`disable_tracing` take effect.
TRACER: Optional[Tracer] = None


def enable_tracing(
    capacity: int = DEFAULT_CAPACITY,
    categories: Optional[Iterable[str]] = None,
    *,
    metrics: Optional[MetricsRegistry] = None,
    collect_metrics: bool = False,
) -> Tracer:
    """Install (and return) the process-wide tracer.

    ``collect_metrics=True`` attaches a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` when none was passed.
    Re-enabling replaces any previous tracer.
    """
    global TRACER
    if metrics is None and collect_metrics:
        metrics = MetricsRegistry()
    TRACER = Tracer(capacity, categories, metrics)
    return TRACER


def disable_tracing() -> Optional[Tracer]:
    """Uninstall the process-wide tracer; returns it for post-mortem use."""
    global TRACER
    tracer, TRACER = TRACER, None
    return tracer


def get_tracer() -> Optional[Tracer]:
    """The active process-wide tracer, or ``None``."""
    return TRACER


@contextlib.contextmanager
def tracing(
    capacity: int = DEFAULT_CAPACITY,
    categories: Optional[Iterable[str]] = None,
    *,
    metrics: Optional[MetricsRegistry] = None,
    collect_metrics: bool = False,
):
    """Context manager: trace the body, restoring the previous tracer.

    Yields the installed :class:`Tracer` (read events off it before the
    block exits, or keep the reference — it survives deactivation).
    """
    global TRACER
    previous = TRACER
    tracer = enable_tracing(
        capacity, categories, metrics=metrics, collect_metrics=collect_metrics
    )
    try:
        yield tracer
    finally:
        TRACER = previous


# -- scalar-engine fallback accounting --------------------------------------
#
# The vectorised engines (the §6.3 batch-probe scan, the §6.2 batch
# calibration trial) silently fall back to the scalar reference whenever
# an observation-perturbing mitigation or custom timing model makes them
# inexact.  That is correct — but a mitigation stack disabling the
# 10-250x fast paths should never be *invisible*, so fallbacks are always
# counted here (tracing on or off) and additionally emit a warning-level
# trace event plus a labelled metrics counter when observability is on.

_SCALAR_FALLBACKS: Dict[str, int] = {}


def record_scalar_fallback(engine: str, reason: str, n: int = 1) -> None:
    """Record that ``engine`` routed ``n`` operations to the scalar path."""
    _SCALAR_FALLBACKS[engine] = _SCALAR_FALLBACKS.get(engine, 0) + n
    tracer = TRACER
    if tracer is not None:
        tracer.emit(
            "fallback",
            "scalar_engine",
            level="warning",
            engine=engine,
            reason=reason,
            count=n,
        )
        if tracer.metrics is not None:
            tracer.metrics.counter(
                "repro_scalar_fallbacks_total",
                "vectorised-engine operations routed to the scalar path",
                labels=("engine",),
            ).inc(n, engine=engine)


def scalar_fallback_counts() -> Dict[str, int]:
    """Cumulative scalar-fallback count per engine (copy)."""
    return dict(_SCALAR_FALLBACKS)


def reset_scalar_fallbacks() -> None:
    """Zero the cumulative fallback counters (tests/benches)."""
    _SCALAR_FALLBACKS.clear()


# -- resilience-event accounting ---------------------------------------------
#
# The supervised trial pool and the checkpoint store recover from worker
# crashes, hangs, corrupted result frames and torn checkpoint files
# without changing experiment results — which makes the *recovery itself*
# the only observable.  A campaign silently limping along on retries or
# serial degradation is a health problem the operator must be able to
# see, so every recovery action is always counted here (tracing on or
# off), and additionally emits a warning-level "resilience" trace event
# plus a labelled metrics counter when observability is enabled.

_RESILIENCE_EVENTS: Dict[str, int] = {}


def record_resilience_event(kind: str, detail: str = "", n: int = 1) -> None:
    """Record ``n`` fault-recovery actions of ``kind``.

    Kinds in use: ``worker_crash``, ``worker_hang``, ``chunk_corrupt``,
    ``chunk_retry``, ``degrade_serial``, ``checkpoint_rollback``,
    ``campaign_resume``, ``env_workers_invalid``.
    """
    _RESILIENCE_EVENTS[kind] = _RESILIENCE_EVENTS.get(kind, 0) + n
    tracer = TRACER
    if tracer is not None:
        tracer.emit(
            "resilience",
            kind,
            level="warning",
            detail=detail,
            count=n,
        )
        if tracer.metrics is not None:
            tracer.metrics.counter(
                "repro_resilience_events_total",
                "fault-recovery actions taken by the resilience subsystem",
                labels=("kind",),
            ).inc(n, kind=kind)


def resilience_event_counts() -> Dict[str, int]:
    """Cumulative fault-recovery count per kind (copy)."""
    return dict(_RESILIENCE_EVENTS)


def reset_resilience_events() -> None:
    """Zero the cumulative resilience counters (tests/benches)."""
    _RESILIENCE_EVENTS.clear()
