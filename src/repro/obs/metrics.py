"""Metrics registry: labelled counters, gauges and histograms.

A minimal in-process metrics facility in the Prometheus idiom, sized for
the simulator: experiments register *families* (a metric name plus a
fixed tuple of label names) and record against concrete label values.
Snapshots are plain nested data, two snapshots diff into the deltas an
experiment produced, and :meth:`MetricsRegistry.render_text` renders the
exposition-format-style text the CLI prints after a ``--metrics`` run.

Label hygiene is enforced at the family boundary: re-registering a name
with a different type or label set raises, and every record call must
supply exactly the declared labels — so a counter can never silently
fork into incompatible series (``tests/test_obs.py`` pins this).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (powers of four cover cycle
#: latencies through pool chunk times in seconds when scaled).
DEFAULT_BUCKETS = (
    0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _check_name(name: str, what: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid {what} name {name!r}")
    return name


class _Family:
    """Shared plumbing: a named metric with a fixed label-name tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str]) -> None:
        self.name = _check_name(name, "metric")
        self.help = help
        self.label_names = tuple(_check_name(l, "label") for l in labels)
        if len(set(self.label_names)) != len(self.label_names):
            raise ValueError(f"duplicate label names in {name!r}")

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        """Validate and canonicalise one record call's labels."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            )
        return tuple((name, str(labels[name])) for name in self.label_names)

    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        return (self.kind, self.label_names)


class Counter(_Family):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._values)


class Gauge(_Family):
    """A value that can go anywhere, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._values)


class Histogram(_Family):
    """Cumulative-bucket histogram with sum/count/min/max per series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds
        self._series: Dict[LabelKey, Dict[str, object]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
                "min": value,
                "max": value,
            }
            self._series[key] = series
        counts: List[int] = series["counts"]  # type: ignore[assignment]
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1  # +Inf bucket
        series["sum"] += value  # type: ignore[operator]
        series["count"] += 1  # type: ignore[operator]
        series["min"] = min(series["min"], value)  # type: ignore[type-var]
        series["max"] = max(series["max"], value)  # type: ignore[type-var]

    def series(self) -> Dict[LabelKey, Dict[str, object]]:
        return {
            key: {
                "counts": list(data["counts"]),  # type: ignore[arg-type]
                "sum": data["sum"],
                "count": data["count"],
                "min": data["min"],
                "max": data["max"],
            }
            for key, data in self._series.items()
        }


class MetricsRegistry:
    """A namespace of metric families with get-or-create registration."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _get(self, cls, name: str, help: str, labels: Sequence[str], **kw):
        existing = self._families.get(name)
        if existing is not None:
            candidate_labels = tuple(labels)
            if existing.signature() != (cls.kind, candidate_labels):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels "
                    f"{list(existing.label_names)}"
                )
            return existing
        family = cls(name, help, labels, **kw)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def families(self) -> List[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    # -- snapshot / diff ----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-data copy of every family's current series."""
        out: Dict[str, Dict] = {}
        for family in self.families():
            out[family.name] = {
                "kind": family.kind,
                "labels": list(family.label_names),
                "series": {
                    self._render_labels(key): value
                    for key, value in family.series().items()
                },
            }
        return out

    @staticmethod
    def diff(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict[str, Dict]:
        """Per-series deltas of counters/gauges between two snapshots.

        Histograms diff on ``count``/``sum`` only (bucket deltas rarely
        matter for the "what did this experiment cost" question).
        """
        out: Dict[str, Dict] = {}
        for name, data in after.items():
            prior = before.get(name, {"series": {}})
            series_delta: Dict[str, object] = {}
            for labels, value in data["series"].items():
                prev = prior["series"].get(labels)
                if data["kind"] == "histogram":
                    prev = prev or {"count": 0, "sum": 0.0}
                    series_delta[labels] = {
                        "count": value["count"] - prev["count"],
                        "sum": value["sum"] - prev["sum"],
                    }
                else:
                    series_delta[labels] = value - (prev or 0)
            out[name] = {"kind": data["kind"], "series": series_delta}
        return out

    @staticmethod
    def _render_labels(key: LabelKey) -> str:
        if not key:
            return ""
        return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"

    def render_text(self) -> str:
        """Exposition-format text dump of every series.

        Real scrapers enforce two details the first cut of this method
        missed: every histogram must expose a cumulative ``_bucket``
        series ending in ``le="+Inf"`` (whose value equals ``_count``),
        and the payload must end with a newline.
        """
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            series = family.series()
            if not series:
                continue
            for key in sorted(series):
                label_text = self._render_labels(key)
                value = series[key]
                if family.kind == "histogram":
                    bounds = [f"{b:.6g}" for b in family.buckets] + ["+Inf"]
                    cumulative = 0
                    for bound, count in zip(bounds, value["counts"]):
                        cumulative += count
                        bucket_labels = self._render_labels(
                            tuple(key) + (("le", bound),)
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_count{label_text} {value['count']}"
                    )
                    lines.append(
                        f"{family.name}_sum{label_text} {value['sum']:.6g}"
                    )
                else:
                    lines.append(f"{family.name}{label_text} {value:.6g}")
        return "\n".join(lines) + "\n" if lines else ""
