"""Trace exporters: JSONL on disk, Chrome ``trace_event`` for Perfetto.

Two output shapes:

* **JSONL** — one JSON object per line, headed by a ``trace-meta``
  record carrying the ring-buffer accounting.  This is the archival
  format the CLI's ``--trace`` flag writes and the ``repro trace``
  subcommand reads back.
* **Chrome trace** — the ``trace_event`` JSON-object format
  (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
  events with a duration (branch executions carry their modelled
  latency) become complete ``"ph": "X"`` slices, everything else becomes
  an instant ``"ph": "i"`` event.  Simulated cycles map to microseconds,
  so a covert-channel transmit or calibration run opens directly in
  Perfetto / ``chrome://tracing`` with stage structure visible on the
  timeline.

Events without a cycle timestamp (pool dispatch, journal bookkeeping)
are placed at the previous event's timestamp so file order is preserved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.trace import TraceEvent, Tracer

__all__ = [
    "events_to_dicts",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "summarize",
]

EventLike = Union[TraceEvent, Dict[str, Any]]


def events_to_dicts(events: Iterable[EventLike]) -> List[Dict[str, Any]]:
    """Normalise a mixed event stream to plain dict records."""
    out = []
    for event in events:
        out.append(event.to_dict() if isinstance(event, TraceEvent) else event)
    return out


def write_jsonl(
    source: Union[Tracer, Sequence[EventLike]],
    path,
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a trace to ``path`` as JSON lines; returns the path.

    Accepts a :class:`Tracer` (its events plus drop accounting) or a
    plain event sequence.  The first line is a ``trace-meta`` record.
    """
    if isinstance(source, Tracer):
        events = events_to_dicts(source.events())
        header = {
            "type": "trace-meta",
            "events": len(events),
            "emitted": source.emitted,
            "dropped": source.dropped,
            "capacity": source.capacity,
            "categories": sorted(source.categories),
        }
    else:
        events = events_to_dicts(source)
        header = {
            "type": "trace-meta",
            "events": len(events),
            "emitted": len(events),
            "dropped": 0,
            "capacity": None,
            "categories": sorted({e["cat"] for e in events}),
        }
    header.update(meta or {})
    path = Path(path)
    with path.open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for event in events:
            fh.write(json.dumps(event) + "\n")
    return path


def read_jsonl(path) -> tuple:
    """Read a JSONL trace; returns ``(meta, events)``.

    Tolerates a missing meta header (every line an event), so hand-built
    files summarise too.
    """
    meta: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "trace-meta":
                meta = record
            else:
                events.append(record)
    return meta, events


def to_chrome_trace(
    events: Iterable[EventLike], *, process_name: str = "repro"
) -> Dict[str, Any]:
    """Convert events to a Chrome ``trace_event`` JSON object.

    ``pid`` maps to the trace's *tid* (one track per simulated process)
    under a single Perfetto process; the simulated cycle count maps to
    microseconds.
    """
    records = events_to_dicts(events)
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    last_ts = 0
    for record in records:
        cycle = record.get("cycle")
        ts = last_ts if cycle is None else int(cycle)
        last_ts = ts
        args = dict(record.get("args") or {})
        args["seq"] = record.get("seq")
        args["level"] = record.get("level", "info")
        entry: Dict[str, Any] = {
            "name": f"{record['cat']}.{record['name']}",
            "cat": record["cat"],
            "ts": ts,
            "pid": 1,
            "tid": int(record.get("pid") or 0),
            "args": args,
        }
        duration = args.get("dur")
        if isinstance(duration, (int, float)) and duration > 0:
            entry["ph"] = "X"
            entry["dur"] = int(duration)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[EventLike], path, *, process_name: str = "repro"
) -> Path:
    """Write the Chrome-trace JSON for ``events`` to ``path``."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(events, process_name=process_name))
    )
    return path


def summarize(
    events: Sequence[EventLike], meta: Optional[Dict[str, Any]] = None
) -> str:
    """Human-readable digest of a trace (the CLI's ``trace summary``)."""
    records = events_to_dicts(events)
    lines: List[str] = []
    meta = meta or {}
    total = len(records)
    lines.append(f"events retained : {total}")
    if meta:
        lines.append(
            f"emitted/dropped : {meta.get('emitted', total)}"
            f"/{meta.get('dropped', 0)} (capacity {meta.get('capacity')})"
        )
    cycles = [r["cycle"] for r in records if r.get("cycle") is not None]
    if cycles:
        lines.append(
            f"cycle span      : {min(cycles)} .. {max(cycles)} "
            f"({max(cycles) - min(cycles)} cycles)"
        )
    by_cat: Dict[str, int] = {}
    by_level: Dict[str, int] = {}
    for record in records:
        by_cat[record["cat"]] = by_cat.get(record["cat"], 0) + 1
        level = record.get("level", "info")
        by_level[level] = by_level.get(level, 0) + 1
    if by_cat:
        lines.append("per category    :")
        for cat in sorted(by_cat):
            lines.append(f"  {cat:<12} {by_cat[cat]}")
    warnings = [
        r for r in records if r.get("level") == "warning"
    ]
    if warnings:
        lines.append(f"warnings        : {len(warnings)}")
        for record in warnings[:10]:
            args = record.get("args") or {}
            detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
            lines.append(f"  {record['cat']}.{record['name']} ({detail})")
        if len(warnings) > 10:
            lines.append(f"  ... and {len(warnings) - 10} more")
    return "\n".join(lines)
