"""Run manifests: provenance records written next to every result.

Three perf PRs committed benchmark numbers to ``benchmarks/results/``
with no record of the seed, preset, scale knob or code version that
produced them — a reproduction repo reproducing *itself* badly.  A
:class:`RunManifest` captures that provenance in one JSON document:

* the experiment identity (``name``, preset, seed),
* the environment knobs that change workload size or dispatch
  (``REPRO_BENCH_SCALE``, ``REPRO_TRIAL_WORKERS``),
* the code version (git SHA, dirty flag, package version),
* wall time and a SHA-256 digest per result artifact.

The benchmark harness (``benchmarks/_common.py``) writes
``results/<name>.manifest.json`` beside every emitted table; the CLI's
``--trace`` runs write one next to the trace file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.ioutil import atomic_write_text

__all__ = ["RunManifest", "git_revision", "sha256_text"]

SCHEMA_VERSION = 1

#: Environment knobs that change what a run computes (recorded verbatim;
#: absent variables are recorded as null so their absence is provenance
#: too).
ENV_KNOBS = ("REPRO_BENCH_SCALE", "REPRO_TRIAL_WORKERS")


def sha256_text(text: str) -> str:
    """Digest of a result artifact's text (newline-normalised)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def git_revision(cwd: Optional[Path] = None) -> Optional[Dict[str, Any]]:
    """Best-effort ``{"sha": ..., "dirty": ...}`` of the working tree.

    Returns ``None`` when git (or a repository) is unavailable — a
    manifest must never fail a run over provenance it cannot collect.
    """
    try:
        cwd = cwd or Path(__file__).resolve().parent
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
        return {
            "sha": sha.stdout.strip(),
            "dirty": bool(status.stdout.strip()),
        }
    except (OSError, subprocess.SubprocessError):
        return None


@dataclass
class RunManifest:
    """Provenance of one experiment/benchmark run (JSON-serialisable)."""

    name: str
    created_unix: float
    #: "run" for manifests written by the run itself; "backfill" for
    #: manifests reconstructed from an already-committed result file
    #: (digest and code version are current, seeds/wall time unknown).
    source: str = "run"
    preset: Optional[str] = None
    seed: Optional[int] = None
    env: Dict[str, Optional[str]] = field(default_factory=dict)
    git: Optional[Dict[str, Any]] = None
    python: str = ""
    numpy: str = ""
    repro_version: str = ""
    duration_seconds: Optional[float] = None
    #: Result-file name -> SHA-256 of its text contents.
    results: Dict[str, str] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        name: str,
        *,
        source: str = "run",
        preset: Optional[str] = None,
        seed: Optional[int] = None,
        duration_seconds: Optional[float] = None,
        results: Optional[Dict[str, str]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Build a manifest, collecting environment and code version."""
        import numpy

        try:
            from repro import __version__ as repro_version
        except Exception:  # pragma: no cover - circular-import guard
            repro_version = ""
        return cls(
            name=name,
            created_unix=time.time(),
            source=source,
            preset=preset,
            seed=seed,
            env={knob: os.environ.get(knob) for knob in ENV_KNOBS},
            git=git_revision(),
            python=platform.python_version(),
            numpy=numpy.__version__,
            repro_version=repro_version,
            duration_seconds=duration_seconds,
            results=dict(results or {}),
            extra=dict(extra or {}),
        )

    def add_result(self, filename: str, text: str) -> None:
        """Record (and digest) one result artifact."""
        self.results[filename] = sha256_text(text)

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path) -> Path:
        """Atomically write the manifest JSON to ``path``; returns the path.

        Atomic (temp + fsync + rename, :mod:`repro.ioutil`) so a crash
        mid-write can never leave a torn manifest beside a good result —
        readers see the old manifest or the new one, nothing between.
        """
        path = Path(path)
        atomic_write_text(path, self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, path) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))
