"""``repro.obs`` — tracing, metrics and run-provenance observability.

The attack in the paper is read out entirely through observation
channels; this subsystem gives the *simulator* the same courtesy.  Four
parts:

* :mod:`repro.obs.trace` — a process-wide :class:`~repro.obs.trace.Tracer`
  with typed events, category filtering, a bounded ring buffer and a
  zero-overhead disabled path (hot layers gate on a single
  ``obs.TRACER is not None`` test);
* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  snapshot/diff and a text renderer;
* :mod:`repro.obs.manifest` — :class:`~repro.obs.manifest.RunManifest`
  provenance records (preset, seeds, env knobs, git SHA, wall time,
  result digests) written next to every benchmark result;
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` output, so
  a calibration run or covert-channel transmit opens in Perfetto.

Quick start::

    from repro import obs

    with obs.tracing(collect_metrics=True) as tracer:
        channel.transmit(bits)
    obs.write_jsonl(tracer, "transmit.jsonl")
    obs.write_chrome_trace(tracer.events(), "transmit.chrome.json")
    print(tracer.metrics.render_text())

See MODELING.md §9 for the event taxonomy and overhead budget.
"""

from repro.obs.export import (
    read_jsonl,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.http import MetricsServer
from repro.obs.manifest import RunManifest, git_revision, sha256_text
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    CATEGORIES,
    TraceEvent,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    record_resilience_event,
    record_scalar_fallback,
    reset_resilience_events,
    reset_scalar_fallbacks,
    resilience_event_counts,
    scalar_fallback_counts,
    tracing,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "RunManifest",
    "TraceEvent",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "git_revision",
    "read_jsonl",
    "record_resilience_event",
    "record_scalar_fallback",
    "reset_resilience_events",
    "reset_scalar_fallbacks",
    "resilience_event_counts",
    "scalar_fallback_counts",
    "sha256_text",
    "summarize",
    "to_chrome_trace",
    "tracing",
    "write_chrome_trace",
    "write_jsonl",
]
