"""Crash-safe file primitives: atomic replace-on-write with fsync.

Long campaigns die in ugly ways — OOM kills, SIGKILL from a batch
scheduler, a full disk — and a plain ``path.write_text`` caught mid-write
leaves a torn file that poisons every later run reading it.  Everything
in this repo that persists state a future process will trust (benchmark
results and their provenance manifests, campaign checkpoints) goes
through these helpers instead:

1. write the full payload to a unique temp file *in the target
   directory* (same filesystem, so the final rename is atomic);
2. flush and ``fsync`` the temp file, so the payload is durable before
   the name is;
3. ``os.replace`` onto the destination — readers see either the old
   complete file or the new complete file, never a prefix;
4. best-effort ``fsync`` of the directory, so the rename itself survives
   a power cut (skipped on platforms where directories can't be opened).

No repro imports — this module sits below ``repro.obs`` and
``repro.resilience`` so both (and the benchmark harness) can use it
without cycles.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]

PathLike = Union[str, Path]


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory's entry table (best effort, POSIX only)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path.

    The temp name includes the pid so concurrent writers (forked trial
    workers emitting to a shared results dir) never clobber each other's
    in-flight temp file; the last ``os.replace`` wins whole.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(str(tmp), str(path))
    except BaseException:
        try:
            os.unlink(str(tmp))
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically replace ``path`` with UTF-8 ``text``; returns the path."""
    return atomic_write_bytes(path, text.encode("utf-8"))
