"""Generated-C kernel backend (cffi API mode, compiled once, cached).

The five ops become plain sequential C loops over int64 arrays.  The
extension is compiled a single time into a content-addressed cache
directory — keyed by a hash of the C source plus the cffi/python
versions — and re-loaded from disk on every later run (and in every
forked worker) without invoking the compiler again.  Cache location:
``$REPRO_KERNEL_CACHE``, else ``~/.cache/repro/kernels``.

Correctness note: the sequential loops and the numpy backend's
segmented scans are the same fold in different association orders;
TransitionMonoid ids are canonical and composition associative, so the
results are bit-identical (pinned by ``tests/test_kernels.py``).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

NAME = "cffi"

#: Environment knob for the compiled-extension cache directory.
KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE"

_CDEF = """
void repro_fold_ids(const int64_t *positions, const int64_t *ids,
                    int64_t n, const int64_t *ct, int64_t size,
                    int64_t *acc);
int64_t repro_reduce_ids(const int64_t *ids, int64_t n,
                         const int64_t *ct, int64_t size,
                         int64_t identity);
void repro_summarize_block(const int64_t *addresses,
                           const uint8_t *outcomes, int64_t n,
                           const int64_t *oid, const int64_t *ct,
                           int64_t size, int64_t n_b, int64_t tb,
                           int64_t n_g, const int64_t *pos_table,
                           int64_t ghr_mask, int64_t n_sel,
                           int64_t tsel, int64_t n_sets, int64_t tset,
                           int64_t tag_mask, int64_t identity,
                           int64_t *g_acc, int64_t *scalars);
void repro_read_levels_ids(const int64_t *lift0, int64_t chunk,
                           int64_t n_tracked, const int64_t *p_sorted,
                           const int64_t *remaining,
                           const int64_t *step_ids,
                           const uint8_t *first, const int64_t *v0,
                           const int64_t *out_slot, int64_t n_nodes,
                           const int64_t *pow_flat, int64_t pow_k,
                           const int64_t *ct, int64_t size,
                           const int64_t *maps, int64_t n_levels,
                           int64_t *out, int64_t out_width);
void repro_read_levels_maps(const int64_t *tracked_maps,
                            const int64_t *p_sorted,
                            const int64_t *remaining,
                            const int64_t *node_sel,
                            const uint8_t *first, const int64_t *v0,
                            const int64_t *out_slot, int64_t n_nodes,
                            const int64_t *step4, int64_t n_levels,
                            int64_t *out);
"""

_SOURCE = """
#include <stdint.h>

void repro_fold_ids(const int64_t *positions, const int64_t *ids,
                    int64_t n, const int64_t *ct, int64_t size,
                    int64_t *acc)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t p = positions[i];
        if (p >= 0)
            acc[p] = ct[acc[p] * size + ids[i]];
    }
}

int64_t repro_reduce_ids(const int64_t *ids, int64_t n,
                         const int64_t *ct, int64_t size,
                         int64_t identity)
{
    int64_t a = identity;
    for (int64_t i = 0; i < n; i++)
        a = ct[a * size + ids[i]];
    return a;
}

/* a mod n for non-negative a, one AND when n is a power of two (the
 * runtime divide otherwise dominates the whole loop). */
static inline int64_t repro_mod(int64_t a, int64_t n)
{
    if ((n & (n - 1)) == 0)
        return a & (n - 1);
    return a % n;
}

/* Circular-XOR fold of a (pre-masked) history value down to the
 * table's index width w = floor(log2(n_g)) — identity whenever the
 * history already fits in w bits (the loop then runs once). */
static inline int64_t repro_fold_hist(int64_t h, int64_t w,
                                      int64_t wmask)
{
    int64_t f = 0;
    while (h != 0) {
        f ^= h & wmask;
        h >>= w;
    }
    return f;
}

void repro_summarize_block(const int64_t *addresses,
                           const uint8_t *outcomes, int64_t n,
                           const int64_t *oid, const int64_t *ct,
                           int64_t size, int64_t n_b, int64_t tb,
                           int64_t n_g, const int64_t *pos_table,
                           int64_t ghr_mask, int64_t n_sel,
                           int64_t tsel, int64_t n_sets, int64_t tset,
                           int64_t tag_mask, int64_t identity,
                           int64_t *g_acc, int64_t *scalars)
{
    int64_t bim = identity, ghr = 0, touched = 0, block_tag = -1;
    int64_t fold_w = 0, ng_bits = n_g;
    while (ng_bits > 1) { fold_w++; ng_bits >>= 1; }
    if (fold_w < 1)
        fold_w = 1;
    int64_t fold_mask = ((int64_t)1 << fold_w) - 1;
    for (int64_t i = 0; i < n; i++) {
        int64_t a = addresses[i];
        int64_t o = oid[outcomes[i]];
        if (repro_mod(a, n_b) == tb)
            bim = ct[bim * size + o];
        int64_t folded = repro_fold_hist(ghr, fold_w, fold_mask);
        int64_t p = pos_table[repro_mod(a ^ folded, n_g)];
        if (p >= 0)
            g_acc[p] = ct[g_acc[p] * size + o];
        ghr = ((ghr << 1) | (int64_t)outcomes[i]) & ghr_mask;
        if (repro_mod(a, n_sel) == tsel)
            touched = 1;
        if (repro_mod(a, n_sets) == tset)
            block_tag = (a / n_sets) & tag_mask;
    }
    scalars[0] = bim;
    scalars[1] = touched;
    scalars[2] = block_tag;
}

void repro_read_levels_ids(const int64_t *lift0, int64_t chunk,
                           int64_t n_tracked, const int64_t *p_sorted,
                           const int64_t *remaining,
                           const int64_t *step_ids,
                           const uint8_t *first, const int64_t *v0,
                           const int64_t *out_slot, int64_t n_nodes,
                           const int64_t *pow_flat, int64_t pow_k,
                           const int64_t *ct, int64_t size,
                           const int64_t *maps, int64_t n_levels,
                           int64_t *out, int64_t out_width)
{
    for (int64_t c = 0; c < chunk; c++) {
        const int64_t *l0 = lift0 + c * n_tracked;
        int64_t *o = out + c * out_width;
        int64_t cur = 0;
        for (int64_t j = 0; j < n_nodes; j++) {
            if (first[j])
                cur = v0[j];
            int64_t jump =
                pow_flat[l0[p_sorted[j]] * pow_k + remaining[j]];
            int64_t val = maps[jump * n_levels + cur];
            int64_t slot = out_slot[j];
            if (slot >= 0)
                o[slot] = val;
            cur = maps[step_ids[j] * n_levels + val];
        }
    }
}

void repro_read_levels_maps(const int64_t *tracked_maps,
                            const int64_t *p_sorted,
                            const int64_t *remaining,
                            const int64_t *node_sel,
                            const uint8_t *first, const int64_t *v0,
                            const int64_t *out_slot, int64_t n_nodes,
                            const int64_t *step4, int64_t n_levels,
                            int64_t *out)
{
    int64_t cur = 0;
    for (int64_t j = 0; j < n_nodes; j++) {
        if (first[j])
            cur = v0[j];
        const int64_t *row = tracked_maps + p_sorted[j] * n_levels;
        int64_t val = cur;
        for (int64_t k = remaining[j]; k > 0; k--)
            val = row[val];
        int64_t slot = out_slot[j];
        if (slot >= 0)
            out[slot] = val;
        cur = step4[node_sel[j] * n_levels + val];
    }
}
"""

_lib = None
_ffi = None


def _cache_dir() -> Path:
    root = os.environ.get(KERNEL_CACHE_ENV)
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro" / "kernels"


def _module_name() -> str:
    import cffi

    digest = hashlib.blake2b(digest_size=8)
    digest.update(_SOURCE.encode())
    digest.update(_CDEF.encode())
    digest.update(cffi.__version__.encode())
    digest.update(f"py{sys.version_info[0]}.{sys.version_info[1]}".encode())
    return f"_repro_kernels_{digest.hexdigest()}"


def _find_cached(cache: Path, modname: str):
    for path in sorted(cache.glob(f"{modname}*")):
        if path.suffix in (".so", ".pyd", ".dylib"):
            return path
    return None


def _build(cache: Path, modname: str) -> Path:
    """Compile the extension into the cache dir (atomic rename)."""
    import cffi

    ffibuilder = cffi.FFI()
    ffibuilder.cdef(_CDEF)
    ffibuilder.set_source(modname, _SOURCE, extra_compile_args=["-O2"])
    cache.mkdir(parents=True, exist_ok=True)
    tmp = tempfile.mkdtemp(prefix=".build-", dir=str(cache))
    try:
        built = Path(ffibuilder.compile(tmpdir=tmp))
        target = cache / built.name
        os.replace(built, target)  # racing builders converge on one file
        return target
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _load_lib():
    global _lib, _ffi
    if _lib is not None:
        return
    import cffi  # noqa: F401  (unavailability should fail here, cleanly)

    cache = _cache_dir()
    modname = _module_name()
    path = _find_cached(cache, modname)
    if path is None:
        path = _build(cache, modname)
    spec = importlib.util.spec_from_file_location(modname, str(path))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    _lib = module.lib
    _ffi = module.ffi


def load():
    """Initialise (compile or re-load) the extension; returns this module."""
    _load_lib()
    return sys.modules[__name__]


def _i64(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _u8(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.uint8)


def _p(a: np.ndarray):
    return _ffi.cast("int64_t *", _ffi.from_buffer(a))


def _pu8(a: np.ndarray):
    return _ffi.cast("uint8_t *", _ffi.from_buffer(a))


# -- ops --------------------------------------------------------------------


def fold_ids(positions, ids, compose_table, n_out, identity=0):
    positions = _i64(positions)
    ids = _i64(ids)
    ct = _i64(compose_table)
    acc = np.full(int(n_out), identity, dtype=np.int64)
    _lib.repro_fold_ids(
        _p(positions), _p(ids), len(positions), _p(ct), ct.shape[1],
        _p(acc),
    )
    return acc


def reduce_ids(ids, compose_table, identity=0):
    ids = _i64(ids)
    ct = _i64(compose_table)
    return int(
        _lib.repro_reduce_ids(
            _p(ids), len(ids), _p(ct), ct.shape[1], int(identity)
        )
    )


def summarize_block(
    addresses, outcomes, outcome_ids, compose_table, n_b, tb, n_g,
    pos_table, ghr_len, n_sel, tsel, n_sets, tset, tag_mask, n_tracked,
    identity=0,
):
    addresses = _i64(addresses)
    outcomes_u8 = _u8(outcomes)
    oid = _i64(outcome_ids)
    ct = _i64(compose_table)
    pos_table = _i64(pos_table)
    g_acc = np.full(int(n_tracked), identity, dtype=np.int64)
    scalars = np.empty(3, dtype=np.int64)
    _lib.repro_summarize_block(
        _p(addresses), _pu8(outcomes_u8), len(addresses), _p(oid),
        _p(ct), ct.shape[1], int(n_b), int(tb), int(n_g), _p(pos_table),
        (1 << int(ghr_len)) - 1, int(n_sel), int(tsel), int(n_sets),
        int(tset), int(tag_mask), int(identity), _p(g_acc), _p(scalars),
    )
    return int(scalars[0]), g_acc, bool(scalars[1]), int(scalars[2])


def read_levels_ids(
    lift0, p_sorted, remaining, step_ids, first, v0_nodes, out_slot,
    pow_flat, pow_k, ct_flat, ct_size, maps_flat, n_levels, out_width,
    cache=None,
):
    lift0 = _i64(lift0)
    chunk, n_tracked = lift0.shape
    if cache is not None and "cffi_args" in cache:
        args = cache["cffi_args"]
    else:
        args = (
            _i64(p_sorted), _i64(remaining), _i64(step_ids), _u8(first),
            _i64(v0_nodes), _i64(out_slot), _i64(pow_flat),
            _i64(ct_flat), _i64(maps_flat),
        )
        if cache is not None:
            cache["cffi_args"] = args
    p_s, rem, sid, fst, v0, oslot, powf, ctf, mapsf = args
    out = np.zeros((chunk, int(out_width)), dtype=np.int64)
    _lib.repro_read_levels_ids(
        _p(lift0), chunk, n_tracked, _p(p_s), _p(rem), _p(sid),
        _pu8(fst), _p(v0), _p(oslot), len(p_s), _p(powf), int(pow_k),
        _p(ctf), int(ct_size), _p(mapsf), int(n_levels), _p(out),
        int(out_width),
    )
    return out


def read_levels_maps(
    tracked_maps, p_sorted, remaining, node_sel, first, v0_nodes,
    out_slot, step4_flat, n_levels, out_width,
):
    tracked_maps = _i64(tracked_maps)
    p_sorted = _i64(p_sorted)
    remaining = _i64(remaining)
    node_sel = _i64(node_sel)
    first_u8 = _u8(first)
    v0_nodes = _i64(v0_nodes)
    out_slot = _i64(out_slot)
    step4_flat = _i64(step4_flat)
    out = np.zeros(int(out_width), dtype=np.int64)
    _lib.repro_read_levels_maps(
        _p(tracked_maps), _p(p_sorted), _p(remaining), _p(node_sel),
        _pu8(first_u8), _p(v0_nodes), _p(out_slot), len(p_sorted),
        _p(step4_flat), int(n_levels), _p(out),
    )
    return out
