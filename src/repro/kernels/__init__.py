"""Compiled-kernel layer for the hot fold loops (see ``dispatch``).

Public surface::

    from repro import kernels

    kernels.active_backend()            # "numpy" | "numba" | "cffi"
    kernels.set_backend("cffi")         # runtime override (tests/benches)
    kernels.fold_ids(...)               # dispatched ops
    kernels.kernel_dispatch_counts()    # always-on per-backend counters

Backend choice never changes results — see the determinism contract in
:mod:`repro.kernels.dispatch` and MODELING.md §12.
"""

from .dispatch import (  # noqa: F401
    AUTO_ORDER,
    KERNEL_BACKEND_ENV,
    active_backend,
    available_backends,
    backend_init_errors,
    ensure_initialized,
    fold_ids,
    kernel_dispatch_counts,
    read_levels_ids,
    read_levels_maps,
    reduce_ids,
    reset_kernel_dispatch_counts,
    set_backend,
    summarize_block,
    warmup,
)
from .cffi_backend import KERNEL_CACHE_ENV  # noqa: F401
