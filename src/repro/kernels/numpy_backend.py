"""Pure-numpy kernel implementations — the always-correct reference.

These are the PR 6 algorithms, extracted verbatim from
``bpu/fsm.py`` / ``core/manycore.py`` / ``core/calibration_batch.py``
behind the :mod:`repro.kernels` op signatures: segmented Hillis-Steele
scans for the monoid folds, a sliding-window matmul for the GHR
trajectory, and the binary-lifting / stride-doubling passes for the
read-level recovery.  The compiled backends replace each op with a
sequential O(N) loop; TransitionMonoid ids are canonical and
composition is associative, so every association order produces the
same ids and the backends are bit-identical by construction (the
differential suite in ``tests/test_kernels.py`` pins it anyway).

No op draws from a random generator, so backend choice can never move
an RNG stream position.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bpu.hashes import fold_history

NAME = "numpy"


def load():
    """The numpy backend is always available; its impl is this module."""
    import sys

    return sys.modules[__name__]


# -- monoid folds -----------------------------------------------------------


def fold_ids(
    positions: np.ndarray,
    ids: np.ndarray,
    compose_table: np.ndarray,
    n_out: int,
    identity: int = 0,
) -> np.ndarray:
    """Compose, per output position, the map ids that hit it.

    ``positions[i]`` (program order) is the output slot branch ``i``
    folds into, or ``-1`` to skip the branch; ``ids[i]`` is its map id.
    Returns ``(n_out,)`` composed ids, ``identity`` for untouched slots.
    """
    out = np.full(int(n_out), identity, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size and (positions < 0).any():
        keep = positions >= 0
        positions = positions[keep]
        ids = np.asarray(ids, dtype=np.int64)[keep]
    n = positions.size
    if n == 0:
        return out
    # Radix-friendly sort key for the small-position common case.
    if n_out <= np.iinfo(np.int16).max:
        sort_key = positions.astype(np.int16)
    else:
        sort_key = positions
    order = np.argsort(sort_key, kind="stable")
    seg = positions[order]
    vals = np.asarray(ids, dtype=np.int64)[order]
    if vals.base is not None or not vals.flags.writeable:
        vals = vals.copy()
    # Sparse segmented Hillis-Steele: only positions whose stride
    # neighbour shares their segment are touched, and once a stride
    # exceeds the longest segment no larger stride can match either.
    offset = 1
    while offset < n:
        same = np.nonzero(seg[offset:] == seg[:-offset])[0] + offset
        if not len(same):
            break
        vals[same] = compose_table[vals[same - offset], vals[same]]
        offset *= 2
    last = np.empty(n, dtype=bool)
    last[-1] = True
    last[:-1] = seg[1:] != seg[:-1]
    out[seg[last]] = vals[last]
    return out


def reduce_ids(
    ids: np.ndarray, compose_table: np.ndarray, identity: int = 0
) -> int:
    """Compose a sequence of map ids left-to-right into one id."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return int(identity)
    while ids.size > 1:
        odd = ids.size % 2
        paired = compose_table[ids[: ids.size - odd : 2], ids[1::2]].astype(
            np.int64
        )
        ids = np.concatenate([paired, ids[-1:]]) if odd else paired
    return int(ids[0])


# -- fused per-block summary (manycore phase 0) ------------------------------


def _ghr_trajectory(outcomes: np.ndarray, ghr_bits: int) -> np.ndarray:
    """GHR seen by each branch from all-zero history (sliding matmul)."""
    n = len(outcomes)
    padded = np.zeros(n - 1 + ghr_bits, dtype=np.int64)
    if n > 1:
        padded[ghr_bits:] = outcomes[:-1]
    windows = np.lib.stride_tricks.sliding_window_view(padded, ghr_bits)
    weights = np.left_shift(
        np.int64(1), np.arange(ghr_bits - 1, -1, -1, dtype=np.int64)
    )
    return windows[:n] @ weights


def _fast_mod(values: np.ndarray, n: int) -> np.ndarray:
    if n & (n - 1) == 0:
        return values & (n - 1)
    return values % n


def summarize_block(
    addresses: np.ndarray,
    outcomes: np.ndarray,
    outcome_ids: np.ndarray,
    compose_table: np.ndarray,
    n_b: int,
    tb: int,
    n_g: int,
    pos_table: np.ndarray,
    ghr_len: int,
    n_sel: int,
    tsel: int,
    n_sets: int,
    tset: int,
    tag_mask: int,
    n_tracked: int,
    identity: int = 0,
):
    """One randomisation block's campaign-relevant footprint, fused.

    Returns ``(bim_id, g_ids, tsel_touched, block_tag)`` — the target
    bimodal entry's fold id, the fold id per tracked gshare entry,
    whether the block touches the target's selector entry, and the last
    identification tag written to the target's BIT set (-1 if none).
    """
    outcomes = np.asarray(outcomes)
    step_ids = outcome_ids[outcomes.astype(np.int64)]

    on_target = _fast_mod(addresses, n_b) == tb
    bim_id = reduce_ids(step_ids[on_target], compose_table, identity)

    trajectory = fold_history(_ghr_trajectory(outcomes, ghr_len), ghr_len, n_g)
    g_indices = _fast_mod(addresses ^ trajectory, n_g).astype(np.int64)
    pos = pos_table[g_indices]
    g_ids = fold_ids(pos, step_ids, compose_table, n_tracked, identity)

    tsel_touched = bool((_fast_mod(addresses, n_sel) == tsel).any())
    covering = np.nonzero(_fast_mod(addresses, n_sets) == tset)[0]
    if len(covering):
        block_tag = int((addresses[covering[-1]] // n_sets) & tag_mask)
    else:
        block_tag = -1
    return int(bim_id), g_ids, tsel_touched, block_tag


# -- id-space read-level recovery (manycore phase 2) -------------------------


def read_levels_ids(
    lift0: np.ndarray,
    p_sorted: np.ndarray,
    remaining: np.ndarray,
    step_ids: np.ndarray,
    first: np.ndarray,
    v0_nodes: np.ndarray,
    out_slot: np.ndarray,
    pow_flat: np.ndarray,
    pow_k: int,
    ct_flat: np.ndarray,
    ct_size: int,
    maps_flat: np.ndarray,
    n_levels: int,
    out_width: int,
    cache: Optional[dict] = None,
) -> np.ndarray:
    """Read-before-write levels for a chunk of instances, in id space.

    ``lift0`` is ``(chunk, n_tracked)`` block-fold ids per instance;
    nodes arrive sorted by (entry, time) with ``first`` marking segment
    heads, ``remaining`` the epoch count each node's jump spans, and
    ``out_slot[j]`` the flat output slot of node ``j`` (-1 for non-read
    nodes).  Returns ``(chunk, out_width)`` levels.

    ``cache`` (when provided) memoises the stride-doubling schedule and
    the read scatter index across calls with the same node plan.
    """
    chunk = lift0.shape[0]
    n_nodes = len(p_sorted)
    if cache is not None and "sched" in cache:
        schedule, reads, slots = cache["sched"]
    else:
        schedule = []
        stride = 1
        while stride < n_nodes:
            valid = p_sorted[stride:] == p_sorted[:-stride]
            if not valid.any():
                break
            schedule.append((stride, np.nonzero(valid)[0] + stride))
            stride <<= 1
        reads = np.nonzero(out_slot >= 0)[0]
        slots = out_slot[reads]
        if cache is not None:
            cache["sched"] = (schedule, reads, slots)
    jump = pow_flat[lift0[:, p_sorted] * pow_k + remaining[None, :]]
    transfer = ct_flat[jump * ct_size + step_ids[None, :]]
    for stride, upd in schedule:
        transfer[:, upd] = ct_flat[
            transfer[:, upd - stride] * ct_size + transfer[:, upd]
        ]
    after = maps_flat[transfer * n_levels + v0_nodes[None, :]]
    before = np.empty_like(after)
    if n_nodes:
        before[:, 0] = 0
        before[:, 1:] = after[:, :-1]
    incoming = np.where(first[None, :], v0_nodes[None, :], before)
    values = maps_flat[jump * n_levels + incoming]
    read_flat = np.zeros((chunk, int(out_width)), dtype=np.int64)
    read_flat[:, slots] = values[:, reads]
    return read_flat


# -- level-space read recovery (batch calibration phase 2) -------------------


def read_levels_maps(
    tracked_maps: np.ndarray,
    p_sorted: np.ndarray,
    remaining: np.ndarray,
    node_sel: np.ndarray,
    first: np.ndarray,
    v0_nodes: np.ndarray,
    out_slot: np.ndarray,
    step4_flat: np.ndarray,
    n_levels: int,
    out_width: int,
) -> np.ndarray:
    """Read-before-write levels for one trial, in level-map space.

    ``tracked_maps[p]`` is tracked entry ``p``'s whole-block transition
    map (level -> level); each node applies that map ``remaining[j]``
    times (binary lifting), emits the landed level into ``out_slot[j]``
    when non-negative, then steps by row ``node_sel[j]`` of the stacked
    ``step4_flat`` table (noise rows first, execute rows offset by
    ``2 * n_levels`` — the caller pre-adds the read offset).  Returns
    ``(out_width,)`` levels.
    """
    n_nodes = len(p_sorted)
    read_flat = np.zeros(int(out_width), dtype=np.int64)
    if n_nodes == 0:
        return read_flat
    arange_n = np.arange(n_nodes)
    # Binary lifting: jump[j] = tracked_maps[p_sorted[j]] ** remaining[j].
    jump = np.tile(np.arange(n_levels, dtype=np.int64), (n_nodes, 1))
    lift = np.ascontiguousarray(tracked_maps).astype(np.int64)
    lift_base = (
        np.arange(len(tracked_maps))[:, None] * n_levels
    )
    rem = np.asarray(remaining, dtype=np.int64)
    while True:
        apply = np.nonzero(rem & 1)[0]
        if len(apply):
            jump[apply] = lift.ravel()[
                p_sorted[apply, None] * n_levels + jump[apply]
            ]
        rem = rem >> 1
        if not rem.any():
            break
        lift = lift.ravel()[lift_base + lift]
    # Compose jump-then-step transfers down each entry's node segment.
    transfer = step4_flat[node_sel[:, None] * n_levels + jump]
    stride = 1
    while stride < n_nodes:
        valid = p_sorted[stride:] == p_sorted[:-stride]
        if not valid.any():
            break
        upd = np.nonzero(valid)[0] + stride
        transfer[upd] = transfer.ravel()[
            upd[:, None] * n_levels + transfer[upd - stride]
        ]
        stride <<= 1
    after = transfer[arange_n, v0_nodes]
    before = np.empty_like(after)
    before[0] = 0
    before[1:] = after[:-1]
    incoming = np.where(first, v0_nodes, before)
    values = jump[arange_n, incoming]
    reads = out_slot >= 0
    read_flat[out_slot[reads]] = values[reads]
    return read_flat
