"""Kernel backend selection, dispatch accounting, and the op surface.

The hot inner loops of the fast engines — monoid folds
(:meth:`TransitionMonoid.reduce` / :meth:`fold_table`), the manycore
per-block summary and id-space read recovery, and the batch
calibration's prefix-scan read recovery — all route through the five
ops exported here.  Three interchangeable implementations exist:

``numpy``
    The PR 6 segmented-scan algorithms; always available, the
    correctness reference.
``numba``
    ``@njit(cache=True)`` sequential loops; used when numba imports.
``cffi``
    A small generated-C extension compiled once into a
    content-addressed cache directory; used when cffi + a C compiler
    are available.

Selection: ``REPRO_KERNEL_BACKEND`` (``auto`` | ``numpy`` | ``numba``
| ``cffi``; default ``auto`` prefers numba, then cffi, then numpy).
Resolution is lazy, happens at most once per process (until
:func:`set_backend` resets it), and is never silent: every op call
bumps an always-on per-backend counter (:func:`kernel_dispatch_counts`)
and a ``repro_kernel_dispatch_total{backend=...}`` metric when tracing
is enabled, and a requested-but-unavailable backend records a
``kernel_init`` fallback through the same machinery as the scalar-
engine fallbacks, so a campaign can always be attributed to the code
path that actually ran.

Determinism contract: every backend returns bit-identical outputs for
every op (TransitionMonoid ids are canonical and composition is
associative, so association order cannot matter), and no op touches a
random generator, so RNG stream positions are backend-independent.
``tests/test_kernels.py`` enforces both across the shipped presets.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

from . import numpy_backend

#: Environment knob naming the kernel backend (resolved lazily).
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Preference order under ``auto``.
AUTO_ORDER: Tuple[str, ...] = ("numba", "cffi", "numpy")

_VALID = ("auto", "numpy", "numba", "cffi")

#: Resolved (implementation module, backend name); None until first use.
_ACTIVE: Optional[tuple] = None
#: Explicit override installed via :func:`set_backend` (beats the env).
_REQUESTED: Optional[str] = None

#: Always-on op-call counter per backend name (tracing on or off).
_DISPATCH_COUNTS: Dict[str, int] = {}
#: Why a non-numpy backend failed to load, by name (diagnostics).
_INIT_ERRORS: Dict[str, str] = {}


def _load_backend(name: str):
    """Import and initialise one backend; raises on unavailability."""
    if name == "numpy":
        return numpy_backend.load()
    if name == "numba":
        from . import numba_backend

        return numba_backend.load()
    if name == "cffi":
        from . import cffi_backend

        return cffi_backend.load()
    raise ValueError(f"unknown kernel backend {name!r}")


def _resolve() -> tuple:
    """Pick and initialise the active backend (memoised)."""
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    requested = _REQUESTED
    if requested is None:
        requested = (
            os.environ.get(KERNEL_BACKEND_ENV, "auto").strip().lower()
            or "auto"
        )
    if requested not in _VALID:
        warnings.warn(
            f"{KERNEL_BACKEND_ENV}={requested!r} is not one of {_VALID}; "
            "using auto selection",
            RuntimeWarning,
            stacklevel=3,
        )
        requested = "auto"
    candidates = AUTO_ORDER if requested == "auto" else (requested, "numpy")
    for name in candidates:
        try:
            impl = _load_backend(name)
        except Exception as exc:  # missing module, compiler failure, ...
            _INIT_ERRORS[name] = f"{type(exc).__name__}: {exc}"
            if requested not in ("auto", "numpy") and name == requested:
                # An explicitly requested backend that cannot load is a
                # loud fallback, mirroring the scalar-engine accounting.
                from repro.obs.trace import record_scalar_fallback

                record_scalar_fallback(
                    "kernel_init", f"{name}_unavailable"
                )
                warnings.warn(
                    f"kernel backend {name!r} unavailable "
                    f"({_INIT_ERRORS[name]}); falling back to numpy",
                    RuntimeWarning,
                    stacklevel=3,
                )
            continue
        _ACTIVE = (impl, name)
        return _ACTIVE
    # Unreachable in practice — the numpy backend always loads.
    _ACTIVE = (numpy_backend.load(), "numpy")
    return _ACTIVE


def active_backend() -> str:
    """Name of the backend in use (resolving it on first call)."""
    return _resolve()[1]


def set_backend(name: Optional[str]) -> str:
    """Override backend selection and re-resolve immediately.

    ``name`` is one of ``auto`` / ``numpy`` / ``numba`` / ``cffi``, or
    ``None`` to drop the override and return to the environment knob.
    Returns the name of the backend actually installed (an unavailable
    explicit choice falls back to numpy, loudly).
    """
    global _ACTIVE, _REQUESTED
    if name is not None:
        name = name.strip().lower()
        if name not in _VALID:
            raise ValueError(
                f"unknown kernel backend {name!r}; expected one of {_VALID}"
            )
    _REQUESTED = name
    _ACTIVE = None
    return active_backend()


def available_backends() -> Tuple[str, ...]:
    """Backends that can actually load in this process, probed now."""
    out = []
    for name in ("numpy", "numba", "cffi"):
        try:
            _load_backend(name)
        except Exception as exc:
            _INIT_ERRORS[name] = f"{type(exc).__name__}: {exc}"
            continue
        out.append(name)
    return tuple(out)


def backend_init_errors() -> Dict[str, str]:
    """Load failures observed so far, by backend name (copy)."""
    return dict(_INIT_ERRORS)


def kernel_dispatch_counts() -> Dict[str, int]:
    """Cumulative kernel-op dispatches per backend (copy)."""
    return dict(_DISPATCH_COUNTS)


def reset_kernel_dispatch_counts() -> None:
    """Zero the dispatch counters (tests/benches)."""
    _DISPATCH_COUNTS.clear()


def ensure_initialized() -> str:
    """Resolve the backend now (worker-side hook after fork)."""
    return active_backend()


def warmup() -> str:
    """Resolve and exercise every op once so JIT/compile costs are paid
    before fork (children inherit the warm state)."""
    import numpy as np

    impl, name = _resolve()
    ct = np.array([[0, 1], [1, 1]], dtype=np.int64)
    maps = np.array([[0, 1], [1, 1]], dtype=np.int64)
    pos = np.array([0, -1], dtype=np.int64)
    ids = np.array([1, 1], dtype=np.int64)
    impl.fold_ids(pos, ids, ct, 1, 0)
    impl.reduce_ids(ids, ct, 0)
    impl.summarize_block(
        np.array([8, 9], dtype=np.int64),
        np.array([True, False]),
        np.array([0, 1], dtype=np.int64),
        ct, 2, 0, 2, np.array([0, -1], dtype=np.int64), 1,
        2, 0, 2, 0, 3, 1, 0,
    )
    nodes = np.array([0], dtype=np.int64)
    impl.read_levels_ids(
        np.zeros((1, 1), dtype=np.int64), nodes, nodes + 1,
        np.array([1], dtype=np.int64), np.array([True]), nodes,
        nodes, ct.ravel(), 2, ct.ravel(), 2, maps.ravel(), 2, 1,
    )
    impl.read_levels_maps(
        maps[:1], nodes, nodes + 1, nodes, np.array([True]), nodes,
        nodes, np.tile(maps, (2, 1)).ravel(), 2, 1,
    )
    return name


def _dispatch():
    """Resolve, count, and (when tracing) meter one op call."""
    impl, name = _resolve()
    _DISPATCH_COUNTS[name] = _DISPATCH_COUNTS.get(name, 0) + 1
    from repro.obs.trace import TRACER

    if TRACER is not None and TRACER.metrics is not None:
        TRACER.metrics.counter(
            "repro_kernel_dispatch_total",
            "kernel-op calls per compiled/fallback backend",
            labels=("backend",),
        ).inc(1, backend=name)
    return impl


# -- dispatched op surface ---------------------------------------------------


def fold_ids(positions, ids, compose_table, n_out, identity=0):
    """Per-slot composition of the map ids hitting each output slot."""
    return _dispatch().fold_ids(positions, ids, compose_table, n_out, identity)


def reduce_ids(ids, compose_table, identity=0):
    """Left-to-right composition of a map-id sequence into one id."""
    return _dispatch().reduce_ids(ids, compose_table, identity)


def summarize_block(
    addresses, outcomes, outcome_ids, compose_table, n_b, tb, n_g,
    pos_table, ghr_len, n_sel, tsel, n_sets, tset, tag_mask, n_tracked,
    identity=0,
):
    """Fused per-block campaign summary (GHR walk + both PHT folds)."""
    return _dispatch().summarize_block(
        addresses, outcomes, outcome_ids, compose_table, n_b, tb, n_g,
        pos_table, ghr_len, n_sel, tsel, n_sets, tset, tag_mask,
        n_tracked, identity,
    )


def read_levels_ids(
    lift0, p_sorted, remaining, step_ids, first, v0_nodes, out_slot,
    pow_flat, pow_k, ct_flat, ct_size, maps_flat, n_levels, out_width,
    cache=None,
):
    """Chunked id-space read-level recovery (manycore phase 2)."""
    return _dispatch().read_levels_ids(
        lift0, p_sorted, remaining, step_ids, first, v0_nodes, out_slot,
        pow_flat, pow_k, ct_flat, ct_size, maps_flat, n_levels,
        out_width, cache,
    )


def read_levels_maps(
    tracked_maps, p_sorted, remaining, node_sel, first, v0_nodes,
    out_slot, step4_flat, n_levels, out_width,
):
    """Per-trial level-space read recovery (batch calibration phase 2)."""
    return _dispatch().read_levels_maps(
        tracked_maps, p_sorted, remaining, node_sel, first, v0_nodes,
        out_slot, step4_flat, n_levels, out_width,
    )
