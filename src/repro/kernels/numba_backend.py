"""Numba kernel backend — ``@njit(cache=True)`` sequential loops.

Import-gated: :func:`load` raises if numba is not installed, and the
dispatcher falls back (loudly) to the next backend.  The jitted loops
are literal translations of the C backend's; on-disk caching keeps the
JIT cost to the first process that ever runs an op, and
:func:`repro.kernels.warmup` pays it before the trial pool forks.
"""

from __future__ import annotations

import sys

import numpy as np

NAME = "numba"

_compiled = None


def _build():
    from numba import njit

    @njit(cache=True)
    def _fold_ids(positions, ids, ct, size, acc):
        for i in range(len(positions)):
            p = positions[i]
            if p >= 0:
                acc[p] = ct[acc[p] * size + ids[i]]

    @njit(cache=True)
    def _reduce_ids(ids, ct, size, identity):
        a = identity
        for i in range(len(ids)):
            a = ct[a * size + ids[i]]
        return a

    @njit(cache=True)
    def _summarize_block(
        addresses, outcomes, oid, ct, size, n_b, tb, n_g, pos_table,
        ghr_mask, fold_w, fold_mask, n_sel, tsel, n_sets, tset,
        tag_mask, identity, g_acc,
    ):
        bim = identity
        ghr = np.int64(0)
        touched = False
        block_tag = np.int64(-1)
        for i in range(len(addresses)):
            a = addresses[i]
            o = oid[outcomes[i]]
            if a % n_b == tb:
                bim = ct[bim * size + o]
            # Fold the (masked) history down to index width before the
            # XOR — identity when the history already fits.
            h = ghr
            folded = np.int64(0)
            while h != 0:
                folded ^= h & fold_mask
                h >>= fold_w
            p = pos_table[(a ^ folded) % n_g]
            if p >= 0:
                g_acc[p] = ct[g_acc[p] * size + o]
            ghr = ((ghr << 1) | np.int64(outcomes[i])) & ghr_mask
            if a % n_sel == tsel:
                touched = True
            if a % n_sets == tset:
                block_tag = (a // n_sets) & tag_mask
        return bim, touched, block_tag

    @njit(cache=True)
    def _read_levels_ids(
        lift0, p_sorted, remaining, step_ids, first, v0, out_slot,
        pow_flat, pow_k, ct, size, maps, n_levels, out,
    ):
        chunk = lift0.shape[0]
        n_nodes = len(p_sorted)
        for c in range(chunk):
            cur = np.int64(0)
            for j in range(n_nodes):
                if first[j]:
                    cur = v0[j]
                jump = pow_flat[
                    lift0[c, p_sorted[j]] * pow_k + remaining[j]
                ]
                val = maps[jump * n_levels + cur]
                slot = out_slot[j]
                if slot >= 0:
                    out[c, slot] = val
                cur = maps[step_ids[j] * n_levels + val]

    @njit(cache=True)
    def _read_levels_maps(
        tracked_maps, p_sorted, remaining, node_sel, first, v0,
        out_slot, step4, n_levels, out,
    ):
        cur = np.int64(0)
        for j in range(len(p_sorted)):
            if first[j]:
                cur = v0[j]
            base = p_sorted[j] * n_levels
            val = cur
            for _ in range(remaining[j]):
                val = tracked_maps[base + val]
            slot = out_slot[j]
            if slot >= 0:
                out[slot] = val
            cur = step4[node_sel[j] * n_levels + val]

    return {
        "fold_ids": _fold_ids,
        "reduce_ids": _reduce_ids,
        "summarize_block": _summarize_block,
        "read_levels_ids": _read_levels_ids,
        "read_levels_maps": _read_levels_maps,
    }


def load():
    """Compile (or re-use cached) jitted loops; returns this module."""
    global _compiled
    if _compiled is None:
        _compiled = _build()
    return sys.modules[__name__]


def _i64(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _b(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.bool_)


# -- ops --------------------------------------------------------------------


def fold_ids(positions, ids, compose_table, n_out, identity=0):
    ct = _i64(compose_table)
    acc = np.full(int(n_out), identity, dtype=np.int64)
    _compiled["fold_ids"](
        _i64(positions), _i64(ids), ct.ravel(), ct.shape[1], acc
    )
    return acc


def reduce_ids(ids, compose_table, identity=0):
    ct = _i64(compose_table)
    return int(
        _compiled["reduce_ids"](
            _i64(ids), ct.ravel(), ct.shape[1], np.int64(identity)
        )
    )


def summarize_block(
    addresses, outcomes, outcome_ids, compose_table, n_b, tb, n_g,
    pos_table, ghr_len, n_sel, tsel, n_sets, tset, tag_mask, n_tracked,
    identity=0,
):
    ct = _i64(compose_table)
    g_acc = np.full(int(n_tracked), identity, dtype=np.int64)
    fold_w = max(1, int(n_g).bit_length() - 1)
    bim, touched, block_tag = _compiled["summarize_block"](
        _i64(addresses), _b(outcomes), _i64(outcome_ids), ct.ravel(),
        ct.shape[1], np.int64(n_b), np.int64(tb), np.int64(n_g),
        _i64(pos_table), np.int64((1 << int(ghr_len)) - 1),
        np.int64(fold_w), np.int64((1 << fold_w) - 1),
        np.int64(n_sel), np.int64(tsel), np.int64(n_sets),
        np.int64(tset), np.int64(tag_mask), np.int64(identity), g_acc,
    )
    return int(bim), g_acc, bool(touched), int(block_tag)


def read_levels_ids(
    lift0, p_sorted, remaining, step_ids, first, v0_nodes, out_slot,
    pow_flat, pow_k, ct_flat, ct_size, maps_flat, n_levels, out_width,
    cache=None,
):
    lift0 = _i64(lift0)
    if cache is not None and "numba_args" in cache:
        args = cache["numba_args"]
    else:
        args = (
            _i64(p_sorted), _i64(remaining), _i64(step_ids), _b(first),
            _i64(v0_nodes), _i64(out_slot), _i64(pow_flat),
            _i64(ct_flat), _i64(maps_flat),
        )
        if cache is not None:
            cache["numba_args"] = args
    p_s, rem, sid, fst, v0, oslot, powf, ctf, mapsf = args
    out = np.zeros((lift0.shape[0], int(out_width)), dtype=np.int64)
    _compiled["read_levels_ids"](
        lift0, p_s, rem, sid, fst, v0, oslot, powf, np.int64(pow_k),
        ctf, np.int64(ct_size), mapsf, np.int64(n_levels), out,
    )
    return out


def read_levels_maps(
    tracked_maps, p_sorted, remaining, node_sel, first, v0_nodes,
    out_slot, step4_flat, n_levels, out_width,
):
    out = np.zeros(int(out_width), dtype=np.int64)
    _compiled["read_levels_maps"](
        _i64(tracked_maps).ravel(), _i64(p_sorted), _i64(remaining),
        _i64(node_sel), _b(first), _i64(v0_nodes), _i64(out_slot),
        _i64(step4_flat), np.int64(n_levels), out,
    )
    return out
