#!/usr/bin/env python3
"""Spying on several branches per episode (paper §6.3).

One randomisation block primes *every* PHT entry, so one prime/probe
round can monitor several victim branches at once — here, a message-
processing victim whose handling of each request executes three
independent flag checks (compressed? encrypted? signed?), each a branch
at its own address.  The spy recovers all three flags from every single
request.

Run:  python examples/multi_branch_spy.py
"""

import numpy as np

from repro import NoiseSetting, PhysicalCore, Process, skylake
from repro.core.multi import MultiBranchScope

FLAG_BRANCHES = {
    "compressed": 0x40_5110,
    "encrypted": 0x40_52F4,
    "signed": 0x40_5448,
}


def main() -> None:
    core = PhysicalCore(skylake(), seed=808)
    spy = Process("spy")
    victim = Process("message-handler")
    rng = np.random.default_rng(12)

    addresses = {
        name: victim.branch_address(addr)
        for name, addr in FLAG_BRANCHES.items()
    }
    scope = MultiBranchScope(
        core, spy, list(addresses.values()), setting=NoiseSetting.ISOLATED
    )
    compiled = scope.calibrate()
    print(
        f"calibrated block seed={compiled.block.seed} pins all "
        f"{len(addresses)} flag-check entries:"
    )
    for plan in scope.plans:
        probe = "".join("T" if o else "N" for o in plan.probe_outcomes)
        print(
            f"  {plan.address:#x}: pinned level {plan.pinned_level}, "
            f"probe {probe}"
        )
    print()

    correct = total = 0
    for message_no in range(12):
        flags = {name: bool(rng.integers(0, 2)) for name in addresses}

        def handle_message():
            # The victim parses one message: each flag check is one branch.
            for name, address in addresses.items():
                core.execute_branch(victim, address, flags[name])

        recovered = scope.spy_episode(handle_message)
        shown = {
            name: recovered[address] for name, address in addresses.items()
        }
        ok = shown == flags
        correct += sum(shown[n] == flags[n] for n in addresses)
        total += len(addresses)
        print(
            f"message {message_no:2d}: "
            + "  ".join(
                f"{name}={'Y' if shown[name] else 'n'}"
                f"{'' if shown[name] == flags[name] else '(!)'}"
                for name in addresses
            )
            + ("" if ok else "   <- error")
        )

    print(
        f"\n{correct}/{total} flags recovered across 12 messages, "
        "three branches per single prime/probe episode"
    )


if __name__ == "__main__":
    main()
