#!/usr/bin/env python3
"""Defending against BranchScope (paper §10).

Shows both defense families:

* **software (§10.1)**: rewrite the victim so no branch depends on the
  secret — if-conversion to a constant-time select.  The attack then
  reads pure noise because there is nothing secret in the PHT.
* **hardware (§10.2)**: leave the leaky victim alone and install a
  hardware defense on the core (here: PHT index randomisation, plus the
  protected-branch mechanism).

Run:  python examples/mitigated_victim.py
"""

import numpy as np

from repro import (
    BranchScope,
    NoiseSetting,
    PhysicalCore,
    Process,
    skylake,
)
from repro.core.calibration import CalibrationError
from repro.mitigations import (
    PhtIndexRandomization,
    StaticPredictionForSensitiveBranches,
)
from repro.victims import SecretBitArrayVictim

N_BITS = 200


def run_attack(core, victim_step, branch_address) -> float:
    """Full attack; returns recovered-vs-truth error rate (0.5 = noise)."""
    attack = BranchScope(
        core, Process("spy"), branch_address, setting=NoiseSetting.ISOLATED
    )
    secret = SECRET[:N_BITS]
    try:
        recovered = attack.spy_on_bits(victim_step, N_BITS)
    except CalibrationError:
        return float("nan")
    return float(
        np.mean([int(r) != s for r, s in zip(recovered, secret)])
    )


SECRET = np.random.default_rng(9).integers(0, 2, N_BITS).tolist()


def main() -> None:
    # --- baseline: leaky victim, bare core --------------------------------
    core = PhysicalCore(skylake(), seed=1)
    victim = SecretBitArrayVictim(SECRET)
    error = run_attack(
        core, lambda: victim.execute_next(core), victim.branch_address
    )
    print(f"unprotected victim:             attack error {error:.1%}  (leaks)")

    # --- software fix: if-conversion (§10.1) ------------------------------
    # The branchy victim     : if secret: x = a  else: x = b
    # becomes constant-time  : x = b ^ (-secret & (a ^ b)), plus ONE branch
    # whose direction never depends on the secret (the loop bound).
    core = PhysicalCore(skylake(), seed=1)
    loop_process = Process("ct-victim")
    loop_branch = loop_process.branch_address(0x30_0006D)
    state = {"i": 0, "acc": 0}

    def constant_time_step():
        secret_bit = SECRET[state["i"] % N_BITS]
        state["i"] += 1
        # cmov-style select: data dependency, no control dependency.
        state["acc"] ^= (-secret_bit) & (state["acc"] ^ 0x5A)
        # The only branch is the loop's back-edge: always taken.
        core.execute_branch(loop_process, loop_branch, True)

    error = run_attack(core, constant_time_step, loop_branch)
    print(f"if-converted victim (§10.1):    attack error {error:.1%}  (coin flips)")

    # --- hardware fix 1: PHT index randomisation (§10.2) ------------------
    core = PhysicalCore(skylake(), seed=1)
    core.install_mitigation(PhtIndexRandomization(np.random.default_rng(3)))
    victim = SecretBitArrayVictim(SECRET)
    error = run_attack(
        core, lambda: victim.execute_next(core), victim.branch_address
    )
    shown = "calibration failed" if np.isnan(error) else f"{error:.1%}"
    print(f"PHT index randomisation:        attack error {shown}")

    # --- hardware fix 2: protected sensitive branch (§10.2) ---------------
    core = PhysicalCore(skylake(), seed=1)
    core.install_mitigation(StaticPredictionForSensitiveBranches())
    victim = SecretBitArrayVictim(SECRET)
    victim.process.protect_branch(victim.branch_address)
    error = run_attack(
        core, lambda: victim.execute_next(core), victim.branch_address
    )
    shown = "calibration failed" if np.isnan(error) else f"{error:.1%}"
    print(f"protected sensitive branch:     attack error {shown}")

    print(
        "\n~50% error = the recovered stream is uncorrelated with the "
        "secret: the channel is closed."
    )


if __name__ == "__main__":
    main()
