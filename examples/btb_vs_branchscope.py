#!/usr/bin/env python3
"""Why BranchScope matters: it survives BTB defenses (paper §1, §11).

Prior branch-predictor side channels observed the *branch target buffer*
(evictions and target hits), so they die the moment the OS flushes or
partitions the BTB across security domains.  BranchScope never touches
the BTB — it reads the directional PHT — so the same defense leaves it
untouched.

Run:  python examples/btb_vs_branchscope.py
"""

import numpy as np

from repro import BranchScope, NoiseSetting, PhysicalCore, Process, skylake
from repro.core.btb_attacks import btb_direction_spy, calibrate_btb_threshold
from repro.mitigations import BtbFlushOnContextSwitch
from repro.system.scheduler import AttackScheduler


def measure(defended: bool) -> tuple:
    rng = np.random.default_rng(5)
    address = 0x30_0006D
    n = 40

    # -- the prior-work BTB eviction spy --------------------------------
    core = PhysicalCore(skylake(), seed=10)
    spy, victim = Process("spy"), Process("victim")
    calibration = calibrate_btb_threshold(core, spy, samples=300)
    if defended:
        core.install_mitigation(BtbFlushOnContextSwitch())
    scheduler = AttackScheduler(
        core, NoiseSetting.ISOLATED, victim_jitter=0.0
    )
    btb_correct = 0
    for _ in range(n):
        direction = bool(rng.integers(0, 2))
        inferred = btb_direction_spy(
            core, spy, address,
            lambda: core.execute_branch(victim, address, direction),
            calibration, trials=8, scheduler=scheduler,
        )
        btb_correct += inferred == direction

    # -- BranchScope -----------------------------------------------------
    core = PhysicalCore(skylake(), seed=11)
    spy, victim = Process("spy"), Process("victim")
    if defended:
        core.install_mitigation(BtbFlushOnContextSwitch())
    attack = BranchScope(core, spy, address, setting=NoiseSetting.ISOLATED)
    bs_correct = 0
    for _ in range(n):
        direction = bool(rng.integers(0, 2))
        spied = attack.spy_on_branch(
            lambda: core.execute_branch(victim, address, direction)
        )
        bs_correct += spied.taken == direction

    return btb_correct / n, bs_correct / n


def main() -> None:
    print("direction-recovery accuracy (50% = coin flip)\n")
    print(f"{'':24s}{'BTB eviction spy':>18s}{'BranchScope':>14s}")
    for defended in (False, True):
        btb, branchscope = measure(defended)
        label = "BTB flushed on switch" if defended else "no defense"
        print(f"{label:24s}{btb:>17.0%}{branchscope:>14.0%}")
    print(
        "\nThe BTB defense kills the prior-work attack; BranchScope "
        "doesn't notice (the paper's first contribution claim)."
    )


if __name__ == "__main__":
    main()
