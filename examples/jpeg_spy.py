#!/usr/bin/env python3
"""Recovering image structure from libjpeg's IDCT branches (paper §9.2).

The decoder's inverse DCT skips all-zero coefficient rows; each skip
check is a conditional branch.  By spying on the row-check branch the
attacker reconstructs the per-block sparsity map — a low-resolution
complexity image of the picture being decoded, without ever seeing the
pixels.

Run:  python examples/jpeg_spy.py
"""

import numpy as np

from repro import BranchScope, NoiseSetting, PhysicalCore, Process, skylake
from repro.victims import JpegDecoderVictim, encode_image


def render(matrix: np.ndarray, levels: str = " .:-=+*#%@") -> str:
    lo, hi = matrix.min(), matrix.max()
    span = (hi - lo) or 1
    return "\n".join(
        "".join(
            levels[int((value - lo) / span * (len(levels) - 1))]
            for value in row
        )
        for row in matrix
    )


def main() -> None:
    core = PhysicalCore(skylake(), seed=123)
    rng = np.random.default_rng(5)

    # The "photo" the victim decodes: a bright disc on a flat background.
    y, x = np.mgrid[0:48, 0:64]
    disc = ((x - 40) ** 2 + (y - 22) ** 2) < 180
    pixels = np.where(disc, 210.0, 70.0) + rng.normal(0, 3, (48, 64))
    image = encode_image(np.clip(pixels, 0, 255))
    victim = JpegDecoderVictim(image)
    blocks_y, blocks_x = image.block_grid
    print(
        f"victim decodes a {pixels.shape[1]}x{pixels.shape[0]} image "
        f"({blocks_y}x{blocks_x} blocks, "
        f"{victim.steps_remaining()} zero-check branches)\n"
    )

    attack = BranchScope(
        core,
        Process("spy"),
        victim.row_branch_address,
        setting=NoiseSetting.ISOLATED,
    )

    recovered_rows = []
    while not victim.finished:
        if victim.next_branch_address() == victim.row_branch_address:
            recovered_rows.append(
                attack.spy_on_branch(lambda: victim.step(core)).taken
            )
        else:
            victim.step(core)

    # Non-zero rows per block = the leaked complexity map.
    leaked = (
        np.array(recovered_rows)
        .reshape(blocks_y, blocks_x, 8)
        .sum(axis=2)
    )
    truth = (~image.zero_row_map()).sum(axis=2)

    print("ground-truth block complexity (non-zero IDCT rows per block):")
    print(render(truth))
    print("\nattacker's reconstruction from branch directions alone:")
    print(render(leaked))
    accuracy = (leaked == truth).mean()
    print(f"\nper-block complexity recovered exactly: {accuracy:.1%}")


if __name__ == "__main__":
    main()
