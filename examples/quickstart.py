#!/usr/bin/env python3
"""Quickstart: leak one secret bit through the directional predictor.

The minimal BranchScope loop on a simulated Skylake core:

1. build a shared physical core and two processes (victim + spy),
2. calibrate a randomisation block that primes the victim branch's PHT
   entry into a known strong state (the one-time §6.2 pre-attack step),
3. prime -> trigger the victim -> probe, and decode the branch
   direction from the spy's own misprediction counters.

Run:  python examples/quickstart.py
"""

from repro import BranchScope, NoiseSetting, PhysicalCore, Process, skylake
from repro.victims import SecretBitArrayVictim


def main() -> None:
    # One physical core; victim and spy share its branch predictor (§3).
    core = PhysicalCore(skylake(), seed=2024)
    spy = Process("spy")

    # The victim holds a secret the spy has no right to read (Listing 2).
    secret = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]
    victim = SecretBitArrayVictim(secret)
    print(f"victim branch at {victim.branch_address:#x}; secret hidden\n")

    # Configure the attack on that branch address (known from the
    # victim binary) and run the one-time calibration search.
    attack = BranchScope(
        core, spy, victim.branch_address, setting=NoiseSetting.ISOLATED
    )
    block = attack.calibrate()
    print(
        f"calibrated randomisation block: seed={block.block.seed}, "
        f"{len(block.block):,} branches, pins the target entry\n"
    )

    # Leak the secret one branch direction at a time.
    recovered = attack.spy_on_bits(
        lambda: victim.execute_next(core), len(secret)
    )
    recovered_bits = [int(taken) for taken in recovered]

    print(f"secret    : {secret}")
    print(f"recovered : {recovered_bits}")
    errors = sum(1 for a, b in zip(secret, recovered_bits) if a != b)
    print(f"\n{len(secret) - errors}/{len(secret)} bits correct")


if __name__ == "__main__":
    main()
