#!/usr/bin/env python3
"""BranchScope against an SGX enclave (paper §9, Table 3).

SGX seals the victim's memory away from even the OS — but the branch
predictor stays shared.  Worse for the victim, the SGX threat model
*gives* the attacker the OS: single-instruction scheduling of the
enclave (APIC-timer stepping) and a quiesced machine.  The result is a
cleaner channel than the conventional cross-process attack.

Run:  python examples/sgx_attack.py
"""

import numpy as np

from repro import (
    CovertChannel,
    Enclave,
    MaliciousOS,
    NoiseSetting,
    PhysicalCore,
    Process,
    error_rate,
    skylake,
)


def main() -> None:
    core = PhysicalCore(skylake(), seed=77)
    spy = Process("spy")

    # The sealed secret: 512 bits only the enclave can touch.
    secret = np.random.default_rng(11).integers(0, 2, 512).tolist()
    cursor = {"i": 0}
    enclave_process = Process("sealed-worker")
    channel_seed_config = CovertChannel.for_processes(
        core, enclave_process, spy, setting=NoiseSetting.SILENT
    )
    branch_address = channel_seed_config.branch_address

    def enclave_step(c):
        """One secret-dependent branch inside the enclave."""
        bit = secret[cursor["i"] % len(secret)]
        cursor["i"] += 1
        c.execute_branch(enclave_process, branch_address, bit == 1)

    enclave = Enclave(enclave_process, enclave_step)
    print(f"enclave sealed; secret branch at {branch_address:#x}\n")

    for label, quiesce in (("with noise", False), ("isolated", True)):
        cursor["i"] = 0
        malicious_os = MaliciousOS(core, quiesce=quiesce)
        received = []
        for _ in secret:
            channel_seed_config.block.apply(core, spy)   # stage 1
            malicious_os.stage_gap()
            malicious_os.single_step(enclave)            # stage 2
            malicious_os.stage_gap()
            pattern = channel_seed_config._probe_pattern()  # stage 3
            received.append(channel_seed_config.dictionary[pattern])
        print(
            f"SGX {label:11s}: {error_rate(secret, received):.2%} error "
            f"over {len(secret)} bits "
            f"(paper Table 3: {'0.51%' if quiesce else '0.73%'} random)"
        )

    print(
        "\nNote the inversion: the attacker-controlled OS makes the SGX "
        "channel *cleaner* than the ordinary cross-process one."
    )


if __name__ == "__main__":
    main()
