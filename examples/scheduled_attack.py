#!/usr/bin/env python3
"""The attack as actual scheduled processes (paper §3's threat model).

Everything in this demo — the spy's 100k-branch priming block, its probe
branches, the victim's secret branches — executes through a round-robin
OS scheduler as ordinary process instruction streams.  The attacker's
only scheduling leverage is the Gullasch-style slowdown: the victim's
timeslice is one branch instruction, while the spy's covers a full
prime+probe cycle.

Run:  python examples/scheduled_attack.py
"""

import numpy as np

from repro import PhysicalCore, Process, error_rate, skylake
from repro.core.calibration import find_block
from repro.core.covert import build_dictionary
from repro.core.patterns import DecodedState
from repro.bpu.fsm import State
from repro.cpu.counters import CounterKind
from repro.system.programs import BranchOp, Program, SliceScheduler, Yield

N_BITS = 16  # ~1 minute: every one of the ~1.6M branches is fully simulated
BLOCK_BRANCHES = 100_000


def main() -> None:
    core = PhysicalCore(skylake(), seed=314)
    spy_process = Process("spy")
    victim_process = Process("victim")

    secret = np.random.default_rng(6).integers(0, 2, N_BITS).tolist()
    branch_address = victim_process.branch_address(0x30_0006D)

    # Pre-attack: calibrate the randomisation block (§6.2).  The block's
    # *branches* are later replayed through the scheduler; calibration
    # itself is the attacker's offline homework.
    compiled = find_block(
        core, spy_process, branch_address, DecodedState.SN,
        block_branches=BLOCK_BRANCHES,
    )
    block = compiled.block
    dictionary = build_dictionary(
        core.predictor.bimodal.pht.fsm, State.SN, (True, True)
    )
    print(
        f"calibrated block seed={block.seed}; running spy and victim as "
        "scheduled processes...\n"
    )

    received = []

    def spy_body(program: Program):
        for _ in range(N_BITS):
            # Stage 1: prime by executing the whole block.
            for address, taken in zip(block.addresses, block.outcomes):
                yield BranchOp(int(address), bool(taken))
            # Stage 2: sleep; the scheduler runs the victim (Listing 3's
            # usleep).
            yield Yield()
            # Stage 3: probe with two taken branches, counters around
            # each.
            hits = []
            for outcome in (True, True):
                before = core.read_counter(
                    spy_process, CounterKind.BRANCH_MISSES
                )
                yield BranchOp(branch_address, outcome)
                after = core.read_counter(
                    spy_process, CounterKind.BRANCH_MISSES
                )
                hits.append(after - before <= 0)
            pattern = ("H" if hits[0] else "M") + ("H" if hits[1] else "M")
            received.append(dictionary[pattern])

    def victim_body(program: Program):
        for bit in secret:
            yield BranchOp(branch_address, bit == 1)

    spy = Program(spy_process, spy_body)
    victim = Program(victim_process, victim_body)
    scheduler = SliceScheduler(
        core,
        [spy, victim],
        slices={spy: BLOCK_BRANCHES + 10, victim: 1},
    )
    rounds = scheduler.run()

    print(f"scheduler rounds          : {rounds}")
    print(f"branches executed by spy  : {len(spy.executions):,}")
    print(f"branches executed by victim: {len(victim.executions)}")
    print(f"\nsecret    : {''.join(map(str, secret))}")
    print(f"recovered : {''.join(map(str, received))}")
    print(f"error rate: {error_rate(secret, received):.1%}")


if __name__ == "__main__":
    main()
