#!/usr/bin/env python3
"""Derandomising ASLR with directional-predictor collisions (paper §9.2).

The attacker knows the victim binary (and so the link-time offset of
some frequently executed branch) but not where ASLR loaded it.  PHT
collisions answer that: prime a candidate address, trigger the victim,
probe — a state change means the victim's branch shares the candidate's
PHT entry, i.e. the addresses are congruent modulo the table size.
That recovers log2(16384) - log2(alignment) bits of the load base.

Run:  python examples/aslr_bypass.py
"""

import numpy as np

from repro import NoiseSetting, PhysicalCore, Process, skylake
from repro.core.aslr_attack import recover_load_base
from repro.system import AslrConfig, AttackScheduler


def main() -> None:
    core = PhysicalCore(skylake(), seed=31337)
    rng = np.random.default_rng(2)
    spy = Process("spy")

    # Fine-grained ASLR: 1024 possible load slots at 16-byte alignment.
    aslr = AslrConfig(entropy_bits=10, alignment=16)
    victim = aslr.randomized_process("victim", rng, link_base=0)
    branch_offset = 0x7C2  # known from the victim binary
    true_address = victim.branch_address(branch_offset)
    print(
        f"ASLR: {aslr.slots} slots x {aslr.alignment}-byte alignment; "
        "victim load base hidden\n"
    )

    counter = {"n": 0}

    def trigger():
        """Make the victim run its hot branch once (e.g. send a request)."""
        counter["n"] += 1
        core.execute_branch(victim, true_address, counter["n"] % 3 != 0)

    candidates = [slot * aslr.alignment for slot in range(aslr.slots)]
    scores = recover_load_base(
        core,
        spy,
        branch_offset,
        trigger,
        candidates,
        trials=8,
        scheduler=AttackScheduler(core, NoiseSetting.ISOLATED),
    )

    pht = core.predictor.bimodal.pht.n_entries
    print("top collision candidates (score = state-change rate):")
    for score in scores[:5]:
        marker = (
            "  <- victim's congruence class"
            if score.candidate_address % pht == true_address % pht
            else ""
        )
        print(
            f"  address {score.candidate_address:#08x}  "
            f"score {score.score:.2f}{marker}"
        )

    best = scores[0]
    hit = best.candidate_address % pht == true_address % pht
    remaining = aslr.slots // (pht // aslr.alignment)
    print(
        f"\ncollision class {'FOUND' if hit else 'missed'}: "
        f"entropy reduced from {aslr.slots} candidate bases to "
        f"{max(1, remaining)}"
    )


if __name__ == "__main__":
    main()
