#!/usr/bin/env python3
"""Cracking a PIN through an early-exit comparison (classic branchy leak).

A verification service compares the submitted PIN against the stored one
digit by digit and bails out at the first mismatch.  Timing attacks read
how *long* the check took; BranchScope reads the *direction of each
comparison branch*, so each position falls to at most 10 guesses —
8 digits in ≤80 verification attempts instead of 10^8.

Run:  python examples/pin_crack.py
"""

from repro import BranchScope, NoiseSetting, PhysicalCore, Process, skylake
from repro.victims import EarlyExitComparatorVictim, crack_secret


def main() -> None:
    core = PhysicalCore(skylake(), seed=4242)

    stored_pin = [7, 3, 9, 0, 2, 5, 8, 1]
    victim = EarlyExitComparatorVictim(stored_pin)
    print(
        f"victim: {len(stored_pin)}-digit PIN check with early exit, "
        f"comparison branch at {victim.branch_address:#x}"
    )
    print(f"brute-force space: 10^{len(stored_pin)} attempts\n")

    attack = BranchScope(
        core,
        Process("spy"),
        victim.branch_address,
        setting=NoiseSetting.ISOLATED,
    )

    recovered = crack_secret(attack, victim, core, alphabet=list(range(10)))

    print(f"stored PIN : {''.join(map(str, stored_pin))}")
    print(f"recovered  : {''.join(map(str, recovered))}")
    # Confirm through the front door.
    victim.submit_guess(recovered)
    while not victim.check_finished:
        victim.step(core)
    print(
        f"\nverification with recovered PIN: "
        f"{'ACCEPTED' if victim.last_result else 'rejected'} "
        f"(<= {10 * len(stored_pin)} guesses used)"
    )


if __name__ == "__main__":
    main()
