#!/usr/bin/env python3
"""Stealing a private exponent from the Montgomery ladder (paper §9.2).

The Montgomery powering ladder performs identical arithmetic for 0-bits
and 1-bits — constant time, constant power — but its loop branches on
the key bit, and the direction predictor remembers.  The spy triggers
the victim's decryption one ladder step at a time (victim-slowdown
assumption) and reads each key bit out of the shared PHT entry.

Run:  python examples/montgomery_spy.py
"""

from repro import BranchScope, NoiseSetting, PhysicalCore, Process, skylake
from repro.victims import MontgomeryLadderVictim, ladder_scalar_mult, TinyCurve


def main() -> None:
    core = PhysicalCore(skylake(), seed=99)
    spy = Process("spy")

    secret_key = 0xC0FFEE_5EC12E7  # the victim's private exponent
    victim = MontgomeryLadderVictim(secret_key)
    print(
        f"victim: RSA-style modexp, {victim.n_bits}-bit private exponent, "
        f"ladder branch at {victim.branch_address:#x}\n"
    )

    attack = BranchScope(
        core, spy, victim.branch_address, setting=NoiseSetting.ISOLATED
    )
    bits = attack.spy_on_bits(lambda: victim.step(core), victim.n_bits)

    recovered = 0
    for bit in bits:
        recovered = (recovered << 1) | int(bit)

    print(f"secret key : {secret_key:#x}")
    print(f"recovered  : {recovered:#x}")
    matching = sum(
        (recovered >> i) & 1 == (secret_key >> i) & 1
        for i in range(victim.n_bits)
    )
    print(f"{matching}/{victim.n_bits} key bits correct\n")

    # The victim's decryption itself completed normally — nothing
    # architectural happened to it.
    assert victim.result == pow(victim.base, secret_key, victim.modulus)
    print("victim's modexp result unaffected (attack is purely observational)")

    # The same ladder drives ECC scalar multiplication; the same branch
    # leaks the scalar (Yarom et al. recovered ECDSA nonces this way).
    curve = TinyCurve()
    point = ladder_scalar_mult(curve, secret_key, curve.base_point())
    print(f"ECC: k·P for the stolen k validates on-curve: {curve.is_on_curve(point)}")


if __name__ == "__main__":
    main()
