#!/usr/bin/env python3
"""Covert channel across hyperthreads (paper §1's SMT claim).

The sender never gets descheduled: it free-runs on the sibling hardware
thread, its branch executions interleaving with the spy's prime/probe
instructions at fine grain.  The channel survives because the SN/TT
working point is absorbing under repeated sender executions and the spy
majority-votes a few samples per bit.

Run:  python examples/hyperthread_covert.py
"""

import numpy as np

from repro import PhysicalCore, Process, error_rate, skylake
from repro.core.covert_smt import SMTConfig, SMTCovertChannel


def main() -> None:
    core = PhysicalCore(skylake(), seed=3131)
    message = "SMT works"
    bits = [
        (byte >> bit) & 1
        for byte in message.encode()
        for bit in range(7, -1, -1)
    ]
    print(f'sending "{message}" ({len(bits)} bits) across hyperthreads\n')

    for rate in (0.3, 1.0, 2.5):
        channel = SMTCovertChannel.establish(
            core,
            Process("sender-ht1"),
            Process("spy-ht0"),
            config=SMTConfig(victim_rate=rate, samples_per_bit=5),
        )
        received = channel.transmit(bits)
        data = bytearray()
        for i in range(0, len(received), 8):
            byte = 0
            for bit in received[i : i + 8]:
                byte = (byte << 1) | bit
            data.append(byte)
        print(
            f"sender rate {rate:>3.1f} ops/slot -> "
            f'"{data.decode(errors="replace")}" '
            f"(error {error_rate(bits, received):.1%})"
        )

    print(
        "\nNo context switches needed: prior BTB attacks leaked only "
        "between processes on the same *virtual* core (paper §1)."
    )


if __name__ == "__main__":
    main()
