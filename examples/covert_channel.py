#!/usr/bin/env python3
"""Covert channel between two processes (paper §7, Tables 2-3 workload).

A trojan process transmits a message to a spy process through the shared
directional predictor — no memory, files, or sockets involved.  Shows
the per-CPU, per-noise-setting error rates of Table 2 in miniature.

Run:  python examples/covert_channel.py
"""

import numpy as np

from repro import (
    CovertChannel,
    NoiseSetting,
    PhysicalCore,
    Process,
    error_rate,
    haswell,
    sandy_bridge,
    skylake,
)

MESSAGE = "BranchScope!"


def to_bits(text: str) -> list:
    return [
        (byte >> bit) & 1 for byte in text.encode() for bit in range(7, -1, -1)
    ]


def from_bits(bits: list) -> str:
    data = bytearray()
    for i in range(0, len(bits) - 7, 8):
        byte = 0
        for bit in bits[i : i + 8]:
            byte = (byte << 1) | bit
        data.append(byte)
    return data.decode(errors="replace")


def main() -> None:
    bits = to_bits(MESSAGE)
    print(f'message: "{MESSAGE}" ({len(bits)} bits)\n')

    for label, preset in (
        ("Skylake", skylake),
        ("Haswell", haswell),
        ("Sandy Bridge", sandy_bridge),
    ):
        for setting in (NoiseSetting.ISOLATED, NoiseSetting.NOISY):
            core = PhysicalCore(preset(), seed=7)
            channel = CovertChannel.for_processes(
                core, Process("trojan"), Process("spy"), setting=setting
            )
            received = channel.transmit(bits)
            print(
                f"{label:13s} {setting.value:11s} "
                f'-> "{from_bits(received)}"  '
                f"(error rate {error_rate(bits, received):.1%})"
            )

    # Longer payload on one configuration to estimate the channel quality
    # the way Table 2 does.
    core = PhysicalCore(skylake(), seed=8)
    channel = CovertChannel.for_processes(
        core, Process("trojan"), Process("spy"),
        setting=NoiseSetting.ISOLATED,
    )
    payload = np.random.default_rng(0).integers(0, 2, 2000).tolist()
    received = channel.transmit(payload)
    print(
        f"\nSkylake isolated, 2000 random bits: "
        f"error rate {error_rate(payload, received):.2%} "
        "(paper Table 2: 0.63%)"
    )


if __name__ == "__main__":
    main()
