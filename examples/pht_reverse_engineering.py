#!/usr/bin/env python3
"""Reverse engineering the PHT from user space (paper §6.3, Figure 5).

Using nothing but its own branches and misprediction counters, the
attacker maps the states of PHT entries across an address range,
observes that the pattern repeats, and recovers the table size by
minimising the Hamming-distance ratio over window sizes (Equations 1-4).
On the paper's machine — and on this model — the answer is 16 384
byte-granular entries.

Run:  python examples/pht_reverse_engineering.py
"""

import numpy as np

from repro import PhysicalCore, Process, RandomizationBlock, haswell
from repro.core.pht_map import (
    estimate_pht_size,
    hamming_ratio_curve,
    scan_states,
)


def main() -> None:
    core = PhysicalCore(haswell(), seed=55)
    spy = Process("mapper")

    block = RandomizationBlock.generate(11, n_branches=100_000)
    compiled = block.compile(core, spy)

    base = 0x300000
    scan_length = 1 << 15
    print(f"scanning PHT states behind {scan_length} addresses at {base:#x}...")
    states = scan_states(
        core, spy, list(range(base, base + scan_length)), compiled
    )

    strip = "".join(
        "D" if s.value == "dirty" else s.value[0] for s in states[:128]
    )
    print("\nfirst 128 addresses (S=strong-prefix, W=weak-prefix, U=unknown):")
    print(strip[:64])
    print(strip[64:])

    windows = [1 << k for k in range(10, 16)] + [16_300, 16_380]
    curve = hamming_ratio_curve(states, windows, rng=np.random.default_rng(0))
    print("\nHamming ratio by window size (Figure 5b):")
    for window, ratio in sorted(curve.items()):
        bar = "#" * int(ratio * 60)
        print(f"  w={window:6d}  {ratio:.4f}  {bar}")

    estimate = estimate_pht_size(
        states, windows=windows, rng=np.random.default_rng(0)
    )
    print(
        f"\nrecovered PHT size: {estimate} entries "
        f"(simulated hardware truth: {core.predictor.bimodal.pht.n_entries})"
    )


if __name__ == "__main__":
    main()
