#!/usr/bin/env python3
"""Branch poisoning: writing predictions into the victim (paper §1).

BranchScope's collision machinery, pointed the other way: instead of
reading the victim's branch direction, the attacker *sets* the shared
PHT entry against the victim's actual direction, forcing a misprediction
on every victim execution.  In a Spectre-v1 exploit each forced
misprediction is the speculative window over a bounds check.

Run:  python examples/branch_poisoning.py
"""

from repro import PhysicalCore, Process, skylake
from repro.core.poisoning import poisoning_experiment
from repro.system.scheduler import AttackScheduler, NoiseSetting


def main() -> None:
    core = PhysicalCore(skylake(), seed=1717)
    attacker = Process("attacker")
    victim = Process("victim")
    bounds_check = 0x40_1A30  # victim's `if (x < array_len)` branch

    print(
        "victim: a bounds check that always passes (always-taken branch) "
        f"at {bounds_check:#x}\n"
    )
    result = poisoning_experiment(
        core,
        attacker,
        victim,
        bounds_check,
        victim_direction=True,
        rounds=500,
        scheduler=AttackScheduler(core, NoiseSetting.ISOLATED),
    )
    print(
        f"victim misprediction rate, undisturbed : "
        f"{result.baseline_misprediction_rate:.1%}"
    )
    print(
        f"victim misprediction rate, poisoned    : "
        f"{result.poisoned_misprediction_rate:.1%}"
    )
    print(
        "\nEvery poisoned execution speculates down the attacker-chosen "
        "path before resolving — the branch-poisoning primitive Spectre "
        "builds on (paper §1)."
    )


if __name__ == "__main__":
    main()
