"""Ablation A9: counter-based vs timing-based probe measurement (§8).

The paper's main evaluation reads probes through the branch-misprediction
performance counter (§7) but argues §8 that ``rdtscp`` timing suffices
when counters need privilege.  This ablation runs the same covert
channel with both measurement channels and quantifies the cost of going
timer-only: single-measurement timing classification carries ~10-20%
per-probe error (Figure 8's operating point), which the dictionary's
second-probe redundancy only partly absorbs.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.core.timing_detect import calibrate_timing
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting

N_BITS = scaled(1200)


def run_channel(measurement: str, repeats: int = 1) -> float:
    """Covert error with the given probe channel.

    ``repeats > 1`` re-transmits the payload and majority-votes each bit
    — the §8 prescription of averaging multiple measurements, applied at
    the protocol level (a probe is destructive, so averaging means
    repeating whole prime/target/probe rounds).
    """
    core = PhysicalCore(skylake(), seed=70)
    spy = Process("spy")
    calibration = (
        calibrate_timing(core, spy, n=2000) if measurement == "timing" else None
    )
    channel = CovertChannel.for_processes(
        core,
        Process("victim"),
        spy,
        setting=NoiseSetting.ISOLATED,
        config=CovertConfig(measurement=measurement),
        timing_calibration=calibration,
    )
    bits = np.random.default_rng(71).integers(0, 2, N_BITS).tolist()
    rounds = [channel.transmit(bits) for _ in range(repeats)]
    received = [
        int(sum(round_[i] for round_ in rounds) * 2 > repeats)
        for i in range(N_BITS)
    ]
    return error_rate(bits, received)


def run_experiment():
    return {
        "performance counters (§7)": run_channel("counters"),
        "rdtscp timing, 1 round (§8)": run_channel("timing"),
        "rdtscp timing, 5-round vote (§8)": run_channel("timing", repeats=5),
    }


def test_measurement_channels(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    emit(
        "ablation_measurement_channel",
        format_table(
            ["probe measurement", "covert error rate"],
            [[label, f"{err:.2%}"] for label, err in results.items()],
            title=(
                f"Ablation A9 — measurement channel comparison "
                f"({N_BITS} bits, Skylake isolated)"
            ),
        ),
    )

    counters = results["performance counters (§7)"]
    timing_single = results["rdtscp timing, 1 round (§8)"]
    timing_voted = results["rdtscp timing, 5-round vote (§8)"]
    # Counters are the precision instrument...
    assert counters < 0.02
    # ...single-round timing works but pays Figure 8's measurement noise...
    assert counters <= timing_single < 0.30
    # ...and repeating measurements recovers most of it (§8's remedy).
    assert timing_voted < timing_single / 2
