"""Ablation A1: effectiveness of each §10.2 hardware defense.

For every mitigation, run the full BranchScope attack (calibration
included) against a secret-bit-array victim and report the recovered-bit
error rate.  A defense "works" when recovery degrades toward coin
flipping (~50%) or calibration becomes impossible; the unprotected
baseline must stay near 0%.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.attack import BranchScope
from repro.core.calibration import CalibrationError
from repro.core.covert import error_rate
from repro.cpu import PhysicalCore, Process
from repro.mitigations import (
    BpuPartitioning,
    NoisyPerformanceCounters,
    PhtIndexRandomization,
    StaticPredictionForSensitiveBranches,
    StochasticFSM,
)
from repro.system.scheduler import NoiseSetting
from repro.victims import SecretBitArrayVictim

N_BITS = scaled(400)


def attack_once(mitigation_factory, protect_victim_branch=False):
    core = PhysicalCore(skylake(), seed=30)
    if mitigation_factory is not None:
        core.install_mitigation(mitigation_factory(core))
    secret = np.random.default_rng(31).integers(0, 2, N_BITS).tolist()
    victim = SecretBitArrayVictim(secret)
    if protect_victim_branch:
        victim.process.protect_branch(victim.branch_address)
    attack = BranchScope(
        core,
        Process("spy"),
        victim.branch_address,
        setting=NoiseSetting.ISOLATED,
    )
    try:
        recovered = attack.spy_on_bits(
            lambda: victim.execute_next(core), N_BITS
        )
    except CalibrationError:
        return None  # defense defeated the pre-attack stage
    return error_rate(
        [int(b) for b in victim.reveal_secret()],
        [int(b) for b in recovered],
    )


CASES = [
    ("no mitigation (baseline)", None, False),
    (
        "PHT index randomization",
        lambda core: PhtIndexRandomization(np.random.default_rng(1)),
        False,
    ),
    (
        "BPU partitioning (8 ways)",
        lambda core: BpuPartitioning.by_process(
            core.predictor.bimodal.pht.n_entries, n_partitions=8
        ),
        False,
    ),
    (
        "static prediction (protected branch)",
        lambda core: StaticPredictionForSensitiveBranches(),
        True,
    ),
    (
        "noisy counters (±2)",
        lambda core: NoisyPerformanceCounters(magnitude=2),
        False,
    ),
    (
        "stochastic FSM (p=0.3)",
        lambda core: StochasticFSM(flip_prob=0.3),
        False,
    ),
]


def run_experiment():
    return {
        label: attack_once(factory, protect)
        for label, factory, protect in CASES
    }


def test_ablation_mitigations(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for label, _, _ in CASES:
        result = results[label]
        rows.append(
            [
                label,
                "calibration impossible"
                if result is None
                else f"{result:.1%}",
            ]
        )
    emit(
        "ablation_mitigations",
        format_table(
            ["defense", "attack bit-error rate"],
            rows,
            title=(
                f"Ablation A1 — full-attack error rate per §10.2 defense "
                f"({N_BITS} secret bits; ~50% = channel destroyed)"
            ),
        ),
    )

    baseline = results["no mitigation (baseline)"]
    assert baseline is not None and baseline < 0.02
    for label, _, _ in CASES[1:]:
        result = results[label]
        # Every defense either kills calibration or lifts the error rate
        # by an order of magnitude over the baseline.
        assert result is None or result > max(10 * baseline, 0.05), label
