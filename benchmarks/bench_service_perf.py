"""Perf smoke check: cold vs warm campaign service over the content store.

The sharded campaign service persists every shard aggregate (and every
compiled block / manycore summary) in the content-addressed
``repro.store``.  A *warm* submission of the same science — by the same
tenant or any other — must therefore be served from the store without
dispatching a single trial.  This bench times the same campaign twice
over one fresh store:

* **cold** — empty store: every shard misses, runs its trials, and is
  published;
* **warm** — identical spec resubmitted: every shard hits.

Digests are compared before any timing is trusted (the cache must be an
optimisation, not an answer-changer), and the store's traffic counters
are recorded in the run manifest, so a committed result shows exactly
how it was served.  Gate: warm must be ``--min-speedup`` times faster
than cold (CI passes a lower floor to absorb shared-runner noise).

Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_service_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_perf.py
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import CampaignSpec, run_campaign  # noqa: E402
from repro.store import ContentStore  # noqa: E402

#: Acceptance target: warm (store-served) campaign >= 3x faster than the
#: cold run (CI floor 2x).  In practice the gap is 1-2 orders of
#: magnitude — warm cost is four store reads — but the smoke campaign is
#: small enough that fixed overheads keep the measured ratio modest.
TARGET_SPEEDUP = 3.0

SPEC = CampaignSpec(
    name="bench",
    n_blocks=48,
    block_branches=2_000,
    repetitions=40,
    shards=4,
)
BEST_OF = 3


def measure(best_of: int = BEST_OF) -> dict:
    """Time cold vs warm service runs over fresh stores.

    Each round uses its own empty store (a cold run is only cold once),
    immediately followed by its warm rerun — interleaving keeps machine
    noise symmetric.  Best-of-N on both sides.
    """
    cold_times, warm_times = [], []
    stats = {}
    for _ in range(best_of):
        with tempfile.TemporaryDirectory() as tmp:
            store = ContentStore(Path(tmp) / "store")
            start = time.perf_counter()
            cold = run_campaign(SPEC, store=store)
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            warm = run_campaign(SPEC, store=store)
            warm_times.append(time.perf_counter() - start)
            if warm.digest() != cold.digest():
                raise AssertionError(
                    "store-served campaign disagrees with the cold run — "
                    "do not trust timings"
                )
            stats = store.stats_dict()
    return {
        "n_blocks": SPEC.n_blocks,
        "shards": SPEC.shards,
        "cold_seconds": min(cold_times),
        "warm_seconds": min(warm_times),
        "speedup": min(cold_times) / min(warm_times),
        "store_stats": stats,
    }


def _report(result: dict) -> str:
    stats = result["store_stats"]
    return "\n".join(
        [
            f"campaign service, {result['n_blocks']} blocks x "
            f"{SPEC.repetitions} probes in {result['shards']} shards, "
            f"best of {BEST_OF} interleaved",
            f"  cold (empty store):   {result['cold_seconds']:.3f}s",
            f"  warm (store-served):  {result['warm_seconds']:.3f}s",
            f"  warm speedup:         {result['speedup']:.1f}x "
            f"(target >= {TARGET_SPEEDUP:.0f}x)",
            f"  store traffic:        {stats['memory_hits']} memory hits, "
            f"{stats['disk_hits']} disk hits, {stats['misses']} misses, "
            f"{stats['puts']} puts",
        ]
    )


def test_service_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit(
        "service_perf",
        _report(result),
        extra={"store_stats": result["store_stats"]},
    )
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if the warm (store-served) run is not this many times "
        "faster than the cold run (CI passes 2 to catch gross "
        "regressions only)",
    )
    args = parser.parse_args(argv)
    result = measure()
    print(_report(result))
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: warm speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
