"""Ablation A3: predictor table size vs covert-channel error rate.

Paper §7 attributes Sandy Bridge's worse Table 2 numbers to "a larger
size of the predictor tables in the improved branch predictor design"
of Skylake/Haswell.  This ablation isolates that variable: one
microarchitecture, fixed noise, swept PHT size.  Smaller tables mean
foreign noise branches alias the target entry more often, so the error
rate should fall as the table grows.
"""

from dataclasses import replace

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import haswell
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting

PHT_SIZES = [2048, 4096, 8192, 16384, 32768]
N_BITS = scaled(1500)


def run_experiment():
    results = {}
    for size in PHT_SIZES:
        config = replace(
            haswell(),
            name=f"haswell-pht{size}",
            bimodal_entries=size,
            gshare_entries=size,
        )
        core = PhysicalCore(config, seed=35)
        channel = CovertChannel.for_processes(
            core,
            Process("victim"),
            Process("spy"),
            setting=NoiseSetting.NOISY,
            config=CovertConfig(),
        )
        bits = np.random.default_rng(36).integers(0, 2, N_BITS).tolist()
        received = channel.transmit(bits)
        results[size] = error_rate(bits, received)
    return results


def test_ablation_predictor_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    emit(
        "ablation_predictor_size",
        format_table(
            ["PHT entries", "error rate (noisy setting)"],
            [[size, f"{results[size]:.2%}"] for size in PHT_SIZES],
            title=(
                "Ablation A3 — covert error vs directional-PHT size "
                "(explains Sandy Bridge's worse Table 2 rows)"
            ),
        ),
    )

    # Small tables are clearly worse than large ones under equal noise.
    assert results[2048] > results[16384]
    assert results[4096] > results[32768]
    # The trend is broadly monotone (adjacent-pair slack for noise).
    rates = [results[s] for s in PHT_SIZES]
    assert all(b <= a + 0.01 for a, b in zip(rates, rates[1:]))
