"""Benchmark-harness plumbing.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index): it runs the experiment inside the
pytest-benchmark timer, renders the paper-shaped table/series with
:func:`repro.analysis.format_table`, asserts the reproduction target
(orderings/crossovers, not absolute numbers), and *emits* the rendered
text.  Emitted tables are written to ``benchmarks/results/<name>.txt``
and echoed in the terminal summary so a plain
``pytest benchmarks/ --benchmark-only`` run shows every regenerated
result.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to scale experiment sizes up or
down, e.g. ``REPRO_BENCH_SCALE=5 pytest benchmarks/`` for a
closer-to-paper run.

Every emitted result also gets a ``results/<name>.manifest.json``
provenance record (see ``benchmarks/_common.py``).

Long runs are crash-safe: each campaign-shaped bench checkpoints its
progress under ``benchmarks/.checkpoints/`` (atomic, digest-verified —
see :mod:`repro.resilience.checkpoint`), and re-running with
``pytest benchmarks/ --resume`` picks up a killed run where it stopped,
producing bit-identical results.  Without ``--resume`` any stale
checkpoints are cleared first, so default runs stay fresh.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import List, Tuple

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _common import RESULTS_DIR, write_result  # noqa: E402

from repro.resilience.checkpoint import CheckpointStore  # noqa: E402

_EMITTED: List[Tuple[str, str]] = []

#: Where campaign-shaped benches keep their crash-safe progress.
CHECKPOINTS_DIR = Path(__file__).parent / ".checkpoints"


def pytest_addoption(parser):
    parser.addoption(
        "--resume",
        action="store_true",
        default=False,
        help=(
            "resume interrupted benchmark campaigns from "
            "benchmarks/.checkpoints (results are bit-identical to an "
            "uninterrupted run)"
        ),
    )


@pytest.fixture
def campaign_checkpoint(request):
    """Checkpoint kwargs for a campaign-shaped bench.

    Returns a ``factory(name) -> {"checkpoint": ..., "resume": ...}``
    dict ready to splat into :func:`stability_experiment` /
    :meth:`CovertChannel.trial_sweep` /
    :class:`~repro.resilience.ResumableCampaign`.  Checkpoints are
    always written (so *any* run can be killed and later resumed);
    ``--resume`` decides whether pre-existing progress is honoured or
    cleared.
    """
    resume = request.config.getoption("--resume")

    def factory(name: str) -> dict:
        CHECKPOINTS_DIR.mkdir(exist_ok=True)
        store = CheckpointStore(CHECKPOINTS_DIR / f"{name}.ckpt")
        return {"checkpoint": store, "resume": resume}

    return factory

#: Global size multiplier for experiment workloads.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    """Apply the REPRO_BENCH_SCALE multiplier to a workload size."""
    return max(minimum, int(n * SCALE))


def emit(name: str, text: str, extra: dict = None) -> None:
    """Record a regenerated table/figure for the terminal summary.

    Writes the rendered text to ``results/<name>.txt`` with a run
    manifest beside it; ``extra`` keys land in the manifest (e.g. the
    service bench records its content-store traffic stats).
    """
    write_result(name, text, extra=extra)
    _EMITTED.append((name, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.section("regenerated paper tables & figures")
    for name, text in _EMITTED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"── {name} " + "─" * max(1, 66 - len(name)))
        for line in text.splitlines():
            terminalreporter.write_line(line)
