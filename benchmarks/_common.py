"""Shared benchmark-harness helpers: result emission with provenance.

Every emitted table/figure gets a ``results/<name>.manifest.json``
written beside it by :func:`write_result` — a
:class:`repro.obs.manifest.RunManifest` recording the env knobs
(``REPRO_BENCH_SCALE``, ``REPRO_TRIAL_WORKERS``), the active
fold-kernel backend and its dispatch counts, the manycore pool's
group-batching stats, the git revision, the interpreter/numpy versions
and a SHA-256 digest of the result text, so a committed number can
always be traced back to the configuration that produced it.

Run ``PYTHONPATH=src python benchmarks/_common.py`` to *backfill*
manifests for already-committed result files that predate this harness
(their manifests carry ``source: "backfill"`` — digest and code version
are current, per-run seeds and wall time are unknown).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro import kernels
from repro.core.manycore import group_batch_stats
from repro.ioutil import atomic_write_text
from repro.obs import RunManifest

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(
    name: str,
    text: str,
    *,
    duration_seconds: Optional[float] = None,
    results_dir: Optional[Path] = None,
    extra: Optional[dict] = None,
) -> Path:
    """Write ``results/<name>.txt`` plus its run manifest; returns the path.

    Both the result text and the manifest land atomically (temp + fsync
    + rename) so a bench killed mid-emission — the whole point of the
    resilience layer's ``--resume`` — can never leave a torn result file
    that a later resumed run would silently trust.
    """
    results_dir = results_dir or RESULTS_DIR
    results_dir.mkdir(exist_ok=True)
    path = results_dir / f"{name}.txt"
    body = text + "\n"
    atomic_write_text(path, body)
    manifest_extra = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        # Which fold-kernel backend produced these numbers, plus how
        # the manycore pool dispatched its payloads — a committed
        # result is attributable to its execution path, not just its
        # env knobs.
        "kernels": {
            "backend": kernels.active_backend(),
            "dispatch_counts": kernels.kernel_dispatch_counts(),
        },
        "group_batching": group_batch_stats(),
    }
    if extra:
        manifest_extra.update(extra)
    manifest = RunManifest.capture(
        name,
        duration_seconds=duration_seconds,
        extra=manifest_extra,
    )
    manifest.add_result(path.name, body)
    manifest.write(results_dir / f"{name}.manifest.json")
    return path


def backfill_manifests(results_dir: Optional[Path] = None) -> int:
    """Write ``source="backfill"`` manifests for committed result files.

    Only fills gaps — result files that already have a manifest are left
    alone.  Returns the number of manifests written.
    """
    results_dir = results_dir or RESULTS_DIR
    written = 0
    for result in sorted(results_dir.glob("*.txt")):
        manifest_path = results_dir / f"{result.stem}.manifest.json"
        if manifest_path.exists():
            continue
        manifest = RunManifest.capture(result.stem, source="backfill")
        manifest.add_result(result.name, result.read_text())
        manifest.write(manifest_path)
        written += 1
    return written


if __name__ == "__main__":
    count = backfill_manifests()
    print(f"backfilled {count} manifest(s) into {RESULTS_DIR}")
