"""Table 3: covert channel with the trojan inside an SGX enclave.

Paper result (Skylake): with the spy assisted by the attacker-controlled
OS, error rates *improve* on the conventional setting — 0.003-0.51%
when the OS quiesces the machine, 0.008-0.73% with noise left running —
because the malicious OS schedules the enclave with single-step
precision and can silence competing work.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import binomial_confidence_interval, format_table
from repro.bpu import skylake
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.cpu import PhysicalCore, Process
from repro.parallel import TrialPool
from repro.resilience.checkpoint import ResumableCampaign
from repro.system import Enclave, MaliciousOS
from repro.system.scheduler import NoiseSetting

N_BITS = scaled(2500)
PAYLOADS = ["all 0", "all 1", "random"]

PAPER = {
    "SGX with noise": (0.008, 0.53, 0.73),
    "SGX isolated": (0.003, 0.153, 0.51),
}


def payload_bits(kind: str, rng) -> list:
    if kind == "all 0":
        return [0] * N_BITS
    if kind == "all 1":
        return [1] * N_BITS
    return rng.integers(0, 2, N_BITS).tolist()


def transmit_via_enclave(quiesce: bool, bits):
    core = PhysicalCore(skylake(), seed=24)
    config = CovertConfig()
    spy = Process("spy")
    trojan_process = Process("trojan")
    address = trojan_process.branch_address(config.branch_link_address)

    state = {"bits": bits, "i": 0}

    def step_fn(c):
        bit = state["bits"][state["i"]]
        state["i"] += 1
        c.execute_branch(trojan_process, address, bit == 1)

    enclave = Enclave(trojan_process, step_fn)
    osctl = MaliciousOS(core, quiesce=quiesce)

    channel = CovertChannel.for_processes(
        core, trojan_process, spy,
        setting=NoiseSetting.SILENT, config=config,
    )
    received = []
    for _ in bits:
        channel.block.apply(core, spy)  # stage 1
        osctl.stage_gap()
        osctl.single_step(enclave)  # stage 2, APIC-precise
        osctl.stage_gap()
        received.append(channel.dictionary[channel._probe_pattern()])
    return received


def run_experiment(checkpoint=None, resume=True):
    rng = np.random.default_rng(25)
    # Cells are fully independent (each builds its own seeded core), so
    # they fan across a TrialPool (honours REPRO_TRIAL_WORKERS) with
    # results identical at any worker count.
    cells = [
        (label, quiesce, payload, payload_bits(payload, rng))
        for label, quiesce in (
            ("SGX with noise", False),
            ("SGX isolated", True),
        )
        for payload in PAYLOADS
    ]

    def cell_trial(index):
        _, quiesce, _, bits = cells[index]
        received = transmit_via_enclave(quiesce, bits)
        return sum(1 for a, b in zip(bits, received) if a != b)

    pool = TrialPool()
    indices = range(len(cells))
    if checkpoint is None:
        errors = pool.map(cell_trial, indices)
    else:
        # Cell trials are index-pure, so a killed run resumes losing at
        # most the cells no checkpoint covers (one per batch here).
        campaign = ResumableCampaign(
            checkpoint,
            fingerprint={
                "experiment": "table3_sgx",
                "n_bits": N_BITS,
                "payloads": PAYLOADS,
            },
            interval=1,
            resume=resume,
        )
        errors = campaign.map(pool, cell_trial, indices)
    return {
        (label, payload): (n_errors, len(bits))
        for (label, _, payload, bits), n_errors in zip(cells, errors)
    }


def test_table3_sgx_covert(benchmark, campaign_checkpoint):
    results = benchmark.pedantic(
        run_experiment,
        kwargs=campaign_checkpoint("table3_sgx"),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label in ("SGX with noise", "SGX isolated"):
        row = [label]
        for payload, paper_value in zip(PAYLOADS, PAPER[label]):
            errors, total = results[(label, payload)]
            low, high = binomial_confidence_interval(errors, total)
            row.append(
                f"{errors / total:.3%} [{low:.2%},{high:.2%}] "
                f"(paper {paper_value}%)"
            )
        rows.append(row)
    emit(
        "table3_sgx_covert",
        format_table(
            ["setting", *PAYLOADS],
            rows,
            title=(
                f"Table 3 — SGX covert channel error rate, Skylake "
                f"({N_BITS} bits per cell; paper used 1M)"
            ),
        ),
    )

    def rate(label, payload):
        errors, total = results[(label, payload)]
        return errors / total

    # Quiesced OS is at least as good as leaving noise running.
    mean_quiet = np.mean([rate("SGX isolated", p) for p in PAYLOADS])
    mean_noise = np.mean([rate("SGX with noise", p) for p in PAYLOADS])
    assert mean_quiet <= mean_noise + 0.003
    # SGX error rates sit in the sub-percent regime of Table 3.
    for label in PAPER:
        for payload in PAYLOADS:
            assert rate(label, payload) < 0.012, (label, payload)
