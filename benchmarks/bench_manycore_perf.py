"""Perf smoke check: the manycore campaign backend vs per-trial assessment.

The struct-of-arrays backend (``stability_experiment(...,
backend="manycore")``) is what makes the full-scale Figure 4 sweep
(10,000 blocks x 1,000 probes) tractable in a single process: instead of
compiling and assessing each candidate block against its own fresh core,
it computes the campaign's shared structure once and advances a whole
chunk of candidates per array operation.  It must stay at least
``--min-speedup`` times faster than the per-trial path on an identical
campaign.  Both backends run interleaved, best-of-N, and their
assessment lists are compared for equality before the timings are
trusted (the full differential proof lives in ``tests/test_manycore.py``).

Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_manycore_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_manycore_perf.py
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bpu import skylake  # noqa: E402
from repro.core.calibration import stability_experiment  # noqa: E402
from repro.cpu import PhysicalCore  # noqa: E402
from repro.system.noise import NoiseModel  # noqa: E402

#: Acceptance target: manycore campaign >= 3x the per-trial path
#: (CI floor 2x).  At full fig4 scale the gap is wider — the shared
#: structure amortises over far more trials — but the smoke campaign
#: keeps CI fast.
TARGET_SPEEDUP = 3.0

TARGET = 0x30_0006D
N_BLOCKS = 24
BLOCK_BRANCHES = 20_000
REPETITIONS = 100
BEST_OF = 3


def _run(backend: str):
    config = skylake()
    start = time.perf_counter()
    assessments = stability_experiment(
        lambda: PhysicalCore(config, seed=6),
        TARGET,
        n_blocks=N_BLOCKS,
        block_branches=BLOCK_BRANCHES,
        repetitions=REPETITIONS,
        noise=NoiseModel.isolated(),
        backend=backend,
    )
    return time.perf_counter() - start, assessments


def measure(best_of: int = BEST_OF) -> dict:
    """Time the manycore backend against the per-trial reference.

    Interleaved best-of-N: machine noise hits both backends alike, so a
    transient stall cannot manufacture (or destroy) a speedup.
    """
    times = {"process": [], "manycore": []}
    results = {}
    for _ in range(best_of):
        for backend in ("process", "manycore"):
            elapsed, assessments = _run(backend)
            times[backend].append(elapsed)
            results[backend] = assessments

    # Differential sanity: same campaign => same assessment list.
    if results["manycore"] != results["process"]:
        raise AssertionError("backends disagree — do not trust timings")

    best = {label: min(series) for label, series in times.items()}
    return {
        "n_blocks": N_BLOCKS,
        "repetitions": REPETITIONS,
        "process_seconds": best["process"],
        "manycore_seconds": best["manycore"],
        "speedup": best["process"] / best["manycore"],
    }


def _report(result: dict) -> str:
    return (
        f"stability campaign, {result['n_blocks']} blocks @ "
        f"{BLOCK_BRANCHES} branches x {result['repetitions']} probes, "
        f"best of {BEST_OF} interleaved\n"
        f"  per-trial backend:      {result['process_seconds']:.3f}s\n"
        f"  manycore backend:       {result['manycore_seconds']:.3f}s\n"
        f"  speedup:                {result['speedup']:.1f}x "
        f"(target >= {TARGET_SPEEDUP:.0f}x)"
    )


def test_manycore_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit("manycore_perf", _report(result))
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if the manycore backend is not this many times faster "
        "than the per-trial campaign (CI passes 2 to catch gross "
        "regressions only)",
    )
    args = parser.parse_args(argv)
    result = measure()
    print(_report(result))
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
