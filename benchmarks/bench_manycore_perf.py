"""Perf smoke check: the manycore campaign backend vs per-trial assessment.

The struct-of-arrays backend (``stability_experiment(...,
backend="manycore")``) is what makes the full-scale Figure 4 sweep
(10,000 blocks x 1,000 probes) tractable in a single process: instead of
compiling and assessing each candidate block against its own fresh core,
it computes the campaign's shared structure once and advances a whole
chunk of candidates per array operation.  Three configurations run
interleaved, best-of-N:

* the per-trial ``process`` backend (numpy kernels pinned),
* the ``manycore`` backend on the numpy kernel backend, and
* the ``manycore`` backend on the best compiled kernel backend
  (numba or cffi) when one can load.

Two gates: manycore/numpy must stay ``--min-speedup`` times faster than
the per-trial path, and the compiled kernel backend must keep the
manycore engine ``--min-kernel-speedup`` times faster still (skipped
with a warning when no compiled backend is available — default CI jobs
are numpy-only; the ``kernel-matrix`` job installs the compilers).  All
assessment lists are compared for equality before any timing is trusted
(the full differential proof lives in ``tests/test_kernels.py``).

Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_manycore_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_manycore_perf.py
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import kernels  # noqa: E402
from repro.bpu import skylake  # noqa: E402
from repro.core.calibration import stability_experiment  # noqa: E402
from repro.cpu import PhysicalCore  # noqa: E402
from repro.system.noise import NoiseModel  # noqa: E402

#: Acceptance target: manycore campaign >= 3x the per-trial path
#: (CI floor 2x).  At full fig4 scale the gap is wider — the shared
#: structure amortises over far more trials — but the smoke campaign
#: keeps CI fast.
TARGET_SPEEDUP = 3.0

#: Acceptance target: a compiled kernel backend >= 2x the numpy kernels
#: on the manycore campaign (the kernel-matrix CI job passes a lower
#: floor to absorb shared-runner noise).
TARGET_KERNEL_SPEEDUP = 2.0

TARGET = 0x30_0006D
N_BLOCKS = 24
BLOCK_BRANCHES = 20_000
REPETITIONS = 100
BEST_OF = 3


def _compiled_backend():
    """Best loadable compiled backend name, or None (numpy-only host)."""
    available = kernels.available_backends()
    for name in kernels.AUTO_ORDER:
        if name != "numpy" and name in available:
            return name
    return None


def _run(backend: str, kernel_backend: str):
    config = skylake()
    kernels.set_backend(kernel_backend)
    start = time.perf_counter()
    assessments = stability_experiment(
        lambda: PhysicalCore(config, seed=6),
        TARGET,
        n_blocks=N_BLOCKS,
        block_branches=BLOCK_BRANCHES,
        repetitions=REPETITIONS,
        noise=NoiseModel.isolated(),
        backend=backend,
    )
    return time.perf_counter() - start, assessments


def measure(best_of: int = BEST_OF) -> dict:
    """Time the backend/kernel matrix on one campaign.

    Interleaved best-of-N: machine noise hits every configuration
    alike, so a transient stall cannot manufacture (or destroy) a
    speedup.
    """
    compiled = _compiled_backend()
    configs = [
        ("process", "numpy"),
        ("manycore", "numpy"),
    ]
    if compiled is not None:
        configs.append(("manycore", compiled))
        kernels.set_backend(compiled)
        kernels.warmup()  # pay JIT/compile cost outside the timings
    times = {cfg: [] for cfg in configs}
    results = {}
    try:
        for _ in range(best_of):
            for cfg in configs:
                elapsed, assessments = _run(*cfg)
                times[cfg].append(elapsed)
                results[cfg] = assessments
    finally:
        kernels.set_backend(None)

    # Differential sanity: same campaign => same assessment list, on
    # every backend/kernel combination.
    reference = results[("process", "numpy")]
    for cfg, assessments in results.items():
        if assessments != reference:
            raise AssertionError(
                f"{cfg} disagrees with the per-trial reference — "
                "do not trust timings"
            )

    best = {cfg: min(series) for cfg, series in times.items()}
    out = {
        "n_blocks": N_BLOCKS,
        "repetitions": REPETITIONS,
        "compiled_backend": compiled,
        "process_seconds": best[("process", "numpy")],
        "manycore_seconds": best[("manycore", "numpy")],
        "speedup": (
            best[("process", "numpy")] / best[("manycore", "numpy")]
        ),
    }
    if compiled is not None:
        out["manycore_compiled_seconds"] = best[("manycore", compiled)]
        out["kernel_speedup"] = (
            best[("manycore", "numpy")] / best[("manycore", compiled)]
        )
    return out


def _report(result: dict) -> str:
    lines = [
        f"stability campaign, {result['n_blocks']} blocks @ "
        f"{BLOCK_BRANCHES} branches x {result['repetitions']} probes, "
        f"best of {BEST_OF} interleaved",
        f"  per-trial backend (numpy kernels):  "
        f"{result['process_seconds']:.3f}s",
        f"  manycore backend (numpy kernels):   "
        f"{result['manycore_seconds']:.3f}s",
        f"  engine speedup:                     {result['speedup']:.1f}x "
        f"(target >= {TARGET_SPEEDUP:.0f}x)",
    ]
    compiled = result.get("compiled_backend")
    if compiled is not None:
        lines += [
            f"  manycore backend ({compiled} kernels):    "
            f"{result['manycore_compiled_seconds']:.3f}s",
            f"  kernel speedup:                     "
            f"{result['kernel_speedup']:.1f}x "
            f"(target >= {TARGET_KERNEL_SPEEDUP:.0f}x)",
        ]
    else:
        lines.append(
            "  compiled kernels:                   unavailable "
            "(numpy-only host; kernel gate skipped)"
        )
    return "\n".join(lines)


def test_manycore_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit("manycore_perf", _report(result))
    assert result["speedup"] >= TARGET_SPEEDUP
    if result.get("compiled_backend") is not None:
        assert result["kernel_speedup"] >= TARGET_KERNEL_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if the manycore backend is not this many times faster "
        "than the per-trial campaign (CI passes 2 to catch gross "
        "regressions only)",
    )
    parser.add_argument(
        "--min-kernel-speedup", type=float, default=TARGET_KERNEL_SPEEDUP,
        help="fail if the compiled kernel backend is not this many times "
        "faster than numpy kernels on the manycore campaign; skipped "
        "when no compiled backend can load",
    )
    args = parser.parse_args(argv)
    result = measure()
    print(_report(result))
    failed = False
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: engine speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        failed = True
    if (
        result.get("compiled_backend") is not None
        and result["kernel_speedup"] < args.min_kernel_speedup
    ):
        print(
            f"FAIL: kernel speedup {result['kernel_speedup']:.1f}x below "
            f"required {args.min_kernel_speedup:.1f}x",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
