"""Table 2: covert-channel error rates across CPUs and noise settings.

Paper result (1M bits per cell, 10 trials):

                     all-0    all-1    random
    SL  isolated     0.46%    0.51%    0.63%
    SL  with noise   0.64%    0.63%    0.74%
    HW  isolated     0.16%    0.27%    0.46%
    HW  with noise   0.37%    0.29%    0.67%
    SB  isolated     0.68%    1.76%    2.44%
    SB  with noise   1.76%    4.88%    3.38%

Reproduction targets are the *shape*: error rates around or below 1% on
Skylake/Haswell, several-fold worse on Sandy Bridge (smaller predictor
tables), and noise hurting but not breaking the channel.  Bit counts are
scaled down (see DESIGN.md); REPRO_BENCH_SCALE raises them.
"""

import numpy as np
import pytest

from conftest import emit, scaled
from repro.analysis import binomial_confidence_interval, format_table
from repro.bpu import haswell, sandy_bridge, skylake
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting

PRESETS = [
    ("SL", skylake),
    ("Haswell", haswell),
    ("SB", sandy_bridge),
]
SETTINGS = [
    ("isolated", NoiseSetting.ISOLATED),
    ("with noise", NoiseSetting.NOISY),
]
PAYLOADS = ["all 0", "all 1", "random"]

N_BITS = scaled(2500)
N_TRIALS = scaled(2)


def payload_bits(kind: str, rng) -> list:
    if kind == "all 0":
        return [0] * N_BITS
    if kind == "all 1":
        return [1] * N_BITS
    return rng.integers(0, 2, N_BITS).tolist()


def run_experiment(checkpoint_factory=None):
    results = {}
    rates = {}
    for cpu_label, preset in PRESETS:
        for setting_label, setting in SETTINGS:
            # One checkpointed sweep per cell: a killed run resumes at
            # the first cell (and message) without a checkpoint.
            ckpt = {}
            if checkpoint_factory is not None:
                name = f"table2_{cpu_label}_{setting_label}".replace(" ", "_")
                ckpt = checkpoint_factory(name)
            core = PhysicalCore(preset(), seed=20)
            channel = CovertChannel.for_processes(
                core,
                Process("victim"),
                Process("spy"),
                setting=setting,
                config=CovertConfig(),
            )
            rng = np.random.default_rng(21)
            # Message trials are independent: one trial_sweep per cell
            # (honours REPRO_TRIAL_WORKERS; received bits are identical
            # at any worker count).
            trials = [
                (payload, payload_bits(payload, rng))
                for payload in PAYLOADS
                for _ in range(N_TRIALS)
            ]
            sweep = channel.trial_sweep(
                [bits for _, bits in trials], seed=22, **ckpt
            )
            cell_errors = cell_total = 0
            cell_cycles = sum(channel.last_sweep_cycles)
            for (payload, bits), received in zip(trials, sweep):
                errors, total = results.get(
                    (cpu_label, setting_label, payload), (0, 0)
                )
                errors += sum(1 for a, b in zip(bits, received) if a != b)
                total += len(bits)
                results[(cpu_label, setting_label, payload)] = (errors, total)
            for payload in PAYLOADS:
                errors, total = results[(cpu_label, setting_label, payload)]
                cell_errors += errors
                cell_total += total
            rates[(cpu_label, setting_label)] = (
                cell_errors / cell_total,
                cell_cycles / cell_total,
            )
    return results, rates


PAPER = {
    ("SL", "isolated"): (0.46, 0.51, 0.63),
    ("SL", "with noise"): (0.64, 0.63, 0.74),
    ("Haswell", "isolated"): (0.16, 0.27, 0.46),
    ("Haswell", "with noise"): (0.37, 0.29, 0.67),
    ("SB", "isolated"): (0.68, 1.76, 2.44),
    ("SB", "with noise"): (1.76, 4.88, 3.38),
}


def test_table2_covert_error_rates(benchmark, campaign_checkpoint):
    results, rates = benchmark.pedantic(
        run_experiment,
        kwargs={"checkpoint_factory": campaign_checkpoint},
        rounds=1,
        iterations=1,
    )

    rows = []
    for cpu_label, _ in PRESETS:
        for setting_label, _ in SETTINGS:
            paper = PAPER[(cpu_label, setting_label)]
            row = [f"{cpu_label} {setting_label}"]
            for payload, paper_value in zip(PAYLOADS, paper):
                errors, total = results[(cpu_label, setting_label, payload)]
                low, high = binomial_confidence_interval(errors, total)
                row.append(
                    f"{errors / total:.2%} [{low:.2%},{high:.2%}] "
                    f"(paper {paper_value:.2f}%)"
                )
            rows.append(row)
    emit(
        "table2_covert_error_rates",
        format_table(
            ["setting", *PAYLOADS],
            rows,
            title=(
                f"Table 2 — covert channel error rate ({N_BITS} bits x "
                f"{N_TRIALS} trials per cell; paper used 1M bits x 10)"
            ),
        ),
    )

    from repro.analysis import ChannelEstimate

    emit(
        "table2_channel_rates",
        format_table(
            ["setting", "cycles/bit", "raw bit/s @2GHz", "corrected bit/s"],
            [
                [
                    f"{cpu} {setting}",
                    f"{cycles:,.0f}",
                    f"{ChannelEstimate(err, cycles).raw_bits_per_second:,.0f}",
                    f"{ChannelEstimate(err, cycles).corrected_bits_per_second:,.0f}",
                ]
                for (cpu, setting), (err, cycles) in rates.items()
            ],
            title=(
                "Table 2 extension — channel throughput implied by the "
                "simulated cycle costs (BSC-corrected)"
            ),
        ),
    )

    def rate(cpu, setting, payload):
        errors, total = results[(cpu, setting, payload)]
        return errors / total

    # Shape assertions.
    for setting_label, _ in SETTINGS:
        for payload in PAYLOADS:
            # Modern parts beat Sandy Bridge (bigger predictor tables).
            best_modern = min(
                rate("SL", setting_label, payload),
                rate("Haswell", setting_label, payload),
            )
            assert best_modern <= rate("SB", setting_label, payload) + 0.005
    # Skylake/Haswell stay in the ~1% regime even with noise.
    for cpu in ("SL", "Haswell"):
        for payload in PAYLOADS:
            assert rate(cpu, "isolated", payload) < 0.02
            assert rate(cpu, "with noise", payload) < 0.04
    # Noise never helps (within CI slack).
    for cpu_label, _ in PRESETS:
        mean_iso = np.mean([rate(cpu_label, "isolated", p) for p in PAYLOADS])
        mean_noisy = np.mean(
            [rate(cpu_label, "with noise", p) for p in PAYLOADS]
        )
        assert mean_noisy >= mean_iso - 0.005
