"""Perf smoke check: fuzz generations/sec + store-served generation reruns.

Every fuzz generation is a ``workload="fuzz"`` campaign dispatched
through the sharded service, so a *warm* rerun of the same generation —
fresh checkpoints, shared store — must be served entirely from shard
results published by the cold run: zero trials dispatched, identical
aggregate digest.  Two numbers matter:

* **generations/sec** — the full closed-loop session rate (oracle
  trials + hypothesis elimination).  Recorded in the manifest; the
  elimination side dominates, so it is reported, not gated.
* **campaign dispatch speedup** — cold vs store-served execution of one
  generation's campaign, the part the store actually serves.  Gated at
  ``--min-speedup`` (CI passes a lower floor for shared-runner noise).

Digest equality is asserted before any timing is trusted, and the warm
rerun of the full session is additionally required to dispatch no
oracle trials at all (the ``pre_trial`` hook counts them) — the store
must be an optimisation, never an answer-changer.

Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_fuzz_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_fuzz_perf.py
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fuzz import battery_descriptors, run_fuzz  # noqa: E402
from repro.service import CampaignSpec, CampaignService  # noqa: E402
from repro.store import ContentStore  # noqa: E402

#: Acceptance target: the store-served generation campaign >= 2x faster
#: than its cold run (CI floor 1.5x).  In practice the gap is larger —
#: a warm generation is a handful of store reads.
TARGET_SPEEDUP = 2.0

PRESET = "sandy_bridge"
SEED = 0
SHARDS = 4
BEST_OF = 3


def _generation_spec(descriptors) -> CampaignSpec:
    return CampaignSpec(
        name="bench-fuzz-g0",
        tenant="fuzz",
        preset=PRESET,
        seed=SEED,
        n_blocks=len(descriptors),
        shards=SHARDS,
        workload="fuzz",
        params=json.dumps({"descriptors": descriptors}, sort_keys=True),
    )


def _run_generation(spec: CampaignSpec, store: ContentStore):
    service = CampaignService(workers=None, store=store)
    cid = service.submit(spec)
    service.run_until_complete()
    state = service.campaign(cid)
    return state.aggregate().digest(), state.cached_shards


def measure(best_of: int = BEST_OF) -> dict:
    """Time the full session and the cold/warm generation dispatch."""
    session_times, cold_times, warm_times = [], [], []
    stats = {}
    generations = trials = 0
    spec = _generation_spec(battery_descriptors(SEED))
    for _ in range(best_of):
        with tempfile.TemporaryDirectory() as tmp:
            # Full closed-loop session (oracle + elimination), plus the
            # zero-dispatch warm rerun it must support.
            session_store = ContentStore(Path(tmp) / "session-store")
            start = time.perf_counter()
            cold = run_fuzz(
                PRESET,
                seed=SEED,
                shards=SHARDS,
                store=session_store,
                checkpoint_dir=Path(tmp) / "ck-cold",
            )
            session_times.append(time.perf_counter() - start)
            dispatched = []
            warm = run_fuzz(
                PRESET,
                seed=SEED,
                shards=SHARDS,
                store=session_store,
                checkpoint_dir=Path(tmp) / "ck-warm",
                pre_trial=dispatched.append,
            )
            if warm.digest() != cold.digest():
                raise AssertionError(
                    "store-served fuzz session disagrees with the cold "
                    "run — do not trust timings"
                )
            if dispatched:
                raise AssertionError(
                    f"warm session dispatched {len(dispatched)} trials; "
                    "expected zero (store serving is broken)"
                )
            if not cold.matches_truth():
                raise AssertionError(
                    "fuzz session failed to recover the true geometry — "
                    "do not trust timings"
                )
            generations = cold.generations_run
            trials = cold.n_trials

            # Campaign dispatch, cold vs store-served, in isolation.
            store = ContentStore(Path(tmp) / "gen-store")
            start = time.perf_counter()
            cold_digest, _ = _run_generation(spec, store)
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            warm_digest, cached = _run_generation(spec, store)
            warm_times.append(time.perf_counter() - start)
            if warm_digest != cold_digest:
                raise AssertionError(
                    "store-served generation disagrees with its cold run"
                )
            if cached != SHARDS:
                raise AssertionError(
                    f"warm generation served {cached}/{SHARDS} shards "
                    "from the store"
                )
            stats = store.stats_dict()
    return {
        "preset": PRESET,
        "generations": generations,
        "trials": trials,
        "shards": SHARDS,
        "session_seconds": min(session_times),
        "generations_per_second": generations / min(session_times),
        "cold_seconds": min(cold_times),
        "warm_seconds": min(warm_times),
        "speedup": min(cold_times) / min(warm_times),
        "store_stats": stats,
    }


def _report(result: dict) -> str:
    stats = result["store_stats"]
    return "\n".join(
        [
            f"fuzz session, {result['preset']}: "
            f"{result['generations']} generation(s), "
            f"{result['trials']} oracle trials in {result['shards']} "
            f"shards, best of {BEST_OF} interleaved",
            f"  full session:         {result['session_seconds']:.3f}s "
            f"({result['generations_per_second']:.2f} generations/s); "
            f"warm rerun dispatches 0 trials",
            f"  generation dispatch:  cold {result['cold_seconds']:.3f}s, "
            f"store-served {result['warm_seconds']:.3f}s",
            f"  dispatch speedup:     {result['speedup']:.1f}x "
            f"(target >= {TARGET_SPEEDUP:.0f}x)",
            f"  store traffic:        {stats['memory_hits']} memory hits, "
            f"{stats['disk_hits']} disk hits, {stats['misses']} misses, "
            f"{stats['puts']} puts",
        ]
    )


def test_fuzz_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit(
        "fuzz_perf",
        _report(result),
        extra={
            "generations_per_second": result["generations_per_second"],
            "store_stats": result["store_stats"],
        },
    )
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if the store-served generation dispatch is not this "
        "many times faster than its cold run (CI passes a lower floor "
        "to catch gross regressions only)",
    )
    args = parser.parse_args(argv)
    result = measure()
    print(_report(result))
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: dispatch speedup {result['speedup']:.1f}x below "
            f"required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
