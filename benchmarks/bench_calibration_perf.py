"""Perf smoke check: the §6.2 calibration trial through the batch engine.

The vectorised trial-plan engine (:func:`assess_block_batch` with a
pre-drawn :class:`TrialPlan`) is what makes the Figure 4 stability
sweep tractable at paper scale (10,000 blocks x 1,000 probes); it must
stay at least ``--min-speedup`` times faster than the scalar reference
:func:`assess_block` on the same plan.  Both engines run interleaved,
best-of-N, and their assessments are compared for equality before the
timings are trusted (the full differential proof lives in
``tests/test_calibration_batch.py``).

Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_calibration_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_calibration_perf.py

The replay mode (scalar signature, bit-exact generator-stream replay) is
reported for context but only sanity-gated at >1x — its speedup is
capped by re-drawing the scalar engine's per-repetition generator calls.
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.bpu import skylake  # noqa: E402
from repro.core.calibration import (  # noqa: E402
    assess_block,
    assess_block_batch,
    draw_trial_plan,
)
from repro.core.randomizer import RandomizationBlock  # noqa: E402
from repro.cpu import PhysicalCore, Process  # noqa: E402
from repro.system.noise import NoiseModel  # noqa: E402

#: Acceptance target: batch trial >= 10x the scalar trial (CI floor 5x).
TARGET_SPEEDUP = 10.0

TARGET = 0x7F0000001234
BLOCK_BRANCHES = 20_000
REPETITIONS = 500
REPLAY_REPETITIONS = 60
BEST_OF = 3


def _setup():
    core = PhysicalCore(skylake(), seed=11)
    spy = Process("spy")
    block = RandomizationBlock.generate(7, n_branches=BLOCK_BRANCHES)
    compiled = block.compile(core, spy)
    return core, spy, compiled


def _run_plan(engine, repetitions):
    core, spy, compiled = _setup()
    plan = draw_trial_plan(
        np.random.default_rng(13),
        core,
        repetitions=repetitions,
        noise=NoiseModel.isolated(),
    )
    start = time.perf_counter()
    assessment = engine(core, spy, compiled, TARGET, plan=plan)
    return time.perf_counter() - start, assessment


def _run_replay(engine, repetitions):
    core, spy, compiled = _setup()
    start = time.perf_counter()
    assessment = engine(
        core,
        spy,
        compiled,
        TARGET,
        repetitions=repetitions,
        noise=NoiseModel.isolated(),
    )
    return time.perf_counter() - start, assessment


def measure(
    repetitions: int = REPETITIONS,
    replay_repetitions: int = REPLAY_REPETITIONS,
    best_of: int = BEST_OF,
) -> dict:
    """Time the batch calibration engine against the scalar reference.

    Interleaved best-of-N: machine noise hits both engines alike, so a
    transient stall cannot manufacture (or destroy) a speedup.
    """
    times = {label: [] for label in
             ("scalar", "batch", "scalar_replay", "batch_replay")}
    assessments = {}
    for _ in range(best_of):
        for label, runner, engine, reps in (
            ("scalar", _run_plan, assess_block, repetitions),
            ("batch", _run_plan, assess_block_batch, repetitions),
            ("scalar_replay", _run_replay, assess_block, replay_repetitions),
            ("batch_replay", _run_replay, assess_block_batch,
             replay_repetitions),
        ):
            elapsed, assessment = runner(engine, reps)
            times[label].append(elapsed)
            assessments[label] = assessment

    # Differential sanity: same plan/stream => same assessment.
    if assessments["batch"] != assessments["scalar"]:
        raise AssertionError("plan engines disagree — do not trust timings")
    if assessments["batch_replay"] != assessments["scalar_replay"]:
        raise AssertionError("replay engines disagree — do not trust timings")

    best = {label: min(series) for label, series in times.items()}
    return {
        "repetitions": repetitions,
        "replay_repetitions": replay_repetitions,
        "scalar_seconds": best["scalar"],
        "batch_seconds": best["batch"],
        "speedup": best["scalar"] / best["batch"],
        "scalar_replay_seconds": best["scalar_replay"],
        "batch_replay_seconds": best["batch_replay"],
        "replay_speedup": best["scalar_replay"] / best["batch_replay"],
    }


def _report(result: dict) -> str:
    return (
        f"assess_block trial @ {BLOCK_BRANCHES} branches, best of "
        f"{BEST_OF} interleaved\n"
        f"  trial plan, {result['repetitions']} repetitions\n"
        f"    scalar reference:       {result['scalar_seconds']:.3f}s\n"
        f"    vectorised batch:       {result['batch_seconds']:.3f}s\n"
        f"    speedup:                {result['speedup']:.1f}x "
        f"(target >= {TARGET_SPEEDUP:.0f}x)\n"
        f"  stream replay, {result['replay_repetitions']} repetitions\n"
        f"    scalar reference:       {result['scalar_replay_seconds']:.3f}s\n"
        f"    vectorised batch:       {result['batch_replay_seconds']:.3f}s\n"
        f"    speedup:                {result['replay_speedup']:.1f}x "
        f"(sanity > 1x)"
    )


def test_calibration_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit("calibration_perf", _report(result))
    assert result["speedup"] >= TARGET_SPEEDUP
    assert result["replay_speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repetitions", type=int, default=REPETITIONS,
        help="probe repetitions per plan-mode trial (default: 500)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if the batch engine is not this many times faster "
        "than the scalar trial (CI passes 5 to catch gross regressions "
        "only)",
    )
    args = parser.parse_args(argv)
    result = measure(args.repetitions)
    print(_report(result))
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    if result["replay_speedup"] <= 1.0:
        print("FAIL: replay engine slower than the scalar loop",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
