"""Ablation A2: randomisation-block size vs priming reliability.

Paper §5.2: "we experimentally discovered that executing 100,000 branch
instructions is sufficient to randomize the state of most PHT entries
and to effectively disable the 2-level predictor", with shorter
sequences flagged as future work.  This ablation measures *why* the
block must be large: small blocks rarely touch the target entry often
enough to pin it (leave it in a history-independent state), so the §6.2
calibration search runs out of usable candidates.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.randomizer import RandomizationBlock
from repro.cpu import PhysicalCore, Process

BLOCK_SIZES = [10_000, 25_000, 50_000, 100_000, 200_000]
CANDIDATES = scaled(24)
TARGET = 0x30_0006D


def run_experiment():
    core = PhysicalCore(skylake(), seed=33)
    spy = Process("spy")
    results = {}
    for size in BLOCK_SIZES:
        pinned = 0
        touched = []
        for seed in range(CANDIDATES):
            block = RandomizationBlock.generate(seed, n_branches=size)
            row = block.entry_fold(core, spy, TARGET)
            if (row == row[0]).all():
                pinned += 1
            indices = (
                block.addresses % core.predictor.bimodal.pht.n_entries
            )
            touched.append(
                len(np.unique(indices)) / core.predictor.bimodal.pht.n_entries
            )
        results[size] = (pinned / CANDIDATES, float(np.mean(touched)))
    return results


def test_ablation_block_size(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        [size, f"{coverage:.1%}", f"{pin_rate:.0%}"]
        for size, (pin_rate, coverage) in (
            (s, results[s]) for s in BLOCK_SIZES
        )
    ]
    emit(
        "ablation_block_size",
        format_table(
            ["block branches", "PHT coverage", "blocks pinning the target"],
            rows,
            title=(
                "Ablation A2 — why the paper's block needs ~100k branches "
                f"({CANDIDATES} candidate blocks per size)"
            ),
        ),
    )

    pin_rates = [results[s][0] for s in BLOCK_SIZES]
    coverages = [results[s][1] for s in BLOCK_SIZES]
    # Pinning reliability grows with block size...
    assert pin_rates[-1] > pin_rates[0]
    assert pin_rates[BLOCK_SIZES.index(100_000)] >= 0.25
    # ...as does table coverage, which saturates near 1 at the paper size.
    assert all(b >= a - 0.02 for a, b in zip(coverages, coverages[1:]))
    assert coverages[BLOCK_SIZES.index(100_000)] > 0.95
