"""Table 1: FSM transitions observed through prime/target/probe.

Paper result: the eight prime x target x probe combinations produce the
HH/MM/MH observations of Table 1 — with the footnote-1 deviation on
Skylake (TTT prime, N target, NN probe observes MM instead of MH).

Unlike the unit tests (which check the FSM tables analytically), this
bench runs the *actual in-process experiment*: branches executed on the
full core, mispredictions detected via the performance counters — the
paper's §6.1 methodology.
"""

import pytest

from conftest import emit
from repro.analysis import format_table
from repro.bpu import haswell, sandy_bridge, skylake
from repro.core.prime_probe import probe_pair
from repro.cpu import PhysicalCore, Process

ROWS = [
    # prime, target, probe, textbook observation, skylake observation
    ("TTT", "T", "TT", "HH", "HH"),
    ("TTT", "T", "NN", "MM", "MM"),
    ("TTT", "N", "TT", "HH", "HH"),
    ("TTT", "N", "NN", "MH", "MM"),  # footnote 1
    ("NNN", "T", "TT", "MH", "MH"),
    ("NNN", "T", "NN", "HH", "HH"),
    ("NNN", "N", "TT", "MM", "MM"),
    ("NNN", "N", "NN", "HH", "HH"),
]

PRESETS = {
    "Skylake": skylake,
    "Haswell": haswell,
    "Sandy Bridge": sandy_bridge,
}

ADDRESS = 0x30_0006D


def run_experiment():
    observations = {}
    for label, preset in PRESETS.items():
        core = PhysicalCore(preset(), seed=4)
        process = Process("experimenter")
        per_row = []
        for prime, target, probe, _, _ in ROWS:
            # Fresh 1-level life for the branch each row, as in a fresh run.
            core.predictor.bit.evict(ADDRESS)
            core.predictor.bimodal.pht.set_state(
                core.predictor.bimodal.index(ADDRESS),
                core.predictor.bimodal.pht.fsm.public_state(0),
            )
            for ch in prime + target:
                core.execute_branch(process, ADDRESS, ch == "T")
            core.predictor.bit.evict(ADDRESS)
            result = probe_pair(
                core, process, ADDRESS, [c == "T" for c in probe]
            )
            per_row.append(result.pattern)
        observations[label] = per_row
    return observations


def test_table1_fsm_transitions(benchmark):
    observations = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for i, (prime, target, probe, textbook, sky) in enumerate(ROWS):
        rows.append(
            [
                prime,
                target,
                probe,
                textbook,
                sky,
                observations["Haswell"][i],
                observations["Sandy Bridge"][i],
                observations["Skylake"][i],
            ]
        )
    emit(
        "table1_fsm_transitions",
        format_table(
            [
                "prime", "target", "probe",
                "paper(HW/SB)", "paper(SL)",
                "measured HW", "measured SB", "measured SL",
            ],
            rows,
            title="Table 1 — FSM transitions for a single PHT entry",
        ),
    )

    for i, (prime, target, probe, textbook, sky) in enumerate(ROWS):
        assert observations["Haswell"][i] == textbook, (prime, target, probe)
        assert observations["Sandy Bridge"][i] == textbook, (prime, target, probe)
        assert observations["Skylake"][i] == sky, (prime, target, probe)
