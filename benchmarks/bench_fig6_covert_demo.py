"""Figure 6: covert-channel decode demonstration.

Paper figure: the spy primes and probes the direction predictor around
each victim bit, records its per-probe misprediction patterns, and
decodes them through the dictionary (MM, HM -> 0; MH, HH -> 1 for the
figure's working point).  The figure shows one erroneously received bit;
we transmit under the noisy setting so errors can occur naturally and
report the observed pattern stream the same way.
"""

import numpy as np

from conftest import emit
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.covert import CovertChannel, CovertConfig, error_rate
from repro.core.prime_probe import probe_pair
from repro.cpu import PhysicalCore, Process
from repro.system.scheduler import NoiseSetting

MESSAGE = [0, 1, 1, 0, 1, 1, 0, 1, 1, 0]


def run_experiment():
    core = PhysicalCore(skylake(), seed=12)
    channel = CovertChannel.for_processes(
        core,
        Process("victim"),
        Process("spy"),
        setting=NoiseSetting.NOISY,
        config=CovertConfig(),
    )
    patterns = []
    received = []
    for bit in MESSAGE:
        channel.block.apply(core, channel.spy)
        channel.scheduler.stage_gap()
        channel.scheduler.victim_turn(lambda b=bit: channel.send_bit(b))
        channel.scheduler.stage_gap()
        pattern = probe_pair(
            core, channel.spy, channel.branch_address,
            channel.config.probe_outcomes,
        ).pattern
        patterns.append(pattern)
        received.append(channel.dictionary[pattern])
    return channel.dictionary, patterns, received


def test_fig6_covert_demo(benchmark):
    dictionary, patterns, received = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        ["original"] + [str(b) for b in MESSAGE],
        ["spy measurements"] + patterns,
        ["decoded"] + [str(b) for b in received],
        ["correct?"] + [
            "." if a == b else "X" for a, b in zip(MESSAGE, received)
        ],
    ]
    dict_line = "  ".join(f"{p}->{b}" for p, b in sorted(dictionary.items()))
    emit(
        "fig6_covert_demo",
        format_table(
            ["", *(f"bit{i}" for i in range(len(MESSAGE)))],
            rows,
            title=f"Figure 6 — covert channel demo (dictionary: {dict_line})",
        ),
    )
    # Reproduction target: the channel decodes the message with at most
    # one bad bit over these ten (the paper's figure shows one error).
    assert error_rate(MESSAGE, received) <= 0.1
