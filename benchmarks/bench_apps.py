"""Ablation A4 / §9.2 applications: end-to-end attacks on real victims.

Regenerates the paper's three application scenarios:

* **Montgomery ladder** — recover a private exponent bit-for-bit from
  the ladder's key-dependent branch;
* **libjpeg IDCT** — recover the per-row zero map (block sparsity) of a
  compressed image from the decoder's skip branches;
* **ASLR recovery** — locate a victim branch's congruence class in the
  PHT, derandomising log2(PHT)-log2(alignment) bits of the load base.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.attack import BranchScope
from repro.core.aslr_attack import recover_load_base
from repro.core.covert import error_rate
from repro.cpu import PhysicalCore, Process
from repro.system import AslrConfig, AttackScheduler, NoiseSetting
from repro.victims import (
    JpegDecoderVictim,
    MontgomeryLadderVictim,
    encode_image,
)


def montgomery_attack():
    core = PhysicalCore(skylake(), seed=40)
    key = int.from_bytes(b"\x9e\x37\x79\xb9\x7f\x4a\x7c\x15", "big")
    victim = MontgomeryLadderVictim(key)
    attack = BranchScope(
        core, Process("spy"), victim.branch_address,
        setting=NoiseSetting.ISOLATED,
    )
    bits = attack.spy_on_bits(lambda: victim.step(core), victim.n_bits)
    recovered = 0
    for bit in bits:
        recovered = (recovered << 1) | int(bit)
    matching = sum(
        1
        for i in range(victim.n_bits)
        if (recovered >> i) & 1 == (key >> i) & 1
    )
    return victim.n_bits, matching, recovered == key


def jpeg_attack():
    core = PhysicalCore(skylake(), seed=41)
    rng = np.random.default_rng(42)
    y, x = np.mgrid[0:24, 0:32]
    image = encode_image(
        np.clip(
            110 + 70 * np.sin(x / 5.0) * np.cos(y / 7.0) + rng.normal(0, 4, (24, 32)),
            0,
            255,
        )
    )
    victim = JpegDecoderVictim(image)
    attack = BranchScope(
        core, Process("spy"), victim.row_branch_address,
        setting=NoiseSetting.ISOLATED,
    )
    recovered = []
    while not victim.finished:
        if victim.next_branch_address() == victim.row_branch_address:
            recovered.append(
                attack.spy_on_branch(lambda: victim.step(core)).taken
            )
        else:
            victim.step(core)
    truth = (~image.zero_row_map()).flatten().tolist()
    accuracy = sum(a == b for a, b in zip(recovered, truth)) / len(truth)
    return len(truth), accuracy


def aslr_attack():
    core = PhysicalCore(skylake(), seed=43)
    rng = np.random.default_rng(44)
    aslr = AslrConfig(entropy_bits=10, alignment=16)
    successes = 0
    trials = scaled(4)
    for _ in range(trials):
        victim = aslr.randomized_process("victim", rng, link_base=0)
        offset = 0x7C2
        address = victim.branch_address(offset)
        counter = {"n": 0}

        def trigger():
            counter["n"] += 1
            core.execute_branch(victim, address, counter["n"] % 3 != 0)

        scores = recover_load_base(
            core,
            Process("spy"),
            offset,
            trigger,
            [slot * aslr.alignment for slot in range(aslr.slots)],
            trials=8,
            scheduler=AttackScheduler(core, NoiseSetting.ISOLATED),
        )
        pht = core.predictor.bimodal.pht.n_entries
        if scores[0].candidate_address % pht == address % pht:
            successes += 1
    return trials, successes, aslr


def run_experiment():
    return montgomery_attack(), jpeg_attack(), aslr_attack()


def test_application_attacks(benchmark):
    montgomery, jpeg, aslr = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    key_bits, key_matching, key_exact = montgomery
    rows_total, row_accuracy = jpeg
    aslr_trials, aslr_successes, aslr_config = aslr

    pht_bits = 14  # log2(16384)
    align_bits = 4  # log2(16)
    emit(
        "apps_attacks",
        format_table(
            ["attack", "result"],
            [
                [
                    "Montgomery ladder key recovery",
                    f"{key_matching}/{key_bits} key bits correct "
                    f"({'exact key' if key_exact else 'not exact'})",
                ],
                [
                    "libjpeg IDCT zero-row map",
                    f"{row_accuracy:.1%} of {rows_total} row-skip "
                    "decisions recovered",
                ],
                [
                    "ASLR derandomisation",
                    f"{aslr_successes}/{aslr_trials} load bases located; "
                    f"{pht_bits - align_bits} bits of entropy recovered "
                    "per success",
                ],
            ],
            title="§9.2 application attacks (isolated-noise setting)",
        ),
    )

    assert key_matching / key_bits > 0.95
    assert row_accuracy > 0.9
    assert aslr_successes >= aslr_trials - 1
