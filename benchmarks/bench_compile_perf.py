"""Perf smoke check: `RandomizationBlock.compile` at the paper's block size.

The vectorized transition-monoid fold must keep block compilation at
least ``--min-speedup`` times faster than the reference
step-once-per-branch fold (the seed implementation) at 100k branches.
Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_compile_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_compile_perf.py

The differential tests in ``tests/test_fold_vectorized.py`` prove the
two folds bit-exact; this file only guards the speed.
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bpu import haswell  # noqa: E402
from repro.core.randomizer import (  # noqa: E402
    PAPER_BLOCK_BRANCHES,
    RandomizationBlock,
    clear_compile_cache,
)
from repro.cpu import PhysicalCore, Process  # noqa: E402

#: Acceptance target: vectorized compile >= 5x the reference fold.
TARGET_SPEEDUP = 5.0


def measure(n_branches: int = PAPER_BLOCK_BRANCHES, rounds: int = 3) -> dict:
    """Best-of-``rounds`` timings of the compiled path vs the reference fold."""
    core = PhysicalCore(haswell(), seed=1)
    spy = Process("spy")
    block = RandomizationBlock.generate(7, n_branches=n_branches)
    fsm = core.predictor.bimodal.pht.fsm
    n_entries = core.predictor.bimodal.pht.n_entries
    indices = block._mapped_indices(0, None, n_entries)

    compile_best = float("inf")
    for _ in range(rounds):
        clear_compile_cache()
        start = time.perf_counter()
        block.compile(core, spy)
        compile_best = min(compile_best, time.perf_counter() - start)

    # The seed implementation folded the block twice (bimodal + gshare);
    # time one reference fold and charge it double.
    start = time.perf_counter()
    block.fold_map_reference(indices, n_entries, fsm.n_levels, fsm.step_table)
    reference = 2 * (time.perf_counter() - start)

    return {
        "n_branches": n_branches,
        "compile_seconds": compile_best,
        "reference_seconds": reference,
        "speedup": reference / compile_best,
    }


def _report(result: dict) -> str:
    return (
        f"RandomizationBlock.compile @ {result['n_branches']} branches\n"
        f"  reference fold (seed impl): {result['reference_seconds']:.3f}s\n"
        f"  vectorized compile:         {result['compile_seconds']:.3f}s\n"
        f"  speedup:                    {result['speedup']:.1f}x "
        f"(target >= {TARGET_SPEEDUP:.0f}x)"
    )


def test_compile_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit("compile_perf", _report(result))
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--branches", type=int, default=PAPER_BLOCK_BRANCHES,
        help="block size to compile (default: the paper's 100k)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if compile is not this many times faster than the "
        "reference fold (CI passes 3 to catch gross regressions only)",
    )
    args = parser.parse_args(argv)
    result = measure(args.branches)
    print(_report(result))
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
