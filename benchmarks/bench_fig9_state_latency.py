"""Figure 9: probe latency as a function of the primed PHT state.

Paper result: for both probe variants (two not-taken / two taken
branches) the four FSM states produce distinguishable first/second
latency signatures — e.g. probing ST with NN yields two slow (MM)
measurements, probing WT with NN yields slow-then-fast (MH on the
textbook FSM) — so the whole attack works from the timestamp counter
alone.
"""

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import haswell
from repro.bpu.fsm import State
from repro.core.patterns import expected_probe_pattern
from repro.core.timing_detect import probe_state_latencies
from repro.cpu import PhysicalCore, Process

N = scaled(3_000)
ADDRESS = 0x30_0006D


def run_experiment():
    core = PhysicalCore(haswell(), seed=18)
    spy = Process("timer")
    return probe_state_latencies(core, spy, ADDRESS, n=N), core


def test_fig9_probe_state_latency(benchmark):
    results, core = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    fsm = core.predictor.bimodal.pht.fsm

    rows = []
    for variant, outcome in (("NN", False), ("TT", True)):
        for state in (State.ST, State.WT, State.WN, State.SN):
            pattern, _ = expected_probe_pattern(
                fsm, fsm.level_for(state), (outcome, outcome)
            )
            mean1, std1, mean2, std2 = results[variant][state]
            rows.append(
                [
                    variant,
                    f"{state.name}({pattern})",
                    f"{mean1:.1f}±{std1:.0f}",
                    f"{mean2:.1f}±{std2:.0f}",
                ]
            )
    emit(
        "fig9_probe_state_latency",
        format_table(
            ["probe", "state(expected)", "1st measurement", "2nd measurement"],
            rows,
            title=(
                "Figure 9 — probe latency by primed PHT state "
                "(paper: states reliably distinguishable by timing)"
            ),
        ),
    )

    nn, tt = results["NN"], results["TT"]
    gap = 10.0
    # NN probe: taken-side states mispredict the first probe, the
    # not-taken side hits.
    assert nn[State.ST][0] > nn[State.WN][0] + gap
    assert nn[State.WT][0] > nn[State.SN][0] + gap
    # TT probe is the mirror image.
    assert tt[State.SN][0] > tt[State.WT][0] + gap
    assert tt[State.WN][0] > tt[State.ST][0] + gap
    # Second measurements separate MM-states from MH-states: probing NN
    # from ST stays slow, from WT it turns fast (textbook FSM).
    assert nn[State.ST][2] > nn[State.WT][2] + gap
