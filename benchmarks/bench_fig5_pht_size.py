"""Figure 5: PHT probing over an address range and size recovery.

Paper results: (a) adjacent addresses land in different PHT states, so
the indexing granularity is a single byte; (b) the Hamming-distance
ratio over window sizes is minimised at w = 2^14, giving a PHT size of
16 384 entries; (c) aligning the scan at that window shows the repeated
pattern.
"""

import numpy as np

from conftest import emit
from repro.analysis import format_table
from repro.bpu import haswell
from repro.core.pht_map import (
    estimate_pht_size,
    hamming_ratio_curve,
    scan_states,
)
from repro.core.randomizer import RandomizationBlock
from repro.cpu import PhysicalCore, Process

BASE = 0x300000
#: The paper scans 2^15 contiguous addresses on a 2^14-entry table.
SCAN_LENGTH = 1 << 15


def run_experiment():
    core = PhysicalCore(haswell(), seed=8)
    spy = Process("mapper")
    block = RandomizationBlock.generate(11, n_branches=100_000)
    compiled = block.compile(core, spy)
    addresses = list(range(BASE, BASE + SCAN_LENGTH))
    states = scan_states(core, spy, addresses, compiled)
    windows = [1 << k for k in range(10, 16)] + [16_300, 16_380]
    curve = hamming_ratio_curve(
        states, windows, rng=np.random.default_rng(0)
    )
    estimate = estimate_pht_size(
        states, windows=windows, rng=np.random.default_rng(0)
    )
    return states, curve, estimate, core.predictor.bimodal.pht.n_entries


def test_fig5_pht_reverse_engineering(benchmark):
    states, curve, estimate, true_size = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    # Figure 5a: the first 0x110 addresses, as the paper plots.
    strip = "".join(s.value[0] if s.value != "dirty" else "D" for s in states[:0x110])
    emit(
        "fig5a_address_strip",
        "Figure 5a — PHT states for 0x300000..0x30010f (S/W prefix of "
        "state, U=unknown):\n"
        + "\n".join(strip[i : i + 64] for i in range(0, len(strip), 64)),
    )

    emit(
        "fig5b_hamming_ratio",
        format_table(
            ["window size", "H(w)/w"],
            [[w, f"{r:.4f}"] for w, r in sorted(curve.items())],
            title=(
                "Figure 5b — Hamming distance ratio vs window size "
                f"(paper: minimum at 16384; measured estimate: {estimate})"
            ),
        ),
    )

    # Figure 5c: rows aligned at the recovered period are identical.
    aligned_equal = states[:estimate] == states[estimate : 2 * estimate]
    emit(
        "fig5c_alignment",
        "Figure 5c — rows aligned at the recovered window repeat: "
        f"{'yes' if aligned_equal else 'no'}",
    )

    # Reproduction targets.
    assert estimate == true_size == 16_384
    assert curve[16_384] == 0.0
    assert curve[16_300] > 0.0 and curve[16_380] > 0.0
    # Byte granularity: neighbouring addresses differ in state.
    assert any(states[i] != states[i + 1] for i in range(64))
    assert aligned_equal
