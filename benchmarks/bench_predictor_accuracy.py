"""Ablation A8: why the Figure 1 hybrid design exists.

Substrate validation: the modelled predictor must behave like a real
tournament predictor on real control-flow shapes — bimodal winning on
biased branches, gshare on patterns/correlation, the hybrid tracking
whichever is better (McFarling's argument, paper §2's background).  If
this table looked wrong, none of the attack results above it could be
trusted.
"""

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.workloads import (
    BiasedWorkload,
    CorrelatedWorkload,
    LoopWorkload,
    MixedWorkload,
    PatternWorkload,
    measure_accuracy,
)

N_BRANCHES = scaled(20_000)

WORKLOADS = [
    LoopWorkload(0x60_0000, seed=1),
    BiasedWorkload(0x61_0000, seed=2),
    PatternWorkload(0x62_0000, seed=3),
    CorrelatedWorkload(0x63_0000, seed=4),
    MixedWorkload.typical(seed=5),
]


def run_experiment():
    config = skylake()
    return [
        measure_accuracy(config, workload, n_branches=N_BRANCHES)
        for workload in WORKLOADS
    ]


def test_predictor_accuracy(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        [
            report.workload,
            f"{report.bimodal:.1%}",
            f"{report.gshare:.1%}",
            f"{report.hybrid:.1%}",
            report.best_component(),
        ]
        for report in reports
    ]
    emit(
        "ablation_predictor_accuracy",
        format_table(
            ["workload", "bimodal alone", "gshare alone", "hybrid", "best"],
            rows,
            title=(
                "Ablation A8 — component vs hybrid accuracy by workload "
                f"({N_BRANCHES} branches each): the tournament tracks the "
                "better component"
            ),
        ),
    )

    by_name = {report.workload: report for report in reports}
    # Bimodal's home turf: strongly biased branches.
    assert by_name["biased"].bimodal > by_name["biased"].gshare
    # Gshare's home turf: irregular repeating patterns (Figure 2) and
    # pure history correlation.
    assert by_name["pattern"].gshare > 0.95
    assert by_name["pattern"].bimodal < 0.7
    assert by_name["correlated"].gshare > by_name["correlated"].bimodal
    # The hybrid is never much worse than its better component...
    for report in reports:
        assert report.hybrid >= max(report.bimodal, report.gshare) - 0.03
    # ...and decisively beats the worse one where the gap is large.
    assert by_name["pattern"].hybrid > by_name["pattern"].bimodal + 0.25
