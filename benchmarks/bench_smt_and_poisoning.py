"""Ablations A6/A7: hyperthreaded operation and branch poisoning (§1).

* **A6 — SMT covert channel**: the paper claims BranchScope works across
  hyperthreaded cores, where the victim free-runs on the sibling thread
  instead of being context-switch interleaved.  We sweep the victim's
  interleaving rate and report the channel's error rate with and without
  per-bit majority voting.
* **A7 — branch poisoning**: the Spectre-adjacent write-side of the
  channel: the attacker primes the victim's PHT entry against the
  victim's actual direction, forcing near-100% victim mispredictions
  (each one a speculative window in a real Spectre exploit).
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.covert import error_rate
from repro.core.covert_smt import SMTConfig, SMTCovertChannel
from repro.core.poisoning import poisoning_experiment
from repro.cpu import PhysicalCore, Process
from repro.system.noise import NoiseModel
from repro.system.scheduler import AttackScheduler, NoiseSetting

N_BITS = scaled(300)
RATES = [0.3, 1.0, 2.5]


def run_smt():
    results = {}
    bits = np.random.default_rng(60).integers(0, 2, N_BITS).tolist()
    for rate in RATES:
        for samples in (1, 5):
            core = PhysicalCore(skylake(), seed=61)
            channel = SMTCovertChannel.establish(
                core,
                Process("victim"),
                Process("spy"),
                config=SMTConfig(victim_rate=rate, samples_per_bit=samples),
                noise=NoiseModel.isolated(),
            )
            received = channel.transmit(bits)
            results[(rate, samples)] = error_rate(bits, received)
    return results


def run_poisoning():
    results = {}
    for direction in (True, False):
        core = PhysicalCore(skylake(), seed=62)
        outcome = poisoning_experiment(
            core,
            Process("attacker"),
            Process("victim"),
            0x30_0006D,
            direction,
            rounds=scaled(200),
            scheduler=AttackScheduler(core, NoiseSetting.ISOLATED),
        )
        results[direction] = outcome
    return results


def test_smt_covert_channel(benchmark):
    results = benchmark.pedantic(run_smt, rounds=1, iterations=1)
    rows = [
        [
            f"{rate:.1f}",
            f"{results[(rate, 1)]:.1%}",
            f"{results[(rate, 5)]:.1%}",
        ]
        for rate in RATES
    ]
    emit(
        "ablation_smt_covert",
        format_table(
            ["victim ops per spy op", "1 sample/bit", "5 samples/bit"],
            rows,
            title=(
                "Ablation A6 — hyperthreaded covert channel error rate "
                f"({N_BITS} bits; victim free-runs on sibling thread)"
            ),
        ),
    )
    # The channel survives fine-grained interleaving at every rate...
    for rate in RATES:
        assert results[(rate, 5)] < 0.08, rate
    # ...and majority voting never hurts.
    for rate in RATES:
        assert results[(rate, 5)] <= results[(rate, 1)] + 0.01


def test_branch_poisoning(benchmark):
    results = benchmark.pedantic(run_poisoning, rounds=1, iterations=1)
    rows = [
        [
            "always-taken victim" if direction else "always-not-taken victim",
            f"{outcome.baseline_misprediction_rate:.1%}",
            f"{outcome.poisoned_misprediction_rate:.1%}",
        ]
        for direction, outcome in results.items()
    ]
    emit(
        "ablation_branch_poisoning",
        format_table(
            ["victim branch", "baseline mispredict", "poisoned mispredict"],
            rows,
            title=(
                "Ablation A7 — Spectre-style directional poisoning "
                "(attacker writes the prediction the victim will consume)"
            ),
        ),
    )
    for outcome in results.values():
        assert outcome.baseline_misprediction_rate < 0.1
        assert outcome.poisoned_misprediction_rate > 0.85
