"""Ablation A5: BranchScope vs the prior-work BTB attack under BTB defenses.

The paper's first contribution bullet: "BranchScope is not affected by
defenses against BTB-based attacks."  We run both attacks — the §11
BTB-eviction direction spy and BranchScope — against the same victim
branch, with and without a BTB-flush-on-context-switch defense, and
compare direction-recovery accuracy.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.attack import BranchScope
from repro.core.btb_attacks import btb_direction_spy, calibrate_btb_threshold
from repro.cpu import PhysicalCore, Process
from repro.mitigations import BtbFlushOnContextSwitch
from repro.system.scheduler import AttackScheduler, NoiseSetting

N_DIRECTIONS = scaled(60)


def btb_attack_accuracy(defended: bool) -> float:
    core = PhysicalCore(skylake(), seed=50)
    spy = Process("spy")
    victim = Process("victim")
    address = 0x30_0006D
    calibration = calibrate_btb_threshold(core, spy, samples=300)
    if defended:
        core.install_mitigation(BtbFlushOnContextSwitch())
    rng = np.random.default_rng(51)
    scheduler = AttackScheduler(
        core, NoiseSetting.ISOLATED, victim_jitter=0.0
    )
    correct = 0
    for _ in range(N_DIRECTIONS):
        direction = bool(rng.integers(0, 2))
        inferred = btb_direction_spy(
            core,
            spy,
            address,
            lambda: core.execute_branch(victim, address, direction),
            calibration,
            trials=8,
            scheduler=scheduler,
        )
        correct += inferred == direction
    return correct / N_DIRECTIONS


def branchscope_accuracy(defended: bool) -> float:
    core = PhysicalCore(skylake(), seed=52)
    spy = Process("spy")
    victim = Process("victim")
    address = 0x30_0006D
    if defended:
        core.install_mitigation(BtbFlushOnContextSwitch())
    attack = BranchScope(core, spy, address, setting=NoiseSetting.ISOLATED)
    rng = np.random.default_rng(53)
    correct = 0
    for _ in range(N_DIRECTIONS):
        direction = bool(rng.integers(0, 2))
        spied = attack.spy_on_branch(
            lambda: core.execute_branch(victim, address, direction)
        )
        correct += spied.taken == direction
    return correct / N_DIRECTIONS


def run_experiment():
    return {
        ("BTB eviction spy", False): btb_attack_accuracy(False),
        ("BTB eviction spy", True): btb_attack_accuracy(True),
        ("BranchScope", False): branchscope_accuracy(False),
        ("BranchScope", True): branchscope_accuracy(True),
    }


def test_btb_vs_branchscope(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        [
            attack,
            f"{results[(attack, False)]:.0%}",
            f"{results[(attack, True)]:.0%}",
        ]
        for attack in ("BTB eviction spy", "BranchScope")
    ]
    emit(
        "ablation_btb_vs_branchscope",
        format_table(
            ["attack", "no defense", "BTB flushed on switch"],
            rows,
            title=(
                "Ablation A5 — direction-recovery accuracy "
                f"({N_DIRECTIONS} directions; 50% = coin flip).  Paper "
                "claim: BranchScope is unaffected by BTB defenses."
            ),
        ),
    )

    # Undefended, both attacks read directions accurately.
    assert results[("BTB eviction spy", False)] > 0.85
    assert results[("BranchScope", False)] > 0.95
    # The BTB defense destroys the BTB attack...
    assert results[("BTB eviction spy", True)] < 0.7
    # ...and does not touch BranchScope.
    assert results[("BranchScope", True)] > 0.95