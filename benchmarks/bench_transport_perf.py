"""Perf smoke check: the network transport must not tax the campaign.

The multi-host layer earns its keep only if (a) running a campaign
through claim/upload over loopback HTTP costs little beyond the trials
themselves, and (b) the durability machinery composes: a *warm*
re-submission to a fresh coordinator over the same root must be served
entirely from checkpoints + content store — zero shards dispatched,
zero trials run, the worker told ``complete`` on its first claim.

This bench times the same campaign twice over one service root:

* **cold** — fresh root: every shard is leased to an in-process worker
  over the wire, computed, uploaded, merged;
* **warm** — a *new* coordinator over the same root, same spec: every
  shard recovers at submit time and the worker's first claim says done.

The distributed digest is compared against the single-host
``run_campaign`` reference before any timing is trusted — the
transport must be a scheduler, never an answer-changer.  Gate: warm
must be ``--min-speedup`` times faster than cold (CI passes a lower
floor to absorb shared-runner noise).

Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_transport_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_transport_perf.py
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import CampaignSpec, run_campaign, run_worker  # noqa: E402
from repro.service.coordinator import Coordinator  # noqa: E402
from repro.service.transport import (  # noqa: E402
    CoordinatorServer,
    TransportClient,
)

#: Acceptance target: a warm re-submission (store-served, no trials)
#: >= 3x faster than the cold distributed run (CI floor 2x).  The cold
#: side includes every wire round-trip, so this also caps transport
#: overhead implicitly.
TARGET_SPEEDUP = 3.0

SPEC = CampaignSpec(
    name="bench-wire",
    n_blocks=24,
    block_branches=1_000,
    repetitions=20,
    shards=4,
)
BEST_OF = 3


def _quiet(*args) -> None:
    pass


def _distributed_run(root: Path) -> float:
    """One campaign through coordinator + worker over loopback HTTP."""
    coordinator = Coordinator(root, log=_quiet)
    with CoordinatorServer(coordinator) as server:
        start = time.perf_counter()
        TransportClient(server.url).call(
            "submit", {"spec": SPEC.to_dict()}
        )
        code = run_worker(
            server.url, once=True, poll_seconds=0.02, log=_quiet
        )
        elapsed = time.perf_counter() - start
    if code != 0:
        raise AssertionError(f"worker exited {code} — do not trust timings")
    return elapsed


def measure(best_of: int = BEST_OF) -> dict:
    """Time cold vs warm distributed runs over fresh service roots.

    Each round uses its own root (a cold run is only cold once),
    immediately followed by its warm rerun against a brand-new
    coordinator — interleaving keeps machine noise symmetric.
    """
    reference = run_campaign(SPEC).digest()
    cold_times, warm_times = [], []
    for _ in range(best_of):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "svc"
            cold_times.append(_distributed_run(root))
            result = json.loads(
                (root / "results" / f"{SPEC.campaign_id()}.json")
                .read_text()
            )
            if result["digest"] != reference:
                raise AssertionError(
                    "distributed campaign disagrees with the "
                    "single-host run — do not trust timings"
                )
            warm_times.append(_distributed_run(root))
    return {
        "n_blocks": SPEC.n_blocks,
        "shards": SPEC.shards,
        "cold_seconds": min(cold_times),
        "warm_seconds": min(warm_times),
        "speedup": min(cold_times) / min(warm_times),
    }


def _report(result: dict) -> str:
    return "\n".join(
        [
            f"distributed campaign, {result['n_blocks']} blocks x "
            f"{SPEC.repetitions} probes in {result['shards']} leased "
            f"shards over loopback HTTP, best of {BEST_OF} interleaved",
            f"  cold (leases + trials): {result['cold_seconds']:.3f}s",
            f"  warm (recovered root):  {result['warm_seconds']:.3f}s",
            f"  warm speedup:           {result['speedup']:.1f}x "
            f"(target >= {TARGET_SPEEDUP:.0f}x)",
        ]
    )


def test_transport_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit("transport_perf", _report(result))
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if the warm (recovered-root) run is not this many "
        "times faster than the cold distributed run (CI passes 2 to "
        "catch gross regressions only)",
    )
    args = parser.parse_args(argv)
    result = measure()
    print(_report(result))
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: warm speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
