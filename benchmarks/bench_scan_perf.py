"""Perf smoke check: the §6.3 PHT scan through the batch-probe engine.

The vectorised batch scan must keep ``scan_states`` at least
``--min-speedup`` times faster than the seed implementation — the scalar
probe/restore loop with plain full-copy checkpoints
(``scan_states_reference(..., full_restore=True)``) — on a
paper-scale address range.  The scalar loop is timed on a subset and
charged per-address (it is linear in addresses by construction: every
address runs the same four probe executions and two restores).

Run standalone (CI does, failing the job on gross regression)::

    PYTHONPATH=src python benchmarks/bench_scan_perf.py

or under pytest alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_scan_perf.py

The differential tests in ``tests/test_batch_probe.py`` prove the two
engines return identical state vectors; this file only guards the speed.

A secondary (ungated) section reports the delta-snapshot layer on its
own: checkpoint/restore cycles on tables large enough that full copies
cost real time, with only a handful of entries touched between restores
— the regime the journal-replay restore targets.  At the paper's 16k
entries both restore paths are microseconds, which is why the scan gate
above is carried by the batch engine, not by restores.
"""

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.bpu import haswell  # noqa: E402
from repro.core.pht_map import (  # noqa: E402
    scan_states,
    scan_states_reference,
)
from repro.core.randomizer import RandomizationBlock  # noqa: E402
from repro.cpu import PhysicalCore, Process  # noqa: E402

#: Acceptance target: batch scan >= 20x the seed scalar scan.
TARGET_SPEEDUP = 20.0

#: Paper-scale scan range (§6.3 scans tens of thousands of addresses).
N_ADDRESSES = 8192

#: Addresses actually simulated on the scalar paths before per-address
#: extrapolation (the full range would take minutes, which is the point).
SCALAR_SUBSET = 512


def measure(n_addresses: int = N_ADDRESSES, subset: int = SCALAR_SUBSET) -> dict:
    """Time the batch scan against the seed scalar scan."""
    core = PhysicalCore(haswell(), seed=1)
    spy = Process("spy")
    block = RandomizationBlock.generate(7, n_branches=20_000)
    compiled = block.compile(core, spy)
    base = 0x300000
    addresses = list(range(base, base + n_addresses))
    subset_addresses = addresses[:subset]

    start = time.perf_counter()
    seed_states = scan_states_reference(
        core, spy, subset_addresses, compiled, full_restore=True
    )
    seed_subset_seconds = time.perf_counter() - start
    seed_seconds = seed_subset_seconds * (n_addresses / subset)

    start = time.perf_counter()
    batch_states = scan_states(core, spy, addresses, compiled, method="batch")
    batch_seconds = time.perf_counter() - start

    # Differential sanity on the overlap (the full proof lives in tests).
    if batch_states[:subset] != seed_states:
        raise AssertionError("scan engines disagree — do not trust timings")

    result = {
        "n_addresses": n_addresses,
        "subset": subset,
        "seed_seconds": seed_seconds,
        "batch_seconds": batch_seconds,
        "speedup": seed_seconds / batch_seconds,
    }
    result.update(measure_restore())
    return result


def measure_restore(
    n_entries: int = 1 << 22, touched: int = 50, rounds: int = 20
) -> dict:
    """Checkpoint/restore cycles: journal-replay vs full-copy restores.

    Tables are scaled well past the paper's 16k entries so the full copy
    has a measurable cost; each round touches ``touched`` branches and
    rolls them back, the access pattern of any probe-restore experiment.
    """
    config = replace(
        haswell(),
        name="haswell-4M",
        bimodal_entries=n_entries,
        gshare_entries=n_entries,
    )
    rng = np.random.default_rng(3)
    branch_addresses = rng.integers(0x9000, 0x9000 + (1 << 24), size=touched)
    outcomes = rng.integers(0, 2, size=touched).astype(bool)
    timings = {}
    for label, full in (("restore_full", True), ("restore_delta", False)):
        core = PhysicalCore(config, seed=2)
        spy = Process("spy")
        snapshot = core.checkpoint(full=full)
        elapsed = 0.0
        for _ in range(rounds):
            # Churn outside the clock: only the restore itself is compared.
            for address, taken in zip(branch_addresses, outcomes):
                core.execute_branch(spy, int(address), bool(taken))
            start = time.perf_counter()
            core.restore(snapshot)
            elapsed += time.perf_counter() - start
        timings[label] = elapsed / rounds
    return {
        "restore_entries": n_entries,
        "restore_touched": touched,
        "restore_full_seconds": timings["restore_full"],
        "restore_delta_seconds": timings["restore_delta"],
        "restore_speedup": timings["restore_full"] / timings["restore_delta"],
    }


def _report(result: dict) -> str:
    n = result["n_addresses"]
    return (
        f"scan_states @ {n} addresses "
        f"(scalar path timed on {result['subset']}, scaled)\n"
        f"  seed scalar scan (full-copy restores): "
        f"{result['seed_seconds']:.2f}s\n"
        f"  batch-probe engine:                    "
        f"{result['batch_seconds']:.2f}s\n"
        f"  speedup:                               "
        f"{result['speedup']:.1f}x (target >= {TARGET_SPEEDUP:.0f}x)\n"
        f"restore after touching {result['restore_touched']} branches @ "
        f"{result['restore_entries']} PHT entries\n"
        f"  full-copy restore:                     "
        f"{1e3 * result['restore_full_seconds']:.3f}ms\n"
        f"  delta (journal-replay) restore:        "
        f"{1e3 * result['restore_delta_seconds']:.3f}ms "
        f"({result['restore_speedup']:.1f}x)"
    )


def test_scan_perf_smoke(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    from conftest import emit

    emit("scan_perf", _report(result))
    assert result["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--addresses", type=int, default=N_ADDRESSES,
        help="scan range size (default: 8192)",
    )
    parser.add_argument(
        "--subset", type=int, default=SCALAR_SUBSET,
        help="addresses actually simulated on the scalar paths",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=TARGET_SPEEDUP,
        help="fail if the batch scan is not this many times faster than "
        "the seed scalar scan (CI passes 10 to catch gross regressions "
        "only)",
    )
    args = parser.parse_args(argv)
    result = measure(args.addresses, args.subset)
    print(_report(result))
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
