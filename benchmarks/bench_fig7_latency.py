"""Figure 7: latency of a single branch, hit vs miss, taken vs not-taken.

Paper result: per-branch rdtscp latencies live in roughly the 60-200
cycle band; mispredicted branches are visibly slower on average than
correctly predicted ones, for both actual directions (the means are
drawn as horizontal lines in the paper's scatter plots).
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import format_table
from repro.bpu import skylake
from repro.core.timing_detect import latency_experiment
from repro.cpu import PhysicalCore, Process

N_SAMPLES = scaled(10_000)
ADDRESS = 0x30_0006D


def run_experiment():
    core = PhysicalCore(skylake(), seed=14)
    spy = Process("timer")
    samples = {}
    for taken in (False, True):
        for correct in (True, False):
            samples[(taken, correct)] = latency_experiment(
                core, spy, ADDRESS, n=N_SAMPLES, taken=taken, correct=correct
            )
    return samples


def test_fig7_branch_latency(benchmark):
    samples = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for taken, direction in ((False, "not-taken (7a)"), (True, "taken (7b)")):
        for correct, kind in ((True, "hit"), (False, "miss")):
            warm = samples[(taken, correct)].second
            rows.append(
                [
                    direction,
                    kind,
                    f"{warm.mean():.1f}",
                    f"{warm.std():.1f}",
                    f"{np.percentile(warm, 1):.0f}",
                    f"{np.percentile(warm, 99):.0f}",
                ]
            )
    emit(
        "fig7_branch_latency",
        format_table(
            ["direction", "prediction", "mean", "std", "p1", "p99"],
            rows,
            title=(
                f"Figure 7 — warm branch latency in cycles, {N_SAMPLES} "
                "samples each (paper band: ~60-200 cycles, avg miss above "
                "avg hit for both directions)"
            ),
        ),
    )

    for taken in (False, True):
        hit = samples[(taken, True)].second
        miss = samples[(taken, False)].second
        # The miss average sits clearly above the hit average.
        assert miss.mean() > hit.mean() + 10
        # Latencies live around the paper's plotted band (wide tails are
        # expected: jitter is calibrated to Figure 8's error rates).
        band = ((hit > 25) & (hit < 250)).mean()
        assert band > 0.93
        assert 55 < hit.mean() < 100
        assert 90 < miss.mean() < 140
