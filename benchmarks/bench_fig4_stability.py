"""Figure 4: stability and state distribution of randomisation blocks.

Paper result (a): ~83% of randomly generated blocks leave the target PHT
entry with stable dominant probe patterns (>= 85% dominance for both the
TT and NN probe variants); (b) stable signatures decode into the four
FSM states plus rare ``dirty``, the rest are ``unknown``.

Scaled down from the paper's 10 000 blocks x 1000 probes (see DESIGN.md
fidelity notes); REPRO_BENCH_SCALE raises the counts —
``REPRO_BENCH_SCALE=208`` reaches the paper's full 10,000 x 1,000 run
(probes cap at the paper's 1,000), tractable since the vectorised
trial-plan engine replaced the scalar per-branch loop.  Candidates fan
across a ``TrialPool`` when ``REPRO_TRIAL_WORKERS`` is set, with the
assessment list bit-identical at any worker count.

By default the sweep runs on the single-process manycore backend (the
struct-of-arrays engine of ``repro.core.manycore``), which assesses the
whole campaign as stacked array operations and makes the full-scale
``REPRO_BENCH_SCALE=208`` run tractable without a pool.  Results are
bit-identical across backends, so checkpoints compose: a run interrupted
under one backend resumes under the other.  ``REPRO_FIG4_BACKEND=process``
opts back into the per-trial path, and setting ``REPRO_TRIAL_WORKERS``
implies it (a pool smoke run should actually exercise the pool).

Progress checkpoints to ``benchmarks/.checkpoints/fig4_stability.ckpt``;
a killed run re-invoked with ``pytest benchmarks/ --resume`` continues
where it stopped with a bit-identical assessment list (see
MODELING.md §10).
"""

import os
from collections import Counter

from conftest import emit, scaled
from repro.analysis import format_table, scatter
from repro.bpu import skylake
from repro.core.calibration import stability_experiment
from repro.core.patterns import DecodedState
from repro.cpu import PhysicalCore
from repro.system.noise import NoiseModel

TARGET = 0x30_0006D

N_BLOCKS = scaled(48)
#: Probes per block; the paper measured 1,000, so scaling stops there.
N_PROBES = min(scaled(40), 1000)


def default_backend() -> str:
    explicit = os.environ.get("REPRO_FIG4_BACKEND")
    if explicit:
        return explicit
    # A pool smoke run (REPRO_TRIAL_WORKERS set) should exercise the
    # pool, not the single-process manycore engine.
    return "process" if os.environ.get("REPRO_TRIAL_WORKERS") else "manycore"


def run_experiment(checkpoint=None, resume=True, backend=None):
    return stability_experiment(
        lambda: PhysicalCore(skylake(), seed=6),
        TARGET,
        n_blocks=N_BLOCKS,
        block_branches=100_000,
        repetitions=N_PROBES,
        noise=NoiseModel.isolated(),
        checkpoint=checkpoint,
        resume=resume,
        fingerprint_extra={"preset": "skylake", "core_seed": 6},
        backend=backend if backend is not None else default_backend(),
    )


def test_fig4_stability(benchmark, campaign_checkpoint):
    assessments = benchmark.pedantic(
        run_experiment,
        kwargs=campaign_checkpoint("fig4_stability"),
        rounds=1,
        iterations=1,
    )
    fsm = skylake().fsm

    stable = [a for a in assessments if a.stable]
    stable_share = len(stable) / len(assessments)
    states = Counter(a.decoded(fsm) for a in assessments)

    scatter_rows = [
        [
            a.seed,
            a.tt_pattern,
            f"{a.tt_frequency:.0%}",
            a.nn_pattern,
            f"{a.nn_frequency:.0%}",
            "yes" if a.stable else "no",
            a.decoded(fsm).value,
        ]
        for a in assessments[:16]
    ]
    emit(
        "fig4a_stability_scatter",
        format_table(
            ["block", "TT dom", "TT freq", "NN dom", "NN freq", "stable", "state"],
            scatter_rows,
            title=(
                "Figure 4a (first 16 blocks) — dominant probe patterns per "
                f"candidate block; {stable_share:.0%} of {len(assessments)} "
                "blocks stable (paper: 83%)"
            ),
        ),
    )
    emit(
        "fig4a_stability_plot",
        scatter(
            [
                (a.tt_frequency * 100, a.nn_frequency * 100)
                for a in assessments
            ],
            x_range=(30, 100),
            y_range=(30, 100),
            title=(
                "Figure 4a rendered — dominant-pattern frequency, TT (x) "
                "vs NN (y) probing; stable region is the >=85/>=85 corner"
            ),
        ),
    )
    emit(
        "fig4b_state_distribution",
        format_table(
            ["decoded state", "share"],
            [
                [state.value, f"{states.get(state, 0) / len(assessments):.1%}"]
                for state in DecodedState
            ],
            title="Figure 4b — distribution of decoded PHT states",
        ),
    )

    # Reproduction targets: a clear majority of blocks are stable, and
    # stable blocks decode into real FSM states.
    assert stable_share >= 0.5
    known = sum(
        states.get(s, 0)
        for s in (
            DecodedState.SN,
            DecodedState.WN,
            DecodedState.WT,
            DecodedState.ST,
            DecodedState.DIRTY,
        )
    )
    assert known / len(assessments) >= 0.5
    # Both strong states occur among stable blocks — the attacker can
    # pick whichever working point the CPU needs (§6.1's Skylake note).
    decoded = {a.decoded(fsm) for a in stable}
    assert DecodedState.SN in decoded
    assert DecodedState.ST in decoded
