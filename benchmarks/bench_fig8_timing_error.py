"""Figure 8: timing-detection error vs number of averaged measurements.

Paper result: detecting a single branch's prediction outcome by timing
is unreliable on the *first* (cold) execution — 20-30% error across the
sweep — while the *second* (warm) execution starts around 10% for a
single measurement and falls to almost zero by ~10 averaged
measurements.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import curve, format_table
from repro.core.timing_detect import timing_error_rate
from repro.cpu.timing import TimingModel

MEASUREMENTS = list(range(1, 20, 2))
TRIALS = scaled(4_000)


def run_experiment():
    timing = TimingModel()
    rng = np.random.default_rng(16)
    curves = {1: [], 2: []}
    for measurement in (1, 2):
        for n in MEASUREMENTS:
            curves[measurement].append(
                timing_error_rate(
                    timing,
                    rng,
                    n_measurements=n,
                    measurement=measurement,
                    trials=TRIALS,
                )
            )
    return curves


def test_fig8_timing_error(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        [n, f"{first:.1%}", f"{second:.1%}"]
        for n, first, second in zip(MEASUREMENTS, curves[1], curves[2])
    ]
    emit(
        "fig8_timing_error",
        format_table(
            ["#measurements", "1st measurement", "2nd measurement"],
            rows,
            title=(
                "Figure 8 — branch event detection error vs averaged "
                "RDTSCP measurements (paper: 1st 20-30%, 2nd ~10% -> ~0)"
            ),
        ),
    )

    emit(
        "fig8_timing_error_plot",
        curve(
            [(n, e * 100) for n, e in zip(MEASUREMENTS, curves[1])],
            height=8,
            title="Figure 8 rendered — 1st-measurement error (%)",
        )
        + "\n\n"
        + curve(
            [(n, e * 100) for n, e in zip(MEASUREMENTS, curves[2])],
            height=8,
            title="Figure 8 rendered — 2nd-measurement error (%)",
        ),
    )

    # Single-measurement operating points match the paper's bands.
    assert 0.15 < curves[1][0] < 0.35
    assert 0.05 < curves[2][0] < 0.17
    # The second-measurement curve decays to ~0 by ~10 measurements.
    by_ten = curves[2][MEASUREMENTS.index(9)]
    assert by_ten < 0.02
    # The first measurement stays worse than the second throughout.
    assert all(f > s for f, s in zip(curves[1], curves[2]))
    # Averaging monotonically helps (modulo sampling noise).
    assert curves[2][-1] <= curves[2][0]
    assert curves[1][-1] <= curves[1][0]
