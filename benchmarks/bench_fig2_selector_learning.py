"""Figure 2: misprediction curve as the 2-level predictor learns.

Paper result: a random 10-bit outcome pattern starts at ~5/10
mispredictions, decays as gshare accumulates history, and reaches ~100%
accuracy after roughly 5-7 repetitions; Skylake learns slightly faster
than the older part.
"""

import numpy as np

from conftest import emit, scaled
from repro.analysis import curve, format_table
from repro.bpu import sandy_bridge, skylake
from repro.core.selection import selector_learning_experiment
from repro.cpu import PhysicalCore

# The paper's Figure 2 compares the i5-6200U against the i7-2600.
PRESETS = {"i5-6200U (Skylake)": skylake, "i7-2600 (Sandy Bridge)": sandy_bridge}


def run_experiment():
    results = {}
    for label, preset in PRESETS.items():
        results[label] = selector_learning_experiment(
            lambda: PhysicalCore(preset(), seed=2),
            pattern_bits=10,
            iterations=20,
            runs=scaled(60),
        )
    return results


def test_fig2_selector_learning(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for iteration in range(20):
        rows.append(
            [iteration + 1]
            + [f"{results[l].mispredictions[iteration]:.2f}" for l in PRESETS]
        )
    emit(
        "fig2_selector_learning",
        format_table(
            ["iteration"] + list(PRESETS),
            rows,
            title=(
                "Figure 2 — avg mispredictions per iteration of a random "
                "10-branch pattern (paper: starts ~5, ~0 by iteration 5-7)"
            ),
        ),
    )

    sky_label = next(iter(PRESETS))
    emit(
        "fig2_learning_curve_plot",
        curve(
            [
                (i + 1, float(results[sky_label].mispredictions[i]))
                for i in range(20)
            ],
            height=10,
            title=f"Figure 2 rendered — {sky_label}",
            y_label="avg mispredictions per 10-branch iteration",
        ),
    )

    for label, result in results.items():
        # Iteration 1: an untrained predictor gets ~half of 10 wrong.
        assert 3.5 <= result.mispredictions[0] <= 6.5, label
        # Converges to ~100% accuracy within the paper's 5-7 band.
        converged = result.converged_by(threshold=0.5)
        assert converged is not None and converged <= 8, label
        # And stays converged.
        assert result.mispredictions[10:].max() < 0.5, label
